"""Property tests for the abstract interval domain.

The central soundness obligation: for any opcode and concrete operand
values, running the *abstract* transfer on singleton intervals must
produce an interval containing the *concrete* result of
:func:`repro.isa.semantics.compute`.  Since every transfer function is
monotone in its arguments, singleton soundness extends to all
intervals, so this test pins the whole analyzer to the ISA semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import intervals as iv
from repro.analysis.dataflow import WidthAnalysis
from repro.bitwidth.detect import is_narrow
from repro.isa.instruction import Program
from repro.isa.opcodes import Opcode
from repro.isa.semantics import compute, to_signed, to_unsigned

#: Operate-format opcodes the analyzer models (everything compute()
#: accepts except control transfers).
_OPERATES = (
    Opcode.ADDQ, Opcode.SUBQ, Opcode.ADDL, Opcode.SUBL,
    Opcode.S4ADDQ, Opcode.S8ADDQ, Opcode.LDA, Opcode.LDAH,
    Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT,
    Opcode.CMPULE, Opcode.MULQ, Opcode.MULL,
    Opcode.AND, Opcode.BIS, Opcode.XOR, Opcode.BIC,
    Opcode.ORNOT, Opcode.EQV, Opcode.CMOVEQ, Opcode.CMOVNE,
    Opcode.ZAPNOT, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.EXTBL, Opcode.EXTWL,
)

#: Value pool biased toward the paper's interesting widths: small
#: constants, the 16/33-bit cut neighborhoods, and full-width values.
values = st.one_of(
    st.integers(min_value=-(1 << 16), max_value=1 << 16),
    st.integers(min_value=-(1 << 33) - 4, max_value=(1 << 33) + 4),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
)

_ANALYSIS = WidthAnalysis(Program(instructions=[]))


def _abstract(op, a, b, old):
    return _ANALYSIS._compute(op, iv.const(a), iv.const(b), iv.const(old))


@given(op=st.sampled_from(_OPERATES), a=values, b=values, old=values)
@settings(max_examples=400)
def test_singleton_transfer_contains_concrete_result(op, a, b, old):
    concrete = compute(op, to_unsigned(a), to_unsigned(b), to_unsigned(old))
    abstract = _abstract(op, a, b, old)
    assert abstract.contains(to_signed(concrete)), (
        f"{op}: concrete {to_signed(concrete)} outside {abstract} "
        f"for a={a}, b={b}")


@given(op=st.sampled_from(_OPERATES), a=values, b=values, old=values,
       width=st.sampled_from((16, 33)))
@settings(max_examples=400)
def test_proven_narrow_results_are_dynamically_narrow(op, a, b, old, width):
    """fits(w) on the abstract result is a *proof* about the detect
    hardware's verdict on the concrete result."""
    concrete = compute(op, to_unsigned(a), to_unsigned(b), to_unsigned(old))
    abstract = _abstract(op, a, b, old)
    if abstract.fits(width):
        assert is_narrow(concrete, width)
    if abstract.excludes(width):
        assert not is_narrow(concrete, width)


@given(a=values, b=values, c=values)
def test_join_is_an_upper_bound(a, b, c):
    joined = iv.const(a).join(iv.const(b))
    assert joined.contains(a) and joined.contains(b)
    bigger = joined.join(iv.const(c))
    assert bigger.contains(a) and bigger.contains(b) and bigger.contains(c)


@given(a=values, others=st.lists(values, max_size=40))
def test_widen_covers_inputs_and_chains_are_finite(a, others):
    """Every widening covers what it saw, and a widening chain changes
    at most once per threshold per bound — the termination argument of
    the fixpoint loop."""
    current = iv.const(a)
    changes = 0
    for v in others + [iv.INT64_MIN, iv.INT64_MAX, a]:
        widened = current.widen(current.join(iv.const(v)))
        assert widened.contains(v) and widened.contains(a)
        assert widened.lo <= current.lo and widened.hi >= current.hi
        if widened != current:
            changes += 1
        current = widened
    # Each change snaps a bound outward to a strictly farther member of
    # the finite threshold set, so changes are bounded regardless of
    # how many values the chain absorbs.
    assert changes <= 2 * len(iv._THRESHOLDS)


@given(v=values, width=st.sampled_from((1, 8, 15, 16, 32, 33, 48, 64)))
def test_fits_matches_hardware_detect(v, width):
    """Interval.fits concretizes to exactly the zero/ones-detect set."""
    single = iv.const(v)
    assert single.fits(width) == is_narrow(to_unsigned(v), width)
    assert single.may_fit(width) == is_narrow(to_unsigned(v), width)


@given(v=values)
def test_from_u64_round_trips_patterns(v):
    pattern = to_unsigned(v)
    assert iv.from_u64(pattern) == iv.const(to_signed(pattern))
