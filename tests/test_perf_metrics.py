"""Metrics registry tests: metric semantics, snapshot/merge
determinism, and the real cross-process contract — pool workers ship
snapshot deltas in their job payloads and the parent engine's merged
registry is independent of worker scheduling.
"""

from __future__ import annotations

import pytest

from repro.core.config import BASELINE
from repro.exec.context import RunContext
from repro.exec.engine import RunEngine, clear_memo
from repro.exec.jobs import Job
from repro.perf.metrics import (
    SCHEMA,
    TIME_BUCKETS,
    MetricsRegistry,
    get_registry,
    reset_registry,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    clear_memo()
    yield
    reset_registry()
    clear_memo()


class TestMetricSemantics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_buckets_value_on_boundary_grid(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        # 4 buckets: <=1, <=2, <=4, +inf overflow.
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(105.0)

    def test_histogram_redeclared_with_other_boundaries_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="different boundaries"):
            registry.histogram("h", boundaries=(1.0, 3.0))

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", boundaries=(2.0, 1.0))

    def test_default_time_buckets_are_sorted_and_fixed(self):
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)
        assert TIME_BUCKETS[0] == 0.001


class TestSnapshotMerge:
    def make(self, counter: int, gauge: float,
             observations: tuple[float, ...]) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs").inc(counter)
        registry.gauge("peak").set(gauge)
        for value in observations:
            registry.histogram("wall", boundaries=(1.0, 10.0)).observe(value)
        return registry

    def test_snapshot_is_json_safe_and_schema_tagged(self):
        snapshot = self.make(2, 1.5, (0.5,)).snapshot()
        import json
        json.dumps(snapshot)
        assert snapshot["schema"] == SCHEMA
        assert snapshot["counters"] == {"jobs": 2}

    def test_merge_is_order_independent(self):
        """The process-safety contract: merged totals do not depend on
        which worker's snapshot lands first."""
        a = self.make(2, 1.5, (0.5, 20.0)).snapshot()
        b = self.make(3, 7.0, (5.0,)).snapshot()
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a), ab.merge(b)
        ba.merge(b), ba.merge(a)
        assert ab.snapshot() == ba.snapshot()
        merged = ab.snapshot()
        assert merged["counters"]["jobs"] == 5
        assert merged["gauges"]["peak"] == 7.0          # max, not last
        assert merged["histograms"]["wall"]["counts"] == [1, 1, 1]
        assert merged["histograms"]["wall"]["count"] == 3

    def test_merge_rejects_mismatched_boundaries(self):
        registry = MetricsRegistry()
        registry.histogram("wall", boundaries=(1.0, 2.0))
        foreign = MetricsRegistry()
        foreign.histogram("wall", boundaries=(5.0,)).observe(1.0)
        with pytest.raises(ValueError):
            registry.merge(foreign.snapshot())

    def test_merge_none_is_a_noop(self):
        registry = MetricsRegistry()
        registry.merge(None)
        registry.merge({})
        assert registry.snapshot()["counters"] == {}

    def test_write_includes_extra_keys(self, tmp_path):
        registry = self.make(1, 0.0, ())
        path = registry.write(tmp_path / "m.json", extra={"run": "x"})
        import json
        doc = json.loads(path.read_text())
        assert doc["run"] == "x"
        assert doc["counters"]["jobs"] == 1


class TestEngineIntegration:
    def jobs(self) -> list[Job]:
        return [Job(workload="g721-encode", config=BASELINE, scale=1),
                Job(workload="compress", config=BASELINE, scale=1)]

    def test_pool_worker_snapshots_merge_into_parent(self, tmp_path):
        """The satellite contract: with jobs=2 every simulation runs in
        a separate pool process, and the parent registry still ends up
        with the whole suite's counts."""
        engine = RunEngine(RunContext(cache_dir=tmp_path / "c", jobs=2,
                                      timeout=300))
        _, report = engine.run_jobs_report(self.jobs())
        assert report.ok
        counters = get_registry().snapshot()["counters"]
        assert counters["sim.runs"] == 2
        assert counters["engine.fresh_runs"] == 2
        assert counters["engine.cache_stores"] == 2
        histograms = get_registry().snapshot()["histograms"]
        assert histograms["sim.run_seconds"]["count"] == 2

    def test_engine_stats_mirror_into_counters(self, tmp_path):
        ctx = RunContext(cache_dir=tmp_path / "c", jobs=1)
        engine = RunEngine(ctx)
        engine.run_jobs(self.jobs())
        clear_memo()
        warm = RunEngine(ctx)
        warm.run_jobs(self.jobs())
        counters = get_registry().snapshot()["counters"]
        assert counters["engine.cache_hits"] == warm.stats.cache_hits == 2
        assert counters["engine.fresh_runs"] == 2   # cold run only

    def test_cached_entries_carry_no_timing_or_metrics(self, tmp_path):
        """Cache byte-determinism: worker timing/metrics are execution
        metadata and must never be stored."""
        import json
        ctx = RunContext(cache_dir=tmp_path / "c", jobs=1)
        RunEngine(ctx).run_jobs(self.jobs()[:1])
        (entry,) = (tmp_path / "c").glob("*.json")
        stored = json.loads(entry.read_text())
        assert "timing" not in stored
        assert "metrics" not in stored
        payload_keys = set(stored)
        assert "result" in payload_keys
