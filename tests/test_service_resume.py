"""Crash-safety tests: journaled sweeps survive shutdown and kill -9.

Three escalating proofs:

* **park/resume** — queued work a shutdown parked in the journal is
  re-enqueued by the reborn service and completes with bytes identical
  to the local engine path;
* **CAS reconciliation** — a journaled job whose result already landed
  in the store is served from it at construction time, with zero fresh
  simulations;
* **kill -9** — a real server process SIGKILL'd mid-sweep, restarted
  over the same directories, finishes the sweep: landed jobs come back
  from the store, lost ones re-run, and every payload is byte-identical
  to an uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.exec import RunContext, RunEngine, clear_memo
from repro.exec.engine import GLOBAL_STATS
from repro.exec.serialize import result_to_dict
from repro.perf.metrics import get_registry
from repro.service.api import JobSpec, SubmitRequest
from repro.service.client import ServiceClient
from repro.service.journal import JOURNAL_NAME
from repro.service.service import ExperimentService, canonical_result_bytes

GO = SubmitRequest(jobs=(JobSpec(workload="go"),))

REPO = Path(__file__).resolve().parents[1]


def _counter(name: str) -> int:
    return get_registry().snapshot()["counters"].get(name, 0)


def _expected_bytes(spec: JobSpec) -> bytes:
    clear_memo()
    result = RunEngine(RunContext(jobs=1)).run(spec.resolve())
    return canonical_result_bytes(result_to_dict(result))


class TestInProcessResume:
    def test_parked_work_resumes_and_matches_local_engine(self, tmp_path):
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        journal_dir = tmp_path / "journal"

        # Incarnation A admits a sweep but is never started: shutdown
        # parks the queued job in the journal.
        first = ExperimentService(ctx, workers=1,
                                  journal_dir=journal_dir)
        sweep_id = first.submit(GO).sweep_id
        first.shutdown()
        journal = (journal_dir / JOURNAL_NAME).read_bytes()
        assert b'"job.parked"' in journal

        clear_memo()
        resumed_before = _counter("service.restart.resumed")
        fresh_before = GLOBAL_STATS.fresh_runs
        second = ExperimentService(ctx, workers=1,
                                   journal_dir=journal_dir).start()
        try:
            final = second.wait(sweep_id, timeout=120)
            assert final.ok
            assert _counter("service.restart.resumed") - resumed_before == 1
            # The parked job was genuinely lost, so exactly one fresh
            # simulation ran — and produced the canonical bytes.
            assert GLOBAL_STATS.fresh_runs - fresh_before == 1
            payload = second.result_bytes(final.statuses[0].fingerprint)
            assert payload == _expected_bytes(GO.jobs[0])
        finally:
            second.shutdown()

    def test_landed_result_served_from_store_without_resimulation(
            self, tmp_path):
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        journal_dir = tmp_path / "journal"

        first = ExperimentService(ctx, workers=1,
                                  journal_dir=journal_dir)
        sweep_id = first.submit(GO).sweep_id
        first.shutdown()

        # The job's result lands in the CAS out of band — exactly the
        # state a crash between store and journal append leaves behind.
        clear_memo()
        RunEngine(ctx).run(GO.jobs[0].resolve())

        clear_memo()
        recovered_before = _counter("service.restart.recovered_from_store")
        fresh_before = GLOBAL_STATS.fresh_runs
        second = ExperimentService(ctx, workers=1,
                                   journal_dir=journal_dir)
        try:
            # Terminal at construction: reconciliation found the bytes.
            final = second.status(sweep_id)
            assert final.done and final.ok
            assert final.statuses[0].source == "store"
            assert GLOBAL_STATS.fresh_runs - fresh_before == 0
            assert (_counter("service.restart.recovered_from_store")
                    - recovered_before) == 1
            payload = second.result_bytes(final.statuses[0].fingerprint)
            assert payload == _expected_bytes(GO.jobs[0])
        finally:
            second.shutdown()


# ------------------------------------------------------------- kill -9


def _spawn_server(tmp_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.server",
         "--port", "0", "--workers", "1",
         "--cache-dir", str(tmp_path / "cas"), "--cache-layout", "cas",
         "--journal-dir", str(tmp_path / "journal")],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env)


def _server_url(proc: subprocess.Popen, timeout: float = 60.0) -> str:
    got: dict = {}

    def reader() -> None:
        got["line"] = proc.stdout.readline()

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    line = got.get("line", b"").decode("utf-8", "replace").strip()
    assert line.startswith("http://"), \
        f"server never printed its URL (got {line!r})"
    return line


class TestKillDashNine:
    def test_sigkill_midsweep_restart_serves_identical_bytes(
            self, tmp_path):
        request = SubmitRequest(jobs=(JobSpec(workload="go"),
                                      JobSpec(workload="gcc"),
                                      JobSpec(workload="perl")))
        journal_path = tmp_path / "journal" / JOURNAL_NAME

        proc = _spawn_server(tmp_path)
        try:
            client = ServiceClient(_server_url(proc), timeout=30.0)
            sweep_id = client.submit(request).sweep_id

            # Wait for the first job to land durably, then kill -9
            # while the rest of the sweep is still in flight.
            deadline = time.monotonic() + 120
            while b'"job.done"' not in journal_path.read_bytes():
                assert time.monotonic() < deadline, \
                    "no job landed before the kill window"
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        reborn = _spawn_server(tmp_path)
        try:
            client = ServiceClient(_server_url(reborn), timeout=30.0)
            final = client.wait(sweep_id, timeout=180)
            assert final.ok, [s.to_dict() for s in final.statuses]

            # Byte-identical to an uninterrupted local run, per job.
            for spec, status in zip(request.jobs, final.statuses):
                assert client.result(status.fingerprint) == \
                    _expected_bytes(spec), spec.workload

            # The reborn service both recovered landed work from the
            # store and re-ran the genuinely lost remainder.
            counters = client.metrics()["counters"]
            assert counters.get(
                "service.restart.recovered_from_store", 0) >= 1
            assert counters.get("service.restart.resumed", 0) >= 1
        finally:
            reborn.send_signal(signal.SIGKILL)
            reborn.wait(timeout=30)
