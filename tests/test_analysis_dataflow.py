"""Dataflow analyzer tests: exact constants, loop fixpoints, CFG."""

from repro.analysis import analyze, build_cfg
from repro.asm.assembler import Assembler, standard_prologue
from repro.asm.layout import DATA_BASE, STACK_TOP
from repro.isa.semantics import to_signed, to_unsigned
from repro.workloads.registry import all_workloads


def _analyze(build):
    asm = Assembler("t")
    build(asm)
    return analyze(asm.assemble())


def test_li_constants_are_exact():
    """li() expansions (lda/ldah/shift chains) fold back to the exact
    constant — the basis for proving address widths statically."""
    for value in (0, 1, -1, 0x7FFF, -0x8000, 0x12345, DATA_BASE,
                  STACK_TOP, DATA_BASE + 0x4000, -(1 << 40),
                  0x1234_5678_9ABC_DEF0):
        asm = Assembler("t")
        asm.li("t0", value)
        asm.halt()
        analysis = analyze(asm.assemble())
        last = analysis.facts[len(analysis.program) - 2]
        signed = to_signed(to_unsigned(value))
        assert last.result is not None and last.result.is_constant
        assert last.result.lo == signed, f"li({value:#x})"


def test_addresses_prove_narrow33_not_16():
    """The paper's Figure 1 jump at 33 bits, statically: data addresses
    above 2^32 are provably narrow33 yet provably not narrow16."""
    def build(asm):
        buf = asm.alloc("buf", 64)
        asm.li("s0", buf)
        asm.load("ldq", "t0", "s0", 8)
        asm.halt()

    analysis = _analyze(build)
    # The li() result and the ldq address base are that exact constant.
    load_index = len(analysis.program) - 2
    facts = analysis.facts[load_index]
    assert facts.a.is_constant and facts.a.lo >= DATA_BASE
    assert facts.a.fits(33) and not facts.a.may_fit(16)


def test_loop_counter_proved_narrow16():
    """A bounded down-counter converges to a narrow16 interval via
    threshold widening."""
    def build(asm):
        asm.li("t0", 1000)          # counter
        asm.clr("t1")               # accumulator
        asm.label("loop")
        asm.op("addq", "t1", "t1", 3)
        asm.op("subq", "t0", "t0", 1)
        asm.br("bgt", "t0", "loop")
        asm.halt()

    analysis = _analyze(build)
    sub_index = next(
        i for i, inst in enumerate(analysis.program.instructions)
        if inst.opcode.value == "subq")
    facts = analysis.facts[sub_index]
    # The counter operand stays within [<=1000] across the fixpoint.
    assert facts.a.may_fit(16)
    assert facts.a.hi <= 1000
    assert facts.result.fits(16)


def test_subword_load_results_are_bounded():
    def build(asm):
        buf = asm.alloc("buf", 64)
        asm.li("s0", buf)
        asm.load("ldbu", "t0", "s0", 0)
        asm.load("ldwu", "t1", "s0", 0)
        asm.load("ldl", "t2", "s0", 0)
        asm.halt()

    analysis = _analyze(build)
    by_op = {inst.opcode.value: analysis.facts[i]
             for i, inst in enumerate(analysis.program.instructions)}
    assert by_op["ldbu"].result.lo == 0 and by_op["ldbu"].result.hi == 255
    assert by_op["ldwu"].result.hi == 0xFFFF
    assert by_op["ldl"].result.fits(32)
    assert not by_op["ldl"].result.fits(16)


def test_unreachable_block_has_no_facts():
    def build(asm):
        asm.li("t0", 5)
        asm.br("br", "end")
        asm.label("dead")
        asm.op("addq", "t1", "t1", 1)   # unreachable
        asm.label("end")
        asm.halt()

    analysis = _analyze(build)
    program = analysis.program
    dead = next(i for i, inst in enumerate(program.instructions)
                if inst.opcode.value == "addq")
    assert analysis.facts[dead] is None
    assert dead not in analysis.cfg.reachable


def test_cfg_conditional_has_two_successors():
    def build(asm):
        asm.li("t0", 3)
        asm.label("loop")
        asm.op("subq", "t0", "t0", 1)
        asm.br("bgt", "t0", "loop")
        asm.halt()

    asm = Assembler("t")
    build(asm)
    program = asm.assemble()
    cfg = build_cfg(program)
    branch = next(i for i, inst in enumerate(program.instructions)
                  if inst.is_conditional)
    succs = cfg.successors(branch)
    assert set(succs) == {program.instructions[branch].target, branch + 1}


def test_all_workloads_converge_with_full_coverage():
    """The fixpoint terminates on every registered workload and yields
    facts for every reachable instruction (xlisp exercises bsr/ret and
    the conservative return-point edges)."""
    for workload in all_workloads():
        analysis = analyze(workload.build(1))
        for index in analysis.cfg.reachable:
            assert analysis.facts[index] is not None, (
                f"{workload.name}: no facts for reachable "
                f"instruction {index}")
        # Entry-state registers are architecturally zero, so the stack
        # pointer setup must analyze to the exact STACK_TOP constant.
        summary = analysis.summary()
        assert summary["reachable"] > 0


def test_prologue_stack_pointer_is_exact():
    asm = Assembler("t")
    standard_prologue(asm)
    asm.halt()
    analysis = analyze(asm.assemble())
    last_write = max(i for i, f in enumerate(analysis.facts)
                     if f is not None and f.result is not None)
    facts = analysis.facts[last_write]
    assert facts.result.is_constant and facts.result.lo == STACK_TOP
