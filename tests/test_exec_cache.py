"""Tests for the persistent result cache and its serialization layer.

The cache contract: entries are content-keyed (workload, scale, config
fingerprint, schema version), stores are atomic, and *anything* wrong
with an entry — absent, truncated, corrupt JSON, stale schema, foreign
fingerprint — reads as a miss, never as an exception or a wrong result.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BASELINE
from repro.exec import (
    CACHE_SCHEMA,
    Job,
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.base import run_workload


class TestFingerprint:
    def test_stable_within_process(self):
        assert BASELINE.fingerprint() == BASELINE.fingerprint()

    def test_equal_configs_equal_fingerprints(self):
        from repro.core.config import MachineConfig
        assert MachineConfig().fingerprint() == BASELINE.fingerprint()

    def test_any_field_changes_fingerprint(self):
        base = BASELINE.fingerprint()
        assert BASELINE.with_packing().fingerprint() != base
        assert BASELINE.with_predictor("perfect").fingerprint() != base
        assert BASELINE.with_issue_width(8, 8).fingerprint() != base
        assert BASELINE.with_obs(sampler_window=123).fingerprint() != base

    def test_stable_across_processes(self):
        # sha256 over canonical JSON: no per-process hash salting.
        import subprocess
        import sys
        code = ("import sys; sys.path.insert(0, 'src'); "
                "from repro.core.config import BASELINE; "
                "print(BASELINE.fingerprint())")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, check=True, cwd=__file__.rsplit("/tests/", 1)[0])
        assert out.stdout.strip() == BASELINE.fingerprint()

    def test_job_fingerprint_covers_workload_and_scale(self):
        job = Job("go", BASELINE, 1)
        assert Job("gcc", BASELINE, 1).fingerprint() != job.fingerprint()
        assert Job("go", BASELINE, 2).fingerprint() != job.fingerprint()


class TestSerializeRoundTrip:
    def test_result_round_trips_bit_exact(self):
        result = run_workload("go", BASELINE)
        data = result_to_dict(result)
        # Force a real JSON trip, exactly as the disk cache does.
        rehydrated = result_from_dict(
            json.loads(json.dumps(data)), config=BASELINE)
        assert rehydrated.name == result.name
        assert rehydrated.config is BASELINE
        assert rehydrated.stats.as_dict() == result.stats.as_dict()
        assert rehydrated.widths.as_dict() == result.widths.as_dict()
        assert (rehydrated.fluctuation.as_dict()
                == result.fluctuation.as_dict())
        assert rehydrated.power.as_dict() == result.power.as_dict()
        # Derived figures recompute identically.
        assert rehydrated.ipc == result.ipc
        assert (rehydrated.widths.cumulative_curve()
                == result.widths.cumulative_curve())
        assert (rehydrated.fluctuation.fluctuation_pct
                == result.fluctuation.fluctuation_pct)

    def test_powerless_result_round_trips(self):
        result = run_workload("go", BASELINE)
        data = result_to_dict(result)
        data["power"] = None
        assert result_from_dict(data, BASELINE).power is None


class TestResultCache:
    @pytest.fixture
    def seeded(self, tmp_path):
        """A cache holding one real go run; returns (cache, job, dict)."""
        result = run_workload("go", BASELINE)
        cache = ResultCache(tmp_path)
        job = Job("go", BASELINE, 1)
        cache.store(job, result_to_dict(result), manifest={"x": 1})
        return cache, job, result_to_dict(result)

    def test_store_load_round_trip(self, seeded):
        cache, job, data = seeded
        entry = cache.load(job)
        assert entry is not None
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["result"] == data
        assert entry["manifest"] == {"x": 1}

    def test_absent_entry_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).load(Job("go", BASELINE)) is None

    def test_corrupt_json_is_miss(self, seeded):
        cache, job, _ = seeded
        cache.path(job).write_text("{ not json", encoding="utf-8")
        assert cache.load(job) is None

    def test_non_dict_entry_is_miss(self, seeded):
        cache, job, _ = seeded
        cache.path(job).write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.load(job) is None

    def test_stale_schema_is_miss(self, seeded):
        cache, job, _ = seeded
        entry = json.loads(cache.path(job).read_text(encoding="utf-8"))
        entry["schema"] = "repro-exec/0"
        cache.path(job).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(job) is None

    def test_foreign_fingerprint_is_miss(self, seeded):
        """A filename collision cannot serve a wrong result: the entry
        embeds the full fingerprint and is checked against the job."""
        cache, job, _ = seeded
        entry = json.loads(cache.path(job).read_text(encoding="utf-8"))
        entry["fingerprint"] = "go-x1-0000000000000000"
        cache.path(job).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(job) is None

    def test_store_is_atomic(self, seeded):
        cache, job, _ = seeded
        leftovers = [p for p in cache.directory.iterdir()
                     if ".tmp" in p.name]
        assert leftovers == []
        assert cache.entries() == [cache.path(job)]
