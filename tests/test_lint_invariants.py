"""The nondeterminism linter itself: clean on the gated packages,
loud on each forbidden construct."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "lint_invariants.py"

spec = importlib.util.spec_from_file_location("lint_invariants", TOOL)
lint_invariants = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_invariants)


def _findings(tmp_path, source):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_invariants.lint_file(path)


def _codes(findings):
    return {f.code for f in findings}


def test_core_and_exec_are_clean():
    findings = lint_invariants.lint_paths(
        [REPO / "src/repro/core", REPO / "src/repro/exec"])
    assert findings == [], [str(f) for f in findings]


def test_unseeded_random_flagged(tmp_path):
    findings = _findings(tmp_path, "import random\nx = random.random()\n")
    assert _codes(findings) == {"ND001"}


def test_random_import_from_flagged(tmp_path):
    findings = _findings(tmp_path, "from random import randint\n")
    assert _codes(findings) == {"ND001"}


def test_seeded_random_instance_allowed(tmp_path):
    findings = _findings(
        tmp_path,
        "import random\nrng = random.Random(1234)\nx = rng.random()\n")
    assert findings == []


def test_wall_clock_flagged(tmp_path):
    source = ("import time\n"
              "a = time.time()\n"
              "b = time.perf_counter()\n"
              "c = time.monotonic()\n")
    findings = _findings(tmp_path, source)
    assert _codes(findings) == {"ND002"}
    assert len(findings) == 3


def test_set_iteration_flagged(tmp_path):
    source = ("for x in {3, 1, 2}:\n"
              "    print(x)\n"
              "ys = [y for y in set([2, 1])]\n")
    findings = _findings(tmp_path, source)
    assert _codes(findings) == {"ND003"}
    assert len(findings) == 2


def test_sorted_set_iteration_allowed(tmp_path):
    source = ("for x in sorted({3, 1, 2}):\n"
              "    print(x)\n"
              "ok = 3 in {3, 1, 2}\n")
    findings = _findings(tmp_path, source)
    assert findings == []


def test_fs_listing_iteration_flagged(tmp_path):
    source = ("import os\n"
              "for name in os.listdir('.'):\n"
              "    print(name)\n")
    findings = _findings(tmp_path, source)
    assert _codes(findings) == {"ND004"}


def test_suppression_comment(tmp_path):
    source = ("import time\n"
              "t = time.time()  # lint: allow(ND002)\n")
    findings = _findings(tmp_path, source)
    assert findings == []


def test_cli_exit_status(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(bad)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "ND001" in proc.stdout

    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(good)],
        capture_output=True, text=True)
    assert proc.returncode == 0
