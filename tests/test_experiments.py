"""Tests for the experiment harness.

Full-suite experiments are exercised by the benchmark harness in
``benchmarks/``; here we test the machinery (memoization, suite math,
report formatting, Table 1/4 content) plus a couple of cheap
single-benchmark end-to-end runs.  The ``run_workload`` memo is shared
process-wide, so these runs are reused by later tests in the session.
"""

import pytest

from repro.core.config import BASELINE
from repro.experiments import (
    fig1_cumulative_widths,
    fig2_width_fluctuation,
    fig4_narrow16_by_class,
    fig7_power_total,
    fig10_packing_speedup,
    fig11_ipc,
    table1_config,
    table4_devices,
)
from repro.experiments.base import (
    all_names,
    format_table,
    mean,
    media_names,
    run_workload,
    spec_names,
)


class TestBase:
    def test_suite_names_cover_paper_tables(self):
        assert len(spec_names()) == 8       # Table 2
        assert len(media_names()) == 6      # Table 3
        assert len(all_names()) == 14

    def test_run_workload_memoized(self):
        first = run_workload("go", BASELINE)
        second = run_workload("go", BASELINE)
        assert first is second

    def test_run_workload_distinct_configs(self):
        base = run_workload("go", BASELINE)
        packed = run_workload("go", BASELINE.with_packing())
        assert base is not packed
        # Same committed work, possibly different cycles.
        assert base.stats.committed == packed.stats.committed

    def test_no_cache_bypass(self):
        cached = run_workload("go", BASELINE)
        fresh = run_workload("go", BASELINE, use_cache=False)
        assert fresh is not cached
        assert fresh.stats.cycles == cached.stats.cycles  # deterministic

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [["x", 1.234], ["yy", 5.0]])
        lines = table.splitlines()
        assert len(lines) == 4               # header, rule, two rows
        assert "1.23" in table


class TestTables:
    def test_table1_matches_paper(self):
        text = table1_config.report()
        for fragment in ("80 instructions", "40", "4 integer ALUs",
                         "2048-entry, 2-way", "32-entry", "2 cycles",
                         "64K, 2-way", "8M, 4-way", "100 cycles",
                         "128 entry"):
            assert fragment in text

    def test_table4_matches_paper(self):
        text = table4_devices.report()
        for fragment in ("210.0", "2100.0", "11.7", "8.8", "4.2", "3.2"):
            assert fragment in text

    def test_table4_paper_values_within_tolerance(self):
        from repro.power.devices import device_power
        for device, columns in table4_devices.PAPER_VALUES.items():
            for width, paper in zip((32, 48, 64), columns):
                assert device_power(device, width) == pytest.approx(
                    paper, rel=0.02)


class TestSingleBenchmarkExperiments:
    """End-to-end experiment math on one cheap benchmark (go)."""

    def test_fig1_curve_shape(self):
        result = run_workload("go", BASELINE)
        curve = result.widths.cumulative_curve()
        assert len(curve) == 64
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[63] == pytest.approx(100.0)
        # the 33-bit address jump
        assert curve[32] - curve[30] > 5

    def test_fig7_reduction_positive(self):
        result = run_workload("go", BASELINE)
        assert 20 < result.power.reduction_pct < 90

    def test_fig2_structures(self):
        perfect = run_workload("go", BASELINE.with_predictor("perfect"))
        realistic = run_workload("go", BASELINE)
        assert perfect.fluctuation.total_pcs > 0
        # Wrong-path execution can only add fluctuation.
        assert (realistic.fluctuation.fluctuation_pct
                >= perfect.fluctuation.fluctuation_pct - 1e-9)


class TestReportFormatting:
    """Report renderers on synthetic results (no simulation)."""

    def test_fig1_report(self):
        result = fig1_cumulative_widths.Fig1Result(
            curves={"go": [float(i + 1) / 0.64 for i in range(64)]},
            aggregate=[float(i + 1) / 0.64 for i in range(64)])
        text = fig1_cumulative_widths.report(result)
        assert "Figure 1" in text and "go" in text

    def test_fig2_report(self):
        result = fig2_width_fluctuation.Fig2Result(
            rows=[fig2_width_fluctuation.Fig2Row("go", 5.0, 9.0)])
        text = fig2_width_fluctuation.report(result)
        assert "perfect" in text and "9.0" in text
        assert result.mean_realistic == 9.0

    def test_fig4_report(self):
        from repro.isa.opcodes import OpClass
        row = fig4_narrow16_by_class.NarrowByClassRow(
            "gsm-encode", {OpClass.INT_ARITH: 30.0, OpClass.INT_MULT: 6.0})
        result = fig4_narrow16_by_class.NarrowByClassResult(16, [row])
        text = fig4_narrow16_by_class.report(result)
        assert "Figure 4" in text
        assert row.total == pytest.approx(36.0)

    def test_fig7_suite_averages(self):
        rows = [fig7_power_total.Fig7Row(name, 100.0, 50.0)
                for name in all_names()]
        result = fig7_power_total.Fig7Result(rows)
        assert result.spec_reduction_pct == pytest.approx(50.0)
        assert result.media_reduction_pct == pytest.approx(50.0)
        assert "54.1" in fig7_power_total.report(result)

    def test_fig10_suite_averages(self):
        rows = [fig10_packing_speedup.Fig10Row(name, 8.0, 4.0)
                for name in all_names()]
        result = fig10_packing_speedup.Fig10Result(4, False, rows)
        assert result.spec_perfect == pytest.approx(8.0)
        assert result.media_realistic == pytest.approx(4.0)
        assert "Figure 10" in fig10_packing_speedup.report(result)

    def test_fig11_gap_closed(self):
        row = fig11_ipc.Fig11Row("ijpeg", 2.0, 2.4, 2.5)
        assert row.gap_closed_pct == pytest.approx(80.0)
        closed = fig11_ipc.Fig11Row("x", 2.0, 2.0, 2.0)
        assert closed.gap_closed_pct == 100.0

    def test_runner_registry(self):
        from repro.experiments.runner import EXPERIMENTS
        for key in ("table1", "table4", "fig1", "fig2", "fig4", "fig5",
                    "fig6", "fig7", "fig10", "fig10-replay",
                    "fig10-8wide", "fig11", "loaddetect"):
            assert key in EXPERIMENTS


class TestRunnerCLI:
    def test_runs_cheap_experiments(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 4" in out

    def test_rejects_unknown_experiment(self):
        import pytest as _pytest
        from repro.experiments.runner import main
        with _pytest.raises(SystemExit):
            main(["fig99"])
