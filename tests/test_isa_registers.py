"""Unit tests for the architected register file."""

import pytest

from repro.isa.registers import (
    NUM_INT_REGS,
    REG_INDEX,
    REG_NAMES,
    ZERO_REG,
    RegisterFile,
    reg_index,
)


class TestRegisterNames:
    def test_thirty_two_registers(self):
        assert NUM_INT_REGS == 32
        assert len(REG_NAMES) == 32

    def test_zero_register_is_r31(self):
        assert ZERO_REG == 31
        assert REG_NAMES[31] == "zero"

    def test_names_are_unique(self):
        assert len(set(REG_NAMES)) == 32

    def test_alpha_conventions(self):
        assert reg_index("v0") == 0
        assert reg_index("ra") == 26
        assert reg_index("gp") == 29
        assert reg_index("sp") == 30
        assert reg_index("fp") == 15

    def test_raw_spelling(self):
        for i in range(32):
            assert reg_index(f"r{i}") == i

    def test_integer_passthrough(self):
        assert reg_index(7) == 7

    def test_integer_out_of_range(self):
        with pytest.raises(ValueError):
            reg_index(32)
        with pytest.raises(ValueError):
            reg_index(-1)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            reg_index("r99")

    def test_case_insensitive(self):
        assert reg_index("SP") == 30

    def test_index_map_consistent(self):
        for name, idx in REG_INDEX.items():
            assert reg_index(name) == idx


class TestRegisterFile:
    def test_initially_zero(self):
        regs = RegisterFile()
        for i in range(32):
            assert regs.read(i) == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(3, 0xDEADBEEF)
        assert regs.read(3) == 0xDEADBEEF

    def test_zero_register_reads_zero(self):
        regs = RegisterFile()
        regs.write(ZERO_REG, 12345)
        assert regs.read(ZERO_REG) == 0

    def test_values_truncated_to_64_bits(self):
        regs = RegisterFile()
        regs.write(1, 1 << 64)
        assert regs.read(1) == 0
        regs.write(1, (1 << 64) + 7)
        assert regs.read(1) == 7

    def test_snapshot_restore(self):
        regs = RegisterFile()
        regs.write(2, 42)
        snap = regs.snapshot()
        regs.write(2, 99)
        regs.write(4, 17)
        regs.restore(snap)
        assert regs.read(2) == 42
        assert regs.read(4) == 0

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        regs.write(0, 5)
        assert snap[0] == 0
