"""Property tests for the two-phase contract: capture, then replay.

The fast backend's phase 2 rebuilds every instrument (width histogram,
fluctuation tracker, power accountant) from the compact columnar trace
captured in phase 1.  These properties pin the contract from both ends:

* a trace captured from the **reference** machine, replayed through the
  vectorized instrument twins, reproduces the reference run's width
  histogram, fluctuation counters, and power totals exactly;
* the whole fast backend (capture fused into its own pipeline) agrees
  with the reference machine on the *entire* serialized result — which
  covers the packed-op counters and power totals under packing configs
  the pure-capture property can't express.

Windows are kept small (<= 1500 committed instructions) so hypothesis
can afford several examples per run.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.exec.serialize import dict_divergences, result_to_dict
from repro.fastsim.capture import TraceCapture
from repro.fastsim.machine import FastMachine
from repro.fastsim.replay import replay_measurements
from repro.power.gating import GatingPolicy
from repro.workloads.registry import get_workload, resolve_warmup

WORKLOADS = ("go", "compress", "g721-encode", "gsm-decode", "perl")

#: Configurations without packing: the pure capture->replay property
#: runs on the reference machine, which records no packing rows.
PLAIN_CONFIGS = (
    BASELINE,
    BASELINE.with_gating(GatingPolicy(detect_loads=False)),
)

#: The full sweep for the end-to-end property, packing included.
ALL_CONFIGS = PLAIN_CONFIGS + (
    BASELINE.with_packing(),
    BASELINE.with_packing(replay=True),
)

windows = st.integers(min_value=64, max_value=1500)


@given(workload=st.sampled_from(WORKLOADS),
       config=st.sampled_from(PLAIN_CONFIGS),
       window=windows)
@settings(max_examples=8, deadline=None)
def test_captured_trace_replays_to_reference_instruments(
        workload, config, window):
    """Reference run + capture, then vectorized replay: the replayed
    instruments must equal the live ones counter for counter."""
    wl = get_workload(workload)
    machine = Machine(wl.build(1), config)
    machine.fast_forward(resolve_warmup(wl, 1))
    capture = TraceCapture()
    machine.attach_capture(capture)
    result = machine.run(max_insts=window)

    replayed = replay_measurements(capture, config.gating)
    assert replayed.widths.as_dict() == result.widths.as_dict()
    assert (replayed.fluctuation.as_dict()
            == result.fluctuation.as_dict())
    assert result.power is not None
    replayed_power = replayed.accountant.report(result.stats.cycles)
    assert replayed_power.as_dict() == result.power.as_dict()


@given(workload=st.sampled_from(WORKLOADS),
       config=st.sampled_from(ALL_CONFIGS),
       window=windows)
@settings(max_examples=8, deadline=None)
def test_fast_backend_matches_reference_end_to_end(
        workload, config, window):
    """The full two-phase backend against the reference machine: zero
    divergent paths in the serialized result (stats incl. packed-op
    counters, widths, fluctuation, power)."""
    wl = get_workload(workload)
    warmup = resolve_warmup(wl, 1)

    reference = Machine(wl.build(1), config)
    reference.fast_forward(warmup)
    ref = result_to_dict(reference.run(max_insts=window))

    fast = FastMachine(wl.build(1), config)
    fast.fast_forward(warmup)
    out = result_to_dict(fast.run(max_insts=window))
    assert dict_divergences(ref, out) == []
