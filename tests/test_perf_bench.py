"""repro-bench tests: matrix execution, document schema, diff logic,
and the committed baseline's integrity (the CI perf-smoke gate diffs
against it, so it must stay well-formed).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exec.engine import clear_memo
from repro.perf.bench import (
    DEFAULT_FAST_FLOOR,
    DEFAULT_THRESHOLD,
    DEFAULT_WORKLOADS,
    SCHEMA,
    check_fast_floor,
    diff_against,
    host_fingerprint,
    main as bench_main,
    run_matrix,
)
from repro.perf.metrics import reset_registry

BASELINE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" \
    / "BENCH_baseline.json"


@pytest.fixture(autouse=True)
def _fresh():
    clear_memo()
    reset_registry()
    yield
    clear_memo()
    reset_registry()


def tiny_doc(**overrides) -> dict:
    doc = {
        "schema": SCHEMA,
        "host": host_fingerprint(),
        "workloads": {
            "go": {"cycles": 1000, "committed": 1100,
                   "wall_seconds": 0.1, "cycles_per_sec": 10_000.0,
                   "insts_per_sec": 11_000.0,
                   "fast_wall_seconds": 0.02,
                   "fast_cycles_per_sec": 50_000.0,
                   "fast_insts_per_sec": 55_000.0,
                   "fast_speedup": 5.0},
        },
    }
    doc.update(overrides)
    return doc


class TestDiff:
    def test_within_threshold_passes(self):
        base = tiny_doc()
        current = tiny_doc()
        current["workloads"]["go"] = dict(
            base["workloads"]["go"], cycles_per_sec=9_000.0)
        notes, regressions = diff_against(current, base, 0.25)
        assert regressions == []
        assert any("go" in n for n in notes)

    def test_regression_beyond_threshold_fails(self):
        base = tiny_doc()
        current = tiny_doc()
        current["workloads"]["go"] = dict(
            base["workloads"]["go"], cycles_per_sec=7_000.0)  # -30%
        _, regressions = diff_against(current, base, 0.25)
        assert len(regressions) == 1
        assert "go" in regressions[0]

    def test_improvement_never_fails(self):
        base = tiny_doc()
        current = tiny_doc()
        current["workloads"]["go"] = dict(
            base["workloads"]["go"], cycles_per_sec=50_000.0)
        _, regressions = diff_against(current, base, 0.25)
        assert regressions == []

    def test_schema_mismatch_is_a_regression(self):
        base = tiny_doc(schema="repro-bench/0")
        _, regressions = diff_against(tiny_doc(), base, 0.25)
        assert any("schema" in r for r in regressions)

    def test_host_mismatch_is_only_a_note(self):
        base = tiny_doc(host={"platform": "other", "python": "0",
                              "machine": "vax", "cpus": 1})
        notes, regressions = diff_against(tiny_doc(), base, 0.25)
        assert regressions == []
        assert any("host" in n for n in notes)

    def test_fast_column_regression_fails(self):
        base = tiny_doc()
        current = tiny_doc()
        current["workloads"]["go"] = dict(
            base["workloads"]["go"], fast_cycles_per_sec=30_000.0)  # -40%
        _, regressions = diff_against(current, base, 0.25)
        assert len(regressions) == 1
        assert "fast" in regressions[0]

    def test_pre_fast_baseline_skips_fast_column(self):
        # Baselines written before the fast backend existed have no
        # fast_* columns; the diff must not crash or flag them.
        base = tiny_doc()
        for key in list(base["workloads"]["go"]):
            if key.startswith("fast_"):
                del base["workloads"]["go"][key]
        notes, regressions = diff_against(tiny_doc(), base, 0.25)
        assert regressions == []

    def test_workload_set_drift_is_noted_not_fatal(self):
        base = tiny_doc()
        base["workloads"]["extra"] = base["workloads"]["go"]
        current = tiny_doc()
        current["workloads"]["new"] = current["workloads"]["go"]
        notes, regressions = diff_against(current, base, 0.25)
        assert regressions == []
        assert any("extra" in n for n in notes)
        assert any("new" in n for n in notes)


class TestFastFloor:
    def test_passes_at_or_above_floor(self):
        assert check_fast_floor(tiny_doc(), 5.0) == []
        assert check_fast_floor(tiny_doc(), 3.0) == []

    def test_fails_below_floor(self):
        failures = check_fast_floor(tiny_doc(), 6.0)
        assert len(failures) == 1
        assert "go" in failures[0] and "6.00x" in failures[0]

    def test_missing_measurement_fails(self):
        doc = tiny_doc()
        del doc["workloads"]["go"]["fast_speedup"]
        failures = check_fast_floor(doc, 3.0)
        assert len(failures) == 1 and "go" in failures[0]

    def test_zero_floor_disables(self):
        doc = tiny_doc()
        doc["workloads"]["go"]["fast_speedup"] = 0.1
        assert check_fast_floor(doc, 0) == []

    def test_default_floor_is_sane(self):
        # The default must sit safely under the ~5-6x this backend
        # measures on an idle host, leaving headroom for noisy CI.
        assert 1.0 < DEFAULT_FAST_FLOOR <= 4.0


class TestMatrix:
    def test_run_matrix_document_shape(self):
        doc = run_matrix(("g721-encode",), scale=1, window=2_000,
                         repeats=1, quick=True, log=lambda _: None)
        assert doc["schema"] == SCHEMA
        row = doc["workloads"]["g721-encode"]
        assert row["cycles"] > 0
        assert row["cycles_per_sec"] > 0
        assert row["fast_cycles_per_sec"] > 0
        assert row["fast_speedup"] == pytest.approx(
            row["wall_seconds"] / row["fast_wall_seconds"], rel=0.01)
        assert row["cycles_per_sec"] == pytest.approx(
            row["cycles"] / row["wall_seconds"], rel=0.01)
        assert doc["obs_overhead"]["workload"] == "g721-encode"
        assert doc["engine"] is None              # quick skips it
        assert doc["host"] == host_fingerprint()
        assert doc["config_fingerprint"]
        assert doc["metrics"]["schema"].startswith("repro-metrics/")
        json.dumps(doc)                           # JSON-safe end to end

    def test_cli_writes_bench_file_and_diffs_clean_self(self, tmp_path,
                                                        capsys):
        code = bench_main(["--workloads", "g721-encode", "--repeats",
                           "1", "--window", "2000", "--quick",
                           "--out-dir", str(tmp_path)])
        assert code == 0
        (bench_file,) = tmp_path.glob("BENCH_*.json")
        doc = json.loads(bench_file.read_text())
        # Self-diff: a run can never regress against itself.
        code = bench_main(["--workloads", "g721-encode", "--repeats",
                           "1", "--window", "2000", "--quick",
                           "--out-dir", str(tmp_path),
                           "--against", str(bench_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles/sec" in out
        assert "fast backend" in out
        assert doc["quick"] is True

    def test_host_mismatch_note_goes_to_stderr(self, tmp_path, capsys):
        code = bench_main(["--workloads", "g721-encode", "--repeats",
                           "1", "--window", "2000", "--quick",
                           "--out-dir", str(tmp_path)])
        assert code == 0
        (bench_file,) = tmp_path.glob("BENCH_*.json")
        doc = json.loads(bench_file.read_text())
        doc["host"] = {"platform": "other", "python": "0",
                       "machine": "vax", "cpus": 1}
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))
        capsys.readouterr()
        code = bench_main(["--workloads", "g721-encode", "--repeats",
                           "1", "--window", "2000", "--quick",
                           "--out-dir", str(tmp_path),
                           "--against", str(tampered)])
        assert code == 0
        captured = capsys.readouterr()
        # Diagnostic context, not a measurement: stderr only, so
        # anything parsing the stdout diff never sees it.
        assert "host fingerprint" in captured.err
        assert "host fingerprint" not in captured.out

    def test_fast_floor_gate_fails_the_run(self, tmp_path, capsys):
        code = bench_main(["--workloads", "g721-encode", "--repeats",
                           "1", "--window", "2000", "--quick",
                           "--out-dir", str(tmp_path),
                           "--fast-floor", "1000"])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAST-FLOOR" in err and "FAIL" in err


class TestCommittedBaseline:
    def test_baseline_exists_and_is_well_formed(self):
        assert BASELINE_PATH.exists(), (
            "benchmarks/BENCH_baseline.json is the CI perf-smoke gate "
            "and must be committed")
        doc = json.loads(BASELINE_PATH.read_text())
        assert doc["schema"] == SCHEMA
        for name in DEFAULT_WORKLOADS:
            assert name in doc["workloads"], (
                f"baseline must cover the pinned matrix ({name})")
            assert doc["workloads"][name]["cycles_per_sec"] > 0
            assert doc["workloads"][name]["fast_speedup"] \
                >= DEFAULT_FAST_FLOOR, (
                    f"committed baseline's own {name} run is below the "
                    f"fast-floor gate")
        assert 0 < DEFAULT_THRESHOLD < 1
