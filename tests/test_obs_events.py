"""Event-bus tests: stage-ordering invariants replayed from events,
tracer equivalence, and zero-subscriber transparency."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.core.trace import PipelineTracer
from repro.memory.hierarchy import HierarchyConfig
from repro.obs.events import (
    EVENT_KINDS,
    EventRecorder,
    event_from_dict,
    event_to_dict,
)

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def loop_program(n=20) -> Assembler:
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.clr("s1")
    asm.label("loop")
    asm.op("addq", "s1", "s1", "s0")
    asm.op("xor", "t0", "s1", 3)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def narrow_pair_program(n=40) -> Assembler:
    """Independent narrow adds: plenty of same-opcode pack fodder."""
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.op("addq", "t2", "t2", 3)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def recorded_run(asm: Assembler, config=FAST) -> tuple[Machine, EventRecorder]:
    machine = Machine(asm.assemble(), config)
    recorder = EventRecorder()
    machine.subscribe(recorder)
    machine.run()
    assert machine.done
    return machine, recorder


class TestStageOrderingFromEvents:
    def test_committed_instructions_obey_stage_order(self):
        machine, recorder = recorded_run(loop_program())
        fetch = recorder.by_seq("fetch")
        dispatch = recorder.by_seq("dispatch")
        issue = recorder.by_seq("issue")
        complete = recorder.by_seq("complete")
        commits = recorder.by_seq("commit")
        assert commits
        for seq, commit in commits.items():
            assert fetch[seq].cycle <= dispatch[seq].cycle
            if seq in issue:
                assert dispatch[seq].cycle < issue[seq].cycle
                assert issue[seq].cycle < complete[seq].cycle
            assert complete[seq].cycle <= commit.cycle

    def test_commit_events_match_counter_and_are_in_order(self):
        machine, recorder = recorded_run(loop_program())
        commits = recorder.of_kind("commit")
        assert len(commits) == machine.stats.committed
        cycles = [e.cycle for e in commits]
        assert cycles == sorted(cycles)
        seqs = [e.seq for e in commits]
        assert seqs == sorted(seqs)

    def test_squash_and_recovery_events_fire_on_mispredicts(self):
        machine, recorder = recorded_run(loop_program())
        assert machine.stats.mispredicts > 0
        recoveries = recorder.of_kind("mispredict_recover")
        assert len(recoveries) == machine.stats.mispredicts
        squashed = {e.seq for e in recorder.of_kind("squash")}
        committed = {e.seq for e in recorder.of_kind("commit")}
        assert squashed
        assert not squashed & committed
        for event in recoveries:
            assert event.resume_cycle > event.cycle

    def test_icache_miss_events_on_realistic_hierarchy(self):
        machine, recorder = recorded_run(loop_program(), config=BASELINE)
        misses = recorder.of_kind("icache_miss")
        assert misses   # cold caches: the first fetch must miss
        for miss in misses:
            assert miss.latency > machine.config.hierarchy.l1_latency

    def test_pack_join_events_when_packing_enabled(self):
        machine, recorder = recorded_run(narrow_pair_program(),
                                         FAST.with_packing())
        joins = recorder.of_kind("pack_join")
        assert machine.stats.pack_groups > 0
        assert joins
        for join in joins:
            assert join.size >= 2
            assert join.leader_seq != join.seq
        packed_issues = [e for e in recorder.of_kind("issue") if e.packed]
        assert len(packed_issues) == len(joins)


class TestBusMechanics:
    def test_zero_subscribers_do_not_perturb_timing(self):
        plain = Machine(loop_program().assemble(), FAST)
        plain.run()
        observed = Machine(loop_program().assemble(), FAST)
        observed.subscribe(EventRecorder())
        observed.run()
        assert plain.stats.cycles == observed.stats.cycles
        assert plain.stats.committed == observed.stats.committed
        assert plain.stats.issued == observed.stats.issued

    def test_unsubscribe_stops_delivery(self):
        machine = Machine(loop_program().assemble(), FAST)
        recorder = EventRecorder()
        machine.subscribe(recorder)
        machine.step()
        seen = len(recorder)
        machine.unsubscribe(recorder)
        machine.run()
        assert len(recorder) == seen

    def test_recorder_limit_counts_dropped(self):
        machine = Machine(loop_program().assemble(), FAST)
        recorder = EventRecorder(limit=10)
        machine.subscribe(recorder)
        machine.run()
        assert len(recorder) == 10
        assert recorder.dropped > 0

    def test_event_dict_round_trip(self):
        _, recorder = recorded_run(loop_program(), config=BASELINE)
        kinds_seen = set()
        for event in recorder.events:
            rebuilt = event_from_dict(event_to_dict(event))
            assert rebuilt == event
            kinds_seen.add(event.kind)
        assert {"fetch", "dispatch", "issue", "complete", "commit",
                "icache_miss"} <= kinds_seen <= set(EVENT_KINDS)


class TestTracerEquivalence:
    def test_tracer_timelines_match_raw_event_replay(self):
        """The rewritten PipelineTracer must be a pure function of the
        event stream: rebuilding timelines from a raw recording gives
        identical stage timestamps."""
        machine = Machine(loop_program().assemble(), FAST)
        recorder = EventRecorder()
        machine.subscribe(recorder)
        tracer = PipelineTracer(machine)
        tracer.run(max_cycles=50_000)
        assert machine.done

        first = {}
        commits = {}
        squashed = set()
        for event in recorder.events:
            if event.kind in ("icache_miss", "mispredict_recover"):
                continue
            if event.kind == "commit":
                commits[event.seq] = event.cycle
            elif event.kind == "squash":
                squashed.add(event.seq)
            else:
                first.setdefault((event.kind, event.seq), event.cycle)

        assert len(tracer.committed()) == machine.stats.committed
        for timeline in tracer.timelines.values():
            seq = timeline.seq
            assert timeline.fetch == first.get(("fetch", seq), -1)
            assert timeline.dispatch == first.get(("dispatch", seq), -1)
            assert timeline.issue == first.get(("issue", seq), -1)
            assert timeline.complete == first.get(("complete", seq), -1)
            assert timeline.commit == commits.get(seq, -1)
            assert timeline.squashed == (seq in squashed)

    def test_tracer_observes_machine_driven_externally(self):
        """A subscriber needs no special driver: Machine.run() feeds
        the tracer exactly as tracer.run() does."""
        machine = Machine(loop_program().assemble(), FAST)
        tracer = PipelineTracer(machine)
        machine.run()
        assert machine.done
        assert len(tracer.committed()) == machine.stats.committed
