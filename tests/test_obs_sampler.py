"""Interval-sampler tests: window tiling, boundary math, and the
per-window series values."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.memory.hierarchy import HierarchyConfig
from repro.obs.sampler import IntervalSampler, Window, window_from_dict

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def work_program(n=200) -> Assembler:
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.op("xor", "t2", "t0", "t1")
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def sampled_run(window: int, config=FAST,
                n=200) -> tuple[Machine, IntervalSampler]:
    machine = Machine(work_program(n).assemble(), config)
    sampler = IntervalSampler(window=window)
    machine.add_probe(sampler)
    machine.run()
    assert machine.done
    sampler.finish(machine)
    return machine, sampler


class TestWindowBoundaries:
    def test_windows_tile_the_run_exactly(self):
        machine, sampler = sampled_run(window=64)
        assert sampler.total_cycles == machine.stats.cycles
        assert sampler.total_committed == machine.stats.committed

    def test_all_but_last_window_are_full_width(self):
        machine, sampler = sampled_run(window=64)
        assert len(sampler.windows) >= 2
        for window in sampler.windows[:-1]:
            assert window.cycles == 64
        assert 1 <= sampler.windows[-1].cycles <= 64

    def test_windows_are_contiguous_and_indexed(self):
        _, sampler = sampled_run(window=50)
        for i, window in enumerate(sampler.windows):
            assert window.index == i
            assert window.end_cycle - window.start_cycle == window.cycles
            if i:
                assert window.start_cycle == sampler.windows[i - 1].end_cycle
        assert sampler.windows[0].start_cycle == 0

    def test_exact_multiple_leaves_no_partial_window(self):
        machine = Machine(work_program().assemble(), FAST)
        sampler = IntervalSampler(window=32)
        machine.add_probe(sampler)
        for _ in range(96):
            machine.step()
        sampler.finish(machine)
        assert [w.cycles for w in sampler.windows] == [32, 32, 32]

    def test_window_of_one_cycle(self):
        machine, sampler = sampled_run(window=1, n=20)
        assert len(sampler.windows) == machine.stats.cycles
        assert all(w.cycles == 1 for w in sampler.windows)

    def test_rejects_nonpositive_window(self):
        try:
            IntervalSampler(window=0)
        except ValueError:
            pass
        else:
            raise AssertionError("window=0 accepted")


class TestSeriesValues:
    def test_ipc_is_committed_over_cycles(self):
        machine, sampler = sampled_run(window=64)
        for window in sampler.windows:
            assert window.ipc == window.committed / window.cycles
        total_ipc = machine.stats.ipc
        weighted = (sum(w.ipc * w.cycles for w in sampler.windows)
                    / machine.stats.cycles)
        assert abs(weighted - total_ipc) < 1e-9

    def test_occupancies_within_structure_bounds(self):
        machine, sampler = sampled_run(window=64)
        config = machine.config
        for window in sampler.windows:
            assert 0 <= window.ruu_occupancy <= config.ruu_size
            assert 0 <= window.lsq_occupancy <= config.lsq_size
            assert 0 <= window.fetchq_occupancy <= config.fetch_queue_size

    def test_narrow_fraction_on_narrow_code(self):
        # Every operand in work_program stays tiny: once the loop is
        # hot, windows should be overwhelmingly narrow.
        _, sampler = sampled_run(window=64)
        busy = [w for w in sampler.windows if w.committed]
        assert busy
        assert max(w.narrow16_frac for w in busy) > 0.9
        for window in sampler.windows:
            assert 0.0 <= window.narrow16_frac <= 1.0

    def test_packed_fraction_appears_with_packing(self):
        _, sampler = sampled_run(window=64, config=FAST.with_packing())
        assert any(w.packed_frac > 0 for w in sampler.windows)
        _, plain = sampled_run(window=64)
        assert all(w.packed_frac == 0 for w in plain.windows)

    def test_gated_power_tracks_activity(self):
        _, sampler = sampled_run(window=64)
        busy = [w for w in sampler.windows if w.issued]
        assert busy
        assert all(w.gated_mw > 0 for w in busy)

    def test_mispredicts_and_traps_sum_to_totals(self):
        machine, sampler = sampled_run(window=64)
        assert (sum(w.mispredicts for w in sampler.windows)
                == machine.stats.mispredicts)
        machine, sampler = sampled_run(
            window=64, config=FAST.with_packing(replay=True))
        assert (sum(w.replay_traps for w in sampler.windows)
                == machine.stats.replay_traps)


class TestWindowSerialization:
    def test_window_dict_round_trip(self):
        _, sampler = sampled_run(window=64)
        for window in sampler.windows:
            assert window_from_dict(window.as_dict()) == window

    def test_probe_can_be_detached(self):
        machine = Machine(work_program(20).assemble(), FAST)
        sampler = IntervalSampler(window=8)
        machine.add_probe(sampler)
        for _ in range(16):
            machine.step()
        machine.remove_probe(sampler)
        machine.run()
        sampler.finish(machine)
        assert sampler.total_cycles == 16
