"""Tests for the experiment service core and its HTTP front end.

The two acceptance properties of the service live here:

* **coalescing** — two concurrent identical sweeps cost exactly one
  fresh simulation (proven by the engine's fresh-run ledger and the
  ``service.coalesced`` counter), and both submitters receive results
  byte-identical to the local engine path;
* **backpressure** — a submission the bounded queue cannot take is
  rejected *immediately* with the typed 429-equivalent carrying queue
  depth and retry-after; it never hangs, and admission stays
  all-or-nothing.

Timing never decides these tests: ``HoldingService`` overrides the
``_before_execute`` seam to hold a job in flight until the test has
attached its second sweep.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.exec import RunContext, clear_memo
from repro.exec.engine import GLOBAL_STATS
from repro.perf.metrics import get_registry
from repro.service.api import (
    API_SCHEMA,
    Backpressure,
    ERR_DEADLINE,
    ERR_WORKER_CRASH,
    JobSpec,
    NotFound,
    RequestInvalid,
    ServiceUnavailable,
    SubmitRequest,
)
from repro.service.client import ServiceClient
from repro.service.http import HttpFrontend
from repro.service.service import ExperimentService, canonical_result_bytes

GO = SubmitRequest(jobs=(JobSpec(workload="go"),))


class HoldingService(ExperimentService):
    """Service whose workers block before executing until released."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.executing = threading.Event()
        self.release = threading.Event()

    def _before_execute(self, entry):
        self.executing.set()
        assert self.release.wait(timeout=120), "test never released worker"


def _counter(name: str) -> int:
    return get_registry().snapshot()["counters"].get(name, 0)


class TestCoalescing:
    def test_concurrent_identical_sweeps_one_simulation(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = HoldingService(ctx, queue_limit=8, workers=1).start()
        try:
            fresh_before = GLOBAL_STATS.fresh_runs
            coalesced_before = _counter("service.coalesced")

            first = service.submit(GO)
            assert service.executing.wait(timeout=60)
            # The job is in flight; an identical sweep must attach, not
            # enqueue.
            second = service.submit(GO)
            assert second.statuses[0].source == "coalesced"
            assert second.sweep_id != first.sweep_id

            service.release.set()
            final_first = service.wait(first.sweep_id, timeout=120)
            final_second = service.wait(second.sweep_id, timeout=120)
            assert final_first.ok and final_second.ok

            # Exactly one simulation ran for the two sweeps.
            assert GLOBAL_STATS.fresh_runs - fresh_before == 1
            assert _counter("service.coalesced") - coalesced_before == 1

            # Both submitters read the same bytes, and those bytes are
            # what the local engine path serializes for the same job.
            fp1 = final_first.statuses[0].fingerprint
            fp2 = final_second.statuses[0].fingerprint
            assert fp1 == fp2
            payload = service.result_bytes(fp1)
            assert payload == service.result_bytes(fp2)

            from repro.exec import RunEngine
            from repro.exec.serialize import result_to_dict
            local = RunEngine(RunContext()).run(GO.jobs[0].resolve())
            assert payload == canonical_result_bytes(
                result_to_dict(local))
        finally:
            service.release.set()
            service.shutdown()

    def test_terminal_sweep_serves_from_store(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = ExperimentService(ctx, workers=1).start()
        try:
            first = service.wait(service.submit(GO).sweep_id,
                                 timeout=120)
            assert first.ok
            # A later identical sweep is terminal at submission.
            warm = service.submit(GO)
            assert warm.done
            assert warm.statuses[0].source == "store"
        finally:
            service.shutdown()

    def test_store_survives_service_restart(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = ExperimentService(ctx, workers=1).start()
        try:
            done = service.wait(service.submit(GO).sweep_id, timeout=120)
            fingerprint = done.statuses[0].fingerprint
            payload = service.result_bytes(fingerprint)
        finally:
            service.shutdown()

        clear_memo()                    # only the disk store remains
        reborn = ExperimentService(ctx, workers=1).start()
        try:
            status = reborn.submit(GO)
            assert status.done
            assert status.statuses[0].source == "store"
            assert reborn.result_bytes(fingerprint) == payload
        finally:
            reborn.shutdown()


class TestBackpressure:
    def test_over_bound_submission_rejected_typed(self):
        service = HoldingService(RunContext(), queue_limit=1,
                                 workers=1).start()
        try:
            service.submit(GO)
            assert service.executing.wait(timeout=60)
            # Worker busy, queue empty: one more new job fills the bound.
            service.submit(SubmitRequest(
                jobs=(JobSpec(workload="compress"),)))

            with pytest.raises(Backpressure) as exc:
                service.submit(SubmitRequest(
                    jobs=(JobSpec(workload="gsm-encode"),)))
            err = exc.value
            assert err.http_status == 429
            assert err.queue_depth == 1
            assert err.queue_limit == 1
            assert err.retry_after >= 1.0

            # Coalescing is free: an identical in-flight sweep is not
            # "new work" and must still be admitted at full queue.
            attached = service.submit(GO)
            assert attached.statuses[0].source == "coalesced"
        finally:
            service.release.set()
            service.shutdown()

    def test_all_or_nothing_admission(self):
        service = HoldingService(RunContext(), queue_limit=1,
                                 workers=1).start()
        try:
            service.submit(GO)
            assert service.executing.wait(timeout=60)
            sweeps_before = service.health()["sweeps"]
            # Two new jobs, one queue slot: the whole sweep bounces and
            # neither job is admitted behind the caller's back.
            with pytest.raises(Backpressure):
                service.submit(SubmitRequest(jobs=(
                    JobSpec(workload="compress"),
                    JobSpec(workload="gsm-encode"))))
            assert service.health()["sweeps"] == sweeps_before
            assert service.health()["queue_depth"] == 0
        finally:
            service.release.set()
            service.shutdown()

    def test_unknown_workload_rejected_before_admission(self):
        service = ExperimentService(RunContext(), workers=1).start()
        try:
            with pytest.raises(RequestInvalid):
                service.submit(SubmitRequest(
                    jobs=(JobSpec(workload="no-such-benchmark"),)))
            assert service.health()["sweeps"] == 0
        finally:
            service.shutdown()

    def test_unknown_lookups_typed(self):
        service = ExperimentService(RunContext(), workers=1).start()
        try:
            with pytest.raises(NotFound):
                service.status("sweep-999999")
            with pytest.raises(NotFound):
                service.result_bytes("no-such-fingerprint")
            with pytest.raises(NotFound):
                service.events_since("sweep-999999", 0, 0.0)
        finally:
            service.shutdown()


# ------------------------------------------------------------------ HTTP

class _HttpServer:
    """Run an HttpFrontend on a private event loop thread (port 0)."""

    def __init__(self, service: ExperimentService) -> None:
        self.frontend = HttpFrontend(service, port=0)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.url = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(timeout=10), "HTTP server never bound"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        host, port = self.loop.run_until_complete(self.frontend.start())
        self.url = f"http://{host}:{port}"
        self._ready.set()
        try:
            self.loop.run_until_complete(self.frontend.serve_forever())
        except asyncio.CancelledError:
            pass
        finally:
            self.loop.run_until_complete(self.frontend.close())
            self.loop.close()

    def stop(self) -> None:
        def _cancel():
            for task in asyncio.all_tasks(self.loop):
                task.cancel()
        self.loop.call_soon_threadsafe(_cancel)
        self.thread.join(timeout=10)


class TestHttpEndToEnd:
    @pytest.fixture()
    def served(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = ExperimentService(ctx, queue_limit=8,
                                    workers=1).start()
        server = _HttpServer(service)
        try:
            yield ServiceClient(server.url), server, service
        finally:
            server.stop()
            service.shutdown()

    def test_submit_stream_fetch(self, served):
        client, _server, service = served
        status = client.submit(GO)
        assert status.sweep_id.startswith("sweep-")

        records = list(client.stream(status.sweep_id))
        kinds = [r.get("record") for r in records]
        assert kinds[0] == "sweep"
        assert "job" in kinds
        assert kinds[-1] == "sweep.end"
        assert records[-1]["ok"] is True

        final = client.status(status.sweep_id)
        assert final.ok
        fingerprint = final.statuses[0].fingerprint
        payload = client.result(fingerprint)
        # Served bytes == the service's canonical bytes == the store's.
        assert payload == service.result_bytes(fingerprint)
        assert json.loads(payload)["stats"]["committed"] > 0

        health = client.health()
        assert health["status"] == "ok"
        assert health["schema"] == API_SCHEMA

    def test_typed_errors_over_http(self, served):
        client, server, _service = served
        with pytest.raises(NotFound):
            client.status("sweep-424242")
        with pytest.raises(NotFound):
            client.result("no-such-fingerprint")
        with pytest.raises(NotFound):
            list(client.stream("sweep-424242"))
        with pytest.raises(RequestInvalid):
            client.submit(SubmitRequest(
                jobs=(JobSpec(workload="no-such-benchmark"),)))

        # A non-JSON body is a typed 400, not a 500.
        host, _, port = server.url.removeprefix("http://").partition(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request("POST", "/v1/sweeps", body=b"{not json")
            response = conn.getresponse()
            assert response.status == 400
            document = json.loads(response.read())
            assert document["error"] == "invalid-request"
        finally:
            conn.close()

    def test_backpressure_over_http_with_retry_after(self, tmp_path):
        clear_memo()
        service = HoldingService(RunContext(), queue_limit=1,
                                 workers=1).start()
        server = _HttpServer(service)
        try:
            client = ServiceClient(server.url)
            client.submit(GO)
            assert service.executing.wait(timeout=60)
            client.submit(SubmitRequest(
                jobs=(JobSpec(workload="compress"),)))

            # Typed on the client...
            with pytest.raises(Backpressure) as exc:
                client.submit(SubmitRequest(
                    jobs=(JobSpec(workload="gsm-encode"),)))
            assert exc.value.queue_limit == 1
            assert exc.value.retry_after >= 1.0

            # ...and carrying the standard header for plain clients.
            host, _, port = \
                server.url.removeprefix("http://").partition(":")
            conn = http.client.HTTPConnection(host, int(port),
                                              timeout=30)
            try:
                body = json.dumps(SubmitRequest(jobs=(
                    JobSpec(workload="gsm-encode"),)).to_dict())
                conn.request("POST", "/v1/sweeps", body=body.encode())
                response = conn.getresponse()
                assert response.status == 429
                assert int(response.getheader("Retry-After")) >= 1
                response.read()
            finally:
                conn.close()
        finally:
            service.release.set()
            server.stop()
            service.shutdown()


# -------------------------------------------------- faults and lifecycle

class CrashingService(ExperimentService):
    """Service whose workers crash on the first ``crashes`` executions."""

    def __init__(self, *args, crashes=1, **kwargs):
        super().__init__(*args, **kwargs)
        self._crashes_left = crashes

    def _before_execute(self, entry):
        if self._crashes_left > 0:
            self._crashes_left -= 1
            raise RuntimeError("injected worker crash")


class TestFaultIsolation:
    def test_one_crash_fails_typed_and_the_sweep_continues(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = CrashingService(ctx, workers=1, crashes=1,
                                  breaker_threshold=100).start()
        try:
            crashes_before = _counter("service.worker.crashes")
            status = service.submit(SubmitRequest(jobs=(
                JobSpec(workload="go"), JobSpec(workload="xlisp"))))
            final = service.wait(status.sweep_id, timeout=240)

            # Partial results: the crashed job is a typed per-job
            # failure, the other one landed — fault isolation, not a
            # failed sweep call.
            assert final.done and not final.ok
            failed, landed = final.statuses
            assert failed.state == "failed"
            assert failed.error_code == ERR_WORKER_CRASH
            assert "worker thread crashed" in failed.error
            assert landed.state == "done"
            assert service.result_bytes(landed.fingerprint)
            assert _counter("service.worker.crashes") - crashes_before == 1

            # The failed fingerprint does not pin: a resubmission
            # retries it fresh (the worker is out of crashes) and wins.
            retried_before = _counter("service.retried")
            retry = service.wait(service.submit(GO).sweep_id, timeout=240)
            assert retry.ok
            assert _counter("service.retried") - retried_before == 1
        finally:
            service.shutdown()


class TestCircuitBreaker:
    def test_consecutive_crashes_trip_typed_503(self):
        service = CrashingService(RunContext(), workers=1, crashes=100,
                                  breaker_threshold=2,
                                  breaker_cooldown=60.0).start()
        try:
            for _ in range(2):
                final = service.wait(service.submit(GO).sweep_id,
                                     timeout=240)
                assert final.statuses[0].error_code == ERR_WORKER_CRASH

            with pytest.raises(ServiceUnavailable) as exc:
                service.submit(GO)
            err = exc.value
            assert err.http_status == 503
            assert err.reason == "breaker-open"
            assert err.retry_after > 0
            assert err.details["consecutive_crashes"] == 2

            health = service.health()
            assert health["breaker"]["open"] is True
            assert health["ready"] is False
            assert health["ready_reason"] == "breaker-open"
        finally:
            service.shutdown()

    def test_half_open_success_fully_closes(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = CrashingService(ctx, workers=1, crashes=2,
                                  breaker_threshold=2,
                                  breaker_cooldown=0.05).start()
        try:
            for _ in range(2):
                service.wait(service.submit(GO).sweep_id, timeout=240)
            time.sleep(0.1)     # cooldown lapses: breaker half-opens

            # The probe submission is admitted, the worker is out of
            # crashes, and one success closes the breaker completely.
            final = service.wait(service.submit(GO).sweep_id, timeout=240)
            assert final.ok
            breaker = service.health()["breaker"]
            assert breaker["open"] is False
            assert breaker["consecutive_crashes"] == 0
        finally:
            service.shutdown()


class TestDeadline:
    def test_spent_budget_fails_typed_without_running(self):
        clear_memo()
        service = HoldingService(RunContext(), workers=1).start()
        try:
            first = service.submit(GO)
            assert service.executing.wait(timeout=60)
            # The held job eats the second sweep's entire budget while
            # it sits in the queue.
            expired_before = _counter("service.deadline.expired")
            fresh_before = GLOBAL_STATS.fresh_runs
            second = service.submit(SubmitRequest(
                jobs=(JobSpec(workload="compress"),),
                deadline_seconds=0.05))
            time.sleep(0.2)
            service.release.set()

            final = service.wait(second.sweep_id, timeout=240)
            assert final.done and not final.ok
            status = final.statuses[0]
            assert status.state == "failed"
            assert status.error_code == ERR_DEADLINE
            assert _counter("service.deadline.expired") - expired_before == 1
            # The expired job never reached the engine: only the held
            # first job simulated.
            service.wait(first.sweep_id, timeout=240)
            assert GLOBAL_STATS.fresh_runs - fresh_before == 1
        finally:
            service.release.set()
            service.shutdown()


class TestDrain:
    def test_graceful_drain_parks_queued_and_finishes_inflight(
            self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        journal_dir = tmp_path / "journal"
        service = HoldingService(ctx, workers=1,
                                 journal_dir=journal_dir).start()
        try:
            first = service.submit(GO)
            assert service.executing.wait(timeout=60)
            second = service.submit(SubmitRequest(
                jobs=(JobSpec(workload="compress"),)))

            summary = {}
            drainer = threading.Thread(
                target=lambda: summary.update(service.drain()),
                daemon=True)
            drainer.start()
            deadline = time.monotonic() + 30
            while service.health()["status"] != "draining":
                assert time.monotonic() < deadline
                time.sleep(0.01)

            # Draining: readiness false, new work refused typed, the
            # in-flight job still finishing.
            readiness = service.readiness()
            assert readiness["ready"] is False
            assert readiness["reason"] == "draining"
            with pytest.raises(ServiceUnavailable) as exc:
                service.submit(SubmitRequest(
                    jobs=(JobSpec(workload="gsm-encode"),)))
            assert exc.value.reason == "draining"

            service.release.set()
            drainer.join(timeout=240)
            assert summary == {"drained": True, "parked": 1, "done": 1}
            assert service.wait(first.sweep_id, timeout=1).ok
        finally:
            service.release.set()
            service.shutdown()

        # The parked job belongs to the next incarnation: a service
        # over the same journal resumes and completes it.
        clear_memo()
        reborn = ExperimentService(ctx, workers=1,
                                   journal_dir=journal_dir).start()
        try:
            final = reborn.wait(second.sweep_id, timeout=240)
            assert final.ok
        finally:
            reborn.shutdown()


class TestHealthEndpoints:
    def test_livez_and_readyz_split(self, tmp_path):
        clear_memo()
        ctx = RunContext(cache_dir=tmp_path / "cas", cache_layout="cas")
        service = ExperimentService(ctx, workers=1,
                                    journal_dir=tmp_path / "journal"
                                    ).start()
        server = _HttpServer(service)
        try:
            client = ServiceClient(server.url)
            live = client.live()
            assert live["live"] is True

            ready, document = client.ready()
            assert ready is True
            assert document["reason"] == "ok"
            assert document["queue_depth"] == 0
            assert document["journal"]["enabled"] is True
            assert document["journal"]["lag"] == 0

            # Drained: readiness flips 503 while liveness stays 200 —
            # an orchestrator must not kill a service shedding load on
            # purpose.
            service.drain()
            ready, document = client.ready()
            assert ready is False
            assert document["reason"] in ("draining", "stopping")
            assert client.live()["live"] is True
        finally:
            server.stop()
            service.shutdown()

    def test_oversized_request_gets_typed_413(self, tmp_path):
        clear_memo()
        service = ExperimentService(RunContext(), workers=1).start()
        server = _HttpServer(service)
        try:
            host, _, port = server.url.removeprefix("http://").partition(":")
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            try:
                # Announce a 9 MiB body; the typed 413 must arrive
                # before any of it is read.
                conn.putrequest("POST", "/v1/sweeps")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", str(9 * 1024 * 1024))
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 413
                document = json.loads(response.read())
                assert document["error"] == "payload-too-large"
                assert document["details"]["limit"] == 8 * 1024 * 1024
                assert document["details"]["length"] == 9 * 1024 * 1024
            finally:
                conn.close()
        finally:
            server.stop()
            service.shutdown()
