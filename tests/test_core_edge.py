"""Edge-case tests for the core: memory ordering, indirect control,
fetch stalls, conditional moves, and structural corner cases."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.isa.registers import reg_index
from repro.memory.hierarchy import HierarchyConfig

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def run(asm: Assembler, config=FAST) -> Machine:
    machine = Machine(asm.assemble(), config)
    machine.run()
    assert machine.done, "program did not finish"
    return machine


class TestMemoryOrdering:
    def test_load_after_store_same_address(self):
        """A load must observe the in-flight older store (the LSQ
        dependence), and timing must still terminate."""
        asm = Assembler()
        standard_prologue(asm)
        buf = asm.alloc("buf", 8)
        asm.li("s0", buf)
        asm.li("t0", 111)
        asm.store("stq", "t0", "s0", 0)
        asm.load("ldq", "t1", "s0", 0)      # depends on the store above
        asm.op("addq", "t2", "t1", 1)
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t2")) == 112

    def test_load_issue_waits_for_overlapping_store(self):
        """The load may not issue before the older overlapping store
        completes."""
        asm = Assembler()
        standard_prologue(asm)
        buf = asm.alloc("buf", 16)
        asm.li("s0", buf)
        asm.li("t0", 7)
        asm.store("stq", "t0", "s0", 0)
        asm.load("ldq", "t1", "s0", 0)
        asm.halt()
        machine = Machine(asm.assemble(), FAST)
        store_cycle = load_cycle = None
        while not machine.done and machine.stats.cycles < 1000:
            machine._step()
            for entry in list(machine.ruu.entries):
                if entry.issued:
                    if entry.dyn.inst.is_store and store_cycle is None:
                        store_cycle = entry.issue_cycle
                    if entry.dyn.inst.is_load and load_cycle is None:
                        load_cycle = entry.issue_cycle
        assert store_cycle is not None and load_cycle is not None
        assert load_cycle > store_cycle

    def test_non_overlapping_accesses_not_ordered(self):
        """Loads to disjoint addresses don't wait on older stores."""
        asm = Assembler()
        standard_prologue(asm)
        buf = asm.alloc("buf", 64)
        asm.data_words(buf, [0, 0, 5, 0])
        asm.li("s0", buf)
        asm.li("t0", 9)
        asm.store("stq", "t0", "s0", 0)
        asm.load("ldq", "t1", "s0", 16)     # disjoint
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t1")) == 5

    def test_byte_store_quad_load_overlap(self):
        asm = Assembler()
        standard_prologue(asm)
        buf = asm.alloc("buf", 8)
        asm.data_words(buf, [0x1111111111111111])
        asm.li("s0", buf)
        asm.li("t0", 0xFF)
        asm.store("stb", "t0", "s0", 3)
        asm.load("ldq", "t1", "s0", 0)
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t1")) == 0x11111111FF111111


class TestIndirectControl:
    def test_jmp_through_register(self):
        def build(landing_pc):
            asm = Assembler()
            standard_prologue(asm)
            asm.br("br", "setup")
            asm.label("landing")
            landing_index = asm.here()
            asm.li("v0", 42)
            asm.halt()
            asm.label("setup")
            asm.li("t0", landing_pc)
            asm.jmp("t0")
            return asm, landing_index

        # Two-phase build: the landing pad sits *before* the setup code,
        # so its index is independent of the li expansion length.
        probe, landing_index = build(0)
        landing_pc = probe.assemble().pc_of(landing_index)
        asm, _ = build(landing_pc)
        machine = run(asm)
        assert machine.feed.reg(reg_index("v0")) == 42

    def test_nested_calls_via_ras(self):
        asm = Assembler()
        standard_prologue(asm)
        asm.br("br", "main")
        asm.label("inner")
        asm.op("addq", "v0", "v0", 1)
        asm.ret()
        asm.label("outer")
        asm.op("subq", "sp", "sp", 8)
        asm.store("stq", "ra", "sp", 0)
        asm.bsr("inner")
        asm.bsr("inner")
        asm.load("ldq", "ra", "sp", 0)
        asm.op("addq", "sp", "sp", 8)
        asm.ret()
        asm.label("main")
        asm.clr("v0")
        asm.bsr("outer")
        asm.bsr("outer")
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("v0")) == 4

    def test_recursion_deeper_than_ras(self):
        """48 nested calls overflow the 32-entry RAS; the machine must
        still compute correctly (just slower)."""
        asm = Assembler()
        standard_prologue(asm)
        asm.br("br", "main")
        asm.label("countdown")
        asm.br("bne", "a0", "recurse")
        asm.ret()
        asm.label("recurse")
        asm.op("subq", "sp", "sp", 8)
        asm.store("stq", "ra", "sp", 0)
        asm.op("subq", "a0", "a0", 1)
        asm.op("addq", "v0", "v0", 1)
        asm.bsr("countdown")
        asm.load("ldq", "ra", "sp", 0)
        asm.op("addq", "sp", "sp", 8)
        asm.ret()
        asm.label("main")
        asm.clr("v0")
        asm.li("a0", 48)
        asm.bsr("countdown")
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("v0")) == 48


class TestConditionalMoves:
    def test_cmov_reads_old_destination(self):
        asm = Assembler()
        asm.li("t0", 5)        # dest's prior value
        asm.li("t1", 1)        # condition (nonzero)
        asm.li("t2", 9)
        asm.op("cmoveq", "t0", "t1", "t2")   # t1 != 0: keep t0
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t0")) == 5

    def test_cmov_dependence_on_destination(self):
        """CMOV must wait for the previous destination value — it is a
        true source (tested through the timing machine)."""
        asm = Assembler()
        asm.li("t0", 5)
        asm.li("t1", 0)
        asm.li("t2", 9)
        asm.op("addq", "t0", "t0", 1)          # redefine dest late
        asm.op("cmovne", "t0", "t1", "t2")     # t1 == 0: keep new t0 (6)
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t0")) == 6


class TestFetchEffects:
    def test_icache_misses_slow_fetch(self):
        body = Assembler()
        for _ in range(400):
            body.nop()
        body.halt()
        program = body.assemble()
        cold = Machine(program, BASELINE)
        cold_result = cold.run()
        warm = Machine(program, BASELINE)
        warm.fast_forward(401)                 # touch all I-cache lines
        # Re-run the same program image on a fresh feed but warm caches.
        warm2 = Machine(program, BASELINE)
        warm2.hierarchy = warm.hierarchy
        warm_result = warm2.run()
        assert warm_result.stats.cycles < cold_result.stats.cycles

    def test_wide_fetch_config(self):
        wide = BASELINE.with_decode_width(8)
        assert wide.fetch_width == 8
        assert wide.decode_width == 8
        assert wide.fetch_queue_size >= 8

    def test_issue_width_config(self):
        wide = BASELINE.with_issue_width(8, 8)
        assert wide.issue_width == 8 and wide.int_alus == 8
        # everything else untouched
        assert wide.decode_width == BASELINE.decode_width


class TestMultiplier:
    def test_single_mult_unit_serializes(self):
        def build(op):
            asm = Assembler()
            for r in ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"):
                asm.li(r, 3)
            for _ in range(50):
                for r in ("t0", "t1", "t2", "t3"):
                    asm.op(op, r, r, 1) if op == "addq" else \
                        asm.op(op, r, r, 3)
            asm.halt()
            return asm.assemble()

        adds = Machine(build("addq"), FAST).run()
        mults = Machine(build("mulq"), FAST).run()
        # One mult/div unit and 3-cycle latency vs four 1-cycle ALUs.
        assert mults.stats.cycles > adds.stats.cycles

    def test_mult_latency_respected(self):
        asm = Assembler()
        asm.li("t0", 7)
        asm.op("mulq", "t1", "t0", "t0")
        asm.op("addq", "t2", "t1", 1)       # dependent on the multiply
        asm.halt()
        machine = run(asm)
        assert machine.feed.reg(reg_index("t2")) == 50


class TestSafetyNets:
    def test_max_cycles_guard(self):
        asm = Assembler()
        asm.label("forever")
        asm.br("br", "forever")
        config = replace(FAST, max_cycles=200)
        machine = Machine(asm.assemble(), config)
        result = machine.run()
        assert not machine.done
        assert result.stats.cycles <= 200

    def test_empty_program_halts_immediately(self):
        asm = Assembler()
        asm.halt()
        machine = run(asm)
        assert machine.stats.committed == 1
