"""Unit tests for the branch predictors, BTB, and return-address stack."""

import pytest

from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.counters import CounterTable
from repro.branch.predictors import (
    BimodalPredictor,
    CombiningPredictor,
    GlobalPredictor,
    LocalPredictor,
    PerfectPredictor,
    make_predictor,
)


class TestCounterTable:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CounterTable(100)

    def test_starts_weakly_taken(self):
        table = CounterTable(4, bits=2)
        assert table.predict(0)
        assert table.value(0) == 2

    def test_saturates_high(self):
        table = CounterTable(4, bits=2)
        for _ in range(10):
            table.update(0, True)
        assert table.value(0) == 3

    def test_saturates_low(self):
        table = CounterTable(4, bits=2)
        for _ in range(10):
            table.update(0, False)
        assert table.value(0) == 0

    def test_three_bit_counters(self):
        table = CounterTable(4, bits=3)
        assert table.threshold == 4
        for _ in range(10):
            table.update(0, True)
        assert table.value(0) == 7


def train(predictor, pc, outcomes):
    """Feed a direction sequence; return the prediction accuracy."""
    correct = 0
    for taken in outcomes:
        if predictor.predict(pc, taken) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(outcomes)


class TestPerfect:
    def test_always_right(self):
        p = PerfectPredictor()
        outcomes = [True, False, True, True, False] * 20
        assert train(p, 0x1000, outcomes) == 1.0
        assert p.stats.mispredicts == 0


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor()
        assert train(p, 0x1000, [True] * 100) > 0.95

    def test_cannot_learn_alternation(self):
        # A 2-bit counter mispredicts heavily on strict alternation.
        p = BimodalPredictor()
        accuracy = train(p, 0x1000, [True, False] * 100)
        assert accuracy < 0.8

    def test_separate_pcs_independent(self):
        p = BimodalPredictor()
        train(p, 0x1000, [True] * 50)
        train(p, 0x2000, [False] * 50)
        assert p.lookup(0x1000)
        assert not p.lookup(0x2000)


class TestLocal:
    def test_learns_short_period_pattern(self):
        # The two-level local predictor captures patterns a bimodal
        # cannot — the reason Table 1's machine includes it.
        p = LocalPredictor()
        pattern = ([True, True, False] * 200)
        accuracy = train(p, 0x1000, pattern)
        assert accuracy > 0.9


class TestGlobal:
    def test_learns_correlation(self):
        # Outcome of the second branch equals the last outcome of the
        # first: visible only through global history.
        p = GlobalPredictor()
        correct = total = 0
        import random
        rng = random.Random(7)
        for _ in range(600):
            first = rng.random() < 0.5
            p.predict(0x100, first)
            p.update(0x100, first)
            predicted = p.predict(0x200, first)
            p.update(0x200, first)
            total += 1
            correct += (predicted == first)
        assert correct / total > 0.85


class TestCombining:
    def test_beats_or_matches_components_on_mixed_workload(self):
        combining = CombiningPredictor()
        pattern = [True, True, False] * 300
        accuracy = train(combining, 0x1000, pattern)
        assert accuracy > 0.85

    def test_lookup_untrained(self):
        p = CombiningPredictor()
        before = p.stats.lookups
        p.lookup(0x1000)
        assert p.stats.lookups == before


class TestFactory:
    def test_known_kinds(self):
        for kind, cls in (("perfect", PerfectPredictor),
                          ("combining", CombiningPredictor),
                          ("bimodal", BimodalPredictor),
                          ("local", LocalPredictor),
                          ("global", GlobalPredictor)):
            assert isinstance(make_predictor(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("neural")


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_retarget(self):
        btb = BranchTargetBuffer()
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_two_way_conflict_lru(self):
        btb = BranchTargetBuffer(entries=4, assoc=2)   # 2 sets
        stride = 2 * 4                                 # same set, idx/4
        a, b, c = 0, stride * 4, 2 * stride * 4
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)          # refresh a
        btb.update(c, 3)       # evicts b
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3


class TestRAS:
    def test_lifo(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop(self):
        ras = ReturnAddressStack()
        assert ras.pop() is None

    def test_circular_overflow(self):
        ras = ReturnAddressStack(entries=4)
        for pc in range(1, 7):
            ras.push(pc)
        # Only the newest 4 survive; the oldest were overwritten.
        assert [ras.pop() for _ in range(4)] == [6, 5, 4, 3]
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(1)
        ras.push(2)
        assert len(ras) == 2
