"""Integration tests for the benchmark stand-ins (Tables 2-3).

Each workload must (a) assemble, (b) run to completion functionally,
(c) compute a verifiable result where a Python model exists, and
(d) exhibit the qualitative profile the paper reports for its namesake.
"""

import pytest

from repro.core.config import BASELINE
from repro.core.feed import Feed
from repro.workloads.data import Xorshift64, audio_samples, image_block, text_bytes
from repro.workloads.registry import (
    MEDIABENCH,
    SPECINT95,
    all_workloads,
    dynamic_length,
    get_workload,
    resolve_warmup,
    suite_workloads,
)

SPEC_NAMES = {"compress", "gcc", "go", "ijpeg", "m88ksim", "perl",
              "vortex", "xlisp"}
MEDIA_NAMES = {"gsm-encode", "gsm-decode", "g721-encode", "g721-decode",
               "mpeg2-encode", "mpeg2-decode"}


def run_functional(name: str, limit: int = 2_000_000) -> Feed:
    feed = Feed(get_workload(name).build(), BASELINE)
    feed.fast_mode = True
    for _ in range(limit):
        if feed.next() is None:
            break
    assert feed.halted, f"{name} did not halt within {limit} instructions"
    return feed


class TestRegistry:
    def test_paper_benchmarks_registered(self):
        names = {w.name for w in all_workloads()}
        assert SPEC_NAMES <= names
        assert MEDIA_NAMES <= names

    def test_suites(self):
        assert {w.name for w in suite_workloads(SPECINT95)} == SPEC_NAMES
        assert {w.name for w in suite_workloads(MEDIABENCH)} == MEDIA_NAMES

    def test_descriptions_nonempty(self):
        for workload in all_workloads():
            assert workload.description

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("spice")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_workload("ijpeg").build(scale=0)

    def test_warmup_resolution(self):
        for workload in all_workloads():
            warmup = resolve_warmup(workload)
            total = dynamic_length(workload)
            assert 0 <= warmup < total

    def test_dynamic_length_cached_and_stable(self):
        w = get_workload("go")
        assert dynamic_length(w) == dynamic_length(w)


@pytest.mark.parametrize("name", sorted(SPEC_NAMES | MEDIA_NAMES))
class TestAllWorkloads:
    def test_builds_deterministically(self, name):
        w = get_workload(name)
        p1, p2 = w.build(), w.build()
        assert len(p1) == len(p2)
        assert p1.image == p2.image

    def test_runs_to_halt(self, name):
        run_functional(name)


class TestComputedResults:
    """Cross-check kernel outputs against Python models of the same
    computation, proving the kernels really compute what they claim."""

    def test_mpeg2_decode_checksum(self):
        from repro.workloads.media.mpeg2_k import _DEC_FRAME, _LINE
        feed = run_functional("mpeg2-decode")
        pred_bytes = image_block(256, _DEC_FRAME // 256, seed=0x9EC0)
        resid_bytes = image_block(256, _DEC_FRAME // 256, seed=0x4E51D)
        checksum = 0
        for _ in range(2):                       # two frame passes
            for group in range(_DEC_FRAME // _LINE):
                for lane in range(4):
                    i = group * _LINE + lane
                    r = (resid_bytes[i] - 128) >> 1   # arithmetic shift
                    v = max(0, min(255, pred_bytes[i] + r))
                    checksum += v
        assert feed.reg(12) == checksum          # s3 = r12

    def test_compress_counts_sum_to_probes(self):
        feed = run_functional("compress")
        from repro.workloads.spec.compress_k import _TEXT_LEN
        # matches + inserts equals the number of probes (2 passes).
        probes = 2 * (_TEXT_LEN // 16)
        matches = feed.reg(13)   # s4
        inserts = feed.reg(14)   # s5
        assert matches + inserts == probes
        assert inserts > 0

    def test_xlisp_tree_sum(self):
        feed = run_functional("xlisp")
        from repro.workloads.spec.xlisp_k import _CELLS
        # Leaf fixnums come from the PRNG in cell order; internal cells
        # consume no draws (see _heap_image).
        rng = Xorshift64(0x115BCE11)
        total = 0
        for i in range(_CELLS):
            if 2 * i + 2 >= _CELLS:
                total += rng.next_below(100)
        assert feed.reg(10) == 6 * total          # s1 = r10, 6 passes

    def test_m88ksim_retires_all_guest_instructions(self):
        feed = run_functional("m88ksim")
        from repro.workloads.spec.m88ksim_k import _GUEST_INSTRS
        assert feed.reg(12) == 3 * _GUEST_INSTRS  # s3 = r12, 3 runs

    def test_vortex_transaction_count(self):
        feed = run_functional("vortex")
        from repro.workloads.spec.vortex_k import _RECORDS
        assert feed.reg(11) == 2 * _RECORDS       # s2 = r11


class TestQualitativeProfiles:
    """The paper-reported characteristics each stand-in must keep."""

    @pytest.fixture(scope="class")
    def profiles(self):
        from repro.experiments.base import run_workload
        names = ("ijpeg", "compress", "go", "vortex", "gsm-encode",
                 "g721-encode")
        return {name: run_workload(name) for name in names}

    def test_ijpeg_narrower_than_compress(self, profiles):
        # Figure 4: ijpeg is among the narrowest, compress the widest.
        ijpeg = profiles["ijpeg"].widths.cumulative_pct(16)
        compress = profiles["compress"].widths.cumulative_pct(16)
        assert ijpeg > compress + 15

    def test_media_is_narrow(self, profiles):
        assert profiles["gsm-encode"].widths.cumulative_pct(16) > 50
        assert profiles["g721-encode"].widths.cumulative_pct(16) > 70

    def test_go_predicts_worst(self, profiles):
        # "go, notorious for its poor branch prediction".
        go_acc = profiles["go"].stats.branch_accuracy
        vortex_acc = profiles["vortex"].stats.branch_accuracy
        assert go_acc < vortex_acc
        assert go_acc < 0.92

    def test_gsm_has_narrow_multiplies(self, profiles):
        # "they do account for 6% of the narrow-width operations in gsm".
        from repro.isa.opcodes import OpClass
        by_class = profiles["gsm-encode"].widths.narrow_pct_by_class(16)
        assert by_class.get(OpClass.INT_MULT, 0.0) > 1.0

    def test_addresses_produce_33_bit_jump(self, profiles):
        # Figure 1's signature: a jump at 33 bits from heap references.
        widths = profiles["vortex"].widths
        assert widths.cumulative_pct(33) - widths.cumulative_pct(32) > 10


class TestDataGenerators:
    def test_xorshift_deterministic(self):
        a = Xorshift64(42)
        b = Xorshift64(42)
        assert [a.next64() for _ in range(5)] == [b.next64() for _ in range(5)]

    def test_xorshift_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            Xorshift64(0)

    def test_bounded_draws(self):
        rng = Xorshift64(7)
        assert all(0 <= rng.next_below(10) < 10 for _ in range(100))

    def test_audio_samples_are_16bit_signed(self):
        samples = audio_samples(1000)
        assert all(-32768 <= s <= 32767 for s in samples)
        # Speech-like: mostly small sample-to-sample deltas.
        deltas = [abs(b - a) for a, b in zip(samples, samples[1:])]
        assert sum(deltas) / len(deltas) < 1000

    def test_image_block_is_bytes(self):
        block = image_block(16, 16)
        assert len(block) == 256
        assert all(0 <= b <= 255 for b in block)

    def test_text_is_ascii(self):
        text = text_bytes(500)
        assert len(text) == 500
        assert all(b < 128 for b in text)
