"""Unit and property tests for narrow-width detection — the paper's
core mechanism (Sections 4.2-4.3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bitwidth.detect import (
    CUT_ADDRESS,
    CUT_NARROW,
    effective_width,
    is_narrow,
    ones_detect,
    operand_pair_width,
    zero_detect,
)
from repro.bitwidth.tags import UNKNOWN_TAG, ZERO_TAG, WidthTag, tag_value
from repro.isa.semantics import MASK64, to_unsigned

u64 = st.integers(min_value=0, max_value=MASK64)


class TestZeroOnesDetect:
    def test_zero_detect_zero48(self):
        # Figure 3's zero48 signal: upper 48 bits all zero.
        assert zero_detect(0xFFFF, 16)
        assert not zero_detect(0x1_0000, 16)

    def test_zero_detect_full_width(self):
        assert zero_detect(MASK64, 64)

    def test_ones_detect_negative(self):
        assert ones_detect(to_unsigned(-1), 16)
        assert ones_detect(to_unsigned(-65536), 16)
        assert not ones_detect(to_unsigned(-65537), 16)

    def test_ones_detect_positive_fails(self):
        assert not ones_detect(5, 16)

    @given(u64, st.integers(min_value=1, max_value=64))
    def test_detects_are_literal_bit_checks(self, v, w):
        if w < 64:
            high = v >> w
            assert zero_detect(v, w) == (high == 0)
            assert ones_detect(v, w) == (high == (1 << (64 - w)) - 1)


class TestEffectiveWidth:
    def test_paper_example(self):
        # "when adding 17, a 5-bit number, to 2, a 2-bit number, the
        # result is 19, a 5-bit number" (Section 2.2).
        assert effective_width(17) == 5
        assert effective_width(2) == 2
        assert effective_width(19) == 5

    def test_zero_and_minus_one(self):
        assert effective_width(0) == 1
        assert effective_width(MASK64) == 1      # -1: all leading ones

    def test_boundaries(self):
        assert effective_width(0xFFFF) == 16
        assert effective_width(0x1_0000) == 17
        assert effective_width(to_unsigned(-65536)) == 16
        assert effective_width(to_unsigned(-65537)) == 17

    def test_address_width(self):
        # Heap addresses just above 4 GB are 33-bit values — the jump
        # in Figure 1.
        assert effective_width(0x1_0000_0000) == 33

    def test_max_width(self):
        # Under the sign-extension rule the sign bit itself is always
        # reconstructible, so the maximum effective width is 63: the
        # most negative quadword sign-extends from 63 bits.
        assert effective_width(1 << 63) == 63
        assert effective_width((1 << 63) + 1) == 63
        assert effective_width(0x7FFF_FFFF_FFFF_FFFF) == 63

    @given(u64)
    def test_width_in_range(self, v):
        assert 1 <= effective_width(v) <= 64

    @given(u64)
    def test_narrow_at_effective_width(self, v):
        assert is_narrow(v, effective_width(v))

    @given(u64)
    def test_width_is_minimal(self, v):
        w = effective_width(v)
        if w > 1:
            assert not is_narrow(v, w - 1)

    @given(u64)
    def test_narrow_is_monotone(self, v):
        w = effective_width(v)
        for wider in (w, min(64, w + 1), 64):
            assert is_narrow(v, wider)

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_small_signed_values_are_narrow16(self, s):
        assert is_narrow(to_unsigned(s), CUT_NARROW)


class TestPairWidth:
    def test_pair_is_maximum(self):
        assert operand_pair_width(17, 2) == 5
        assert operand_pair_width(2, 17) == 5

    @given(u64, u64)
    def test_pair_symmetric(self, a, b):
        assert operand_pair_width(a, b) == operand_pair_width(b, a)

    @given(u64, u64)
    def test_pair_dominates_both(self, a, b):
        w = operand_pair_width(a, b)
        assert is_narrow(a, w) and is_narrow(b, w)


class TestTags:
    def test_tag_value_narrow(self):
        tag = tag_value(100)
        assert tag.narrow16 and tag.narrow33

    def test_tag_value_address(self):
        tag = tag_value(0x1_0000_0000)
        assert not tag.narrow16 and tag.narrow33

    def test_tag_value_wide(self):
        tag = tag_value(1 << 40)
        assert not tag.narrow16 and not tag.narrow33

    def test_tag_negative_narrow(self):
        # Section 4.3: ones-detect catches narrow negative numbers.
        tag = tag_value(to_unsigned(-3))
        assert tag.narrow16 and tag.narrow33

    def test_zero_tag(self):
        assert tag_value(0) == ZERO_TAG

    def test_unknown_tag_gates_nothing(self):
        assert UNKNOWN_TAG.gate_width == 64

    def test_gate_width(self):
        assert WidthTag(True, True).gate_width == CUT_NARROW
        assert WidthTag(False, True).gate_width == CUT_ADDRESS
        assert WidthTag(False, False).gate_width == 64

    def test_combine_requires_both(self):
        narrow = WidthTag(True, True)
        addr = WidthTag(False, True)
        wide = WidthTag(False, False)
        assert narrow.combine(narrow) == narrow
        assert narrow.combine(addr) == addr
        assert narrow.combine(wide) == wide

    @given(u64)
    def test_tag_consistent_with_detect(self, v):
        tag = tag_value(v)
        assert tag.narrow16 == is_narrow(v, CUT_NARROW)
        assert tag.narrow33 == is_narrow(v, CUT_ADDRESS)

    @given(u64)
    def test_narrow16_implies_narrow33(self, v):
        tag = tag_value(v)
        if tag.narrow16:
            assert tag.narrow33
