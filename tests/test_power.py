"""Unit tests for the Table 4 device model, gating policy, and power
accounting."""

import pytest

from repro.bitwidth.tags import UNKNOWN_TAG, WidthTag, tag_value
from repro.isa.opcodes import OpClass
from repro.power.accounting import PowerAccountant
from repro.power.devices import (
    MUX_OVERHEAD_MW,
    ZERO_DETECT_MW,
    Device,
    device_for,
    device_power,
)
from repro.power.gating import FULL_GATING, OPCODE_ONLY, GatingPolicy, gate_width

NARROW = WidthTag(True, True)
ADDRESS = WidthTag(False, True)
WIDE = WidthTag(False, False)


class TestDevices:
    def test_table4_64bit_column(self):
        assert device_power(Device.ADDER, 64) == 210.0
        assert device_power(Device.MULTIPLIER, 64) == 2100.0
        assert device_power(Device.LOGIC, 64) == 11.7
        assert device_power(Device.SHIFTER, 64) == 8.8

    def test_table4_32bit_column(self):
        assert device_power(Device.ADDER, 32) == 105.0
        assert device_power(Device.MULTIPLIER, 32) == 1050.0

    def test_table4_48bit_column_close_to_paper(self):
        # The paper's published 48-bit values (158, 1580, 8.7) are
        # rounded; linear scaling lands within 1%.
        assert device_power(Device.ADDER, 48) == pytest.approx(158, rel=0.01)
        assert device_power(Device.MULTIPLIER, 48) == pytest.approx(
            1580, rel=0.01)
        assert device_power(Device.LOGIC, 48) == pytest.approx(8.7, rel=0.02)

    def test_linear_scaling(self):
        # "power usage scaling linearly with the operand size".
        assert device_power(Device.ADDER, 16) == 210.0 / 4

    def test_width_validation(self):
        with pytest.raises(ValueError):
            device_power(Device.ADDER, 0)
        with pytest.raises(ValueError):
            device_power(Device.ADDER, 65)

    def test_class_mapping(self):
        assert device_for(OpClass.INT_ARITH) is Device.ADDER
        assert device_for(OpClass.INT_MULT) is Device.MULTIPLIER
        assert device_for(OpClass.INT_LOGIC) is Device.LOGIC
        assert device_for(OpClass.INT_SHIFT) is Device.SHIFTER
        # Memory/branch address arithmetic runs on the adder.
        assert device_for(OpClass.LOAD) is Device.ADDER
        assert device_for(OpClass.STORE) is Device.ADDER
        assert device_for(OpClass.BRANCH) is Device.ADDER
        assert device_for(OpClass.NOP) is None

    def test_overheads(self):
        assert ZERO_DETECT_MW == 4.2
        assert MUX_OVERHEAD_MW == 3.2


class TestGatingPolicy:
    def test_full_gating_16(self):
        assert gate_width(FULL_GATING, NARROW, NARROW) == 16

    def test_both_operands_must_be_narrow(self):
        # Figure 4 caption: "Both operands must be small".
        assert gate_width(FULL_GATING, NARROW, WIDE) == 64
        assert gate_width(FULL_GATING, WIDE, NARROW) == 64

    def test_address_cut(self):
        assert gate_width(FULL_GATING, NARROW, ADDRESS) == 33
        assert gate_width(FULL_GATING, ADDRESS, ADDRESS) == 33

    def test_gate16_only(self):
        policy = GatingPolicy(gate33=False)
        assert gate_width(policy, ADDRESS, ADDRESS) == 64
        assert gate_width(policy, NARROW, NARROW) == 16

    def test_gate33_only(self):
        policy = GatingPolicy(gate16=False)
        assert gate_width(policy, NARROW, NARROW) == 33

    def test_opcode_only_never_gates(self):
        assert not OPCODE_ONLY.enabled
        assert gate_width(OPCODE_ONLY, NARROW, NARROW) == 64

    def test_unknown_tag_blocks_gating(self):
        # A load result without a cache-side zero detect cannot gate.
        assert gate_width(FULL_GATING, UNKNOWN_TAG, NARROW) == 64


class TestAccounting:
    def test_narrow_add(self):
        acc = PowerAccountant()
        width = acc.record_op(OpClass.INT_ARITH, NARROW, NARROW)
        assert width == 16
        assert acc.baseline_total == 210.0
        # active slice + mux + zero-detect
        assert acc.gated_total == pytest.approx(
            210.0 * 16 / 64 + MUX_OVERHEAD_MW + ZERO_DETECT_MW)
        assert acc.saved16_total == pytest.approx(210.0 * 48 / 64)

    def test_wide_add_full_power(self):
        acc = PowerAccountant()
        acc.record_op(OpClass.INT_ARITH, WIDE, WIDE)
        # Full device power plus the always-on zero detect on the result.
        assert acc.gated_total == pytest.approx(210.0 + ZERO_DETECT_MW)
        assert acc.saved16_total == 0.0

    def test_address_add(self):
        acc = PowerAccountant()
        width = acc.record_op(OpClass.LOAD, ADDRESS, NARROW,
                              produces_result=True)
        assert width == 33
        assert acc.saved33_total == pytest.approx(210.0 * 31 / 64)

    def test_no_result_no_zero_detect(self):
        acc = PowerAccountant()
        acc.record_op(OpClass.STORE, WIDE, WIDE, produces_result=False)
        assert acc.overhead_total == 0.0

    def test_nop_not_counted(self):
        acc = PowerAccountant()
        width = acc.record_op(OpClass.NOP, NARROW, NARROW)
        assert width == 64
        assert acc.ops_total == 0

    def test_opcode_only_policy_has_no_overhead(self):
        acc = PowerAccountant(policy=GatingPolicy(
            gate16=False, gate33=False, operand_based=False))
        acc.record_op(OpClass.INT_ARITH, NARROW, NARROW)
        assert acc.gated_total == acc.baseline_total
        assert acc.overhead_total == 0.0

    def test_load_dependent_stat(self):
        acc = PowerAccountant()
        acc.record_op(OpClass.INT_ARITH, NARROW, NARROW,
                      operand_from_load=True)
        acc.record_op(OpClass.INT_ARITH, NARROW, NARROW,
                      operand_from_load=False)
        report = acc.report(cycles=10)
        assert report.load_dependent_pct == 50.0

    def test_report_per_cycle(self):
        acc = PowerAccountant()
        for _ in range(4):
            acc.record_op(OpClass.INT_ARITH, NARROW, NARROW)
        report = acc.report(cycles=2)
        assert report.baseline == pytest.approx(4 * 210.0 / 2)
        assert report.net_saved == pytest.approx(
            report.saved16 + report.saved33 - report.overhead)

    def test_report_reduction_sign(self):
        acc = PowerAccountant()
        for _ in range(100):
            acc.record_op(OpClass.INT_ARITH, NARROW, NARROW)
        report = acc.report(cycles=50)
        assert 0 < report.reduction_pct < 100

    def test_report_requires_cycles(self):
        with pytest.raises(ValueError):
            PowerAccountant().report(cycles=0)

    def test_overhead_never_free_when_gating(self):
        # Every gated op pays the mux; every result pays zero-detect.
        acc = PowerAccountant()
        acc.record_op(OpClass.INT_LOGIC, NARROW, NARROW)
        assert acc.overhead_total == pytest.approx(
            MUX_OVERHEAD_MW + ZERO_DETECT_MW)

    def test_class_width_histogram(self):
        acc = PowerAccountant()
        acc.record_op(OpClass.INT_ARITH, NARROW, NARROW)
        acc.record_op(OpClass.INT_ARITH, WIDE, WIDE)
        acc.record_op(OpClass.INT_MULT, NARROW, NARROW)
        assert acc.class_width_counts[(OpClass.INT_ARITH, 16)] == 1
        assert acc.class_width_counts[(OpClass.INT_ARITH, 64)] == 1
        assert acc.class_width_counts[(OpClass.INT_MULT, 16)] == 1

    def test_tagged_values_integration(self):
        acc = PowerAccountant()
        width = acc.record_op(OpClass.INT_ARITH, tag_value(17), tag_value(2))
        assert width == 16
