"""Program linter: each rule fires on a crafted bad program and stays
quiet on the registered workloads (which must be lint-clean)."""

from repro.analysis import lint_program
from repro.analysis.linter import max_severity
from repro.asm.assembler import Assembler
from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import Opcode
from repro.workloads.registry import all_workloads


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def test_zero_register_write_flagged():
    asm = Assembler("t")
    asm.op("addq", "zero", "t0", 1)     # result discarded
    asm.halt()
    diags = lint_program(asm.assemble())
    assert "L002" in _codes(diags)
    assert max_severity(diags) == "warning"


def test_unreachable_block_flagged():
    asm = Assembler("t")
    asm.br("br", "end")
    asm.op("addq", "t0", "t0", 1)       # dead
    asm.label("end")
    asm.halt()
    diags = lint_program(asm.assemble())
    assert "L003" in _codes(diags)


def test_never_written_register_read_flagged():
    asm = Assembler("t")
    asm.op("addq", "t0", "s5", 1)       # s5 is never written
    asm.halt()
    diags = lint_program(asm.assemble())
    l004 = [d for d in diags if d.code == "L004"]
    assert l004 and "s5" in l004[0].message


def test_bad_branch_target_is_error():
    # Hand-built program: the assembler itself refuses bad labels, so
    # construct the out-of-range target directly.
    program = Program(instructions=[
        Instruction(Opcode.BR, target=99),
        Instruction(Opcode.HALT),
    ])
    diags = lint_program(program)
    assert "L001" in _codes(diags)
    assert max_severity(diags) == "error"


def test_indirect_jump_is_informational():
    asm = Assembler("t")
    asm.li("t0", 0x10000)
    asm.jmp("t0")
    asm.halt()
    diags = lint_program(asm.assemble())
    assert "L005" in _codes(diags)
    assert all(d.severity != "error" for d in diags if d.code == "L005")


def test_diagnostics_carry_source_locations():
    asm = Assembler("t")
    asm.op("addq", "zero", "t0", 1)
    asm.halt()
    diags = lint_program(asm.assemble())
    flagged = next(d for d in diags if d.code == "L002")
    assert flagged.location is not None
    path, line = flagged.location.rsplit(":", 1)
    assert path.endswith("test_analysis_linter.py")
    assert line.isdigit() and int(line) > 0


def test_registered_workloads_are_lint_clean():
    for workload in all_workloads():
        diags = lint_program(workload.build(1))
        worst = max_severity(diags)
        assert worst in (None, "info"), (
            f"{workload.name}: {[str(d) for d in diags]}")


def test_dead_register_write_flagged():
    # Seeded dead write: t0 is rewritten on every path before any read.
    asm = Assembler("t")
    asm.op("addq", "t0", "t1", 1)       # dead — overwritten below
    asm.op("addq", "t0", "t1", 2)
    asm.op("addq", "t2", "t0", 0)
    asm.halt()
    diags = lint_program(asm.assemble())
    l006 = [d for d in diags if d.code == "L006"]
    assert l006 and l006[0].index == 0
    assert "t0" in l006[0].message


def test_dead_write_not_flagged_when_read_on_one_path():
    # A read on *any* CFG path keeps the write live — no finding.
    asm = Assembler("t")
    asm.op("addq", "t0", "t1", 1)
    asm.br("beq", "t3", "skip")
    asm.op("addq", "t2", "t0", 0)       # reads t0 on the taken arm
    asm.label("skip")
    asm.op("addq", "t0", "t1", 2)
    asm.op("addq", "t4", "t0", 0)
    asm.halt()
    diags = lint_program(asm.assemble())
    assert not [d for d in diags if d.code == "L006" and d.index == 0]


def test_stack_pointer_write_exempt_from_dead_write():
    # standard_prologue's sp setup is ABI convention, not a mistake.
    from repro.asm.assembler import standard_prologue
    asm = Assembler("t")
    standard_prologue(asm)
    asm.op("addq", "t0", "t1", 1)
    asm.halt()
    diags = lint_program(asm.assemble())
    assert not [d for d in diags if d.code == "L006" and "sp" in d.message]


def test_store_never_loaded_flagged():
    # Mid-program store to a buffer nothing ever loads from.
    asm = Assembler("t")
    buf = asm.alloc("buf", 16)
    src = asm.alloc("src", 16)
    asm.li("s0", buf)
    asm.li("s1", src)
    asm.store("stq", "t0", "s0", 0)     # never loaded back
    asm.load("ldq", "t1", "s1", 0)      # loads from elsewhere
    asm.op("addq", "t2", "t1", 1)
    asm.br("bne", "t2", "tail")         # store is NOT in the exit block
    asm.label("tail")
    asm.halt()
    diags = lint_program(asm.assemble())
    l007 = [d for d in diags if d.code == "L007"]
    assert l007
    assert "never loaded" in l007[0].message


def test_exit_block_result_store_exempt_from_dead_store():
    # Stores in a HALT-terminated block are result emission.
    asm = Assembler("t")
    buf = asm.alloc("buf", 16)
    asm.li("s0", buf)
    asm.store("stq", "t0", "s0", 0)
    asm.halt()
    diags = lint_program(asm.assemble())
    assert not [d for d in diags if d.code == "L007"]
