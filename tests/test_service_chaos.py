"""Tests for the service-tier chaos harness.

The scenario matrix itself is the contract under test: a subset of
fast scenarios (each runs the cheapest workload at most twice) must
come back with exactly the verdict it promises — detected, never
silent, never a false positive.  The shared :func:`corrupt_file` fault
model is unit-tested directly.
"""

from __future__ import annotations

import pytest

from repro.robust.chaos import DETECTED, MASKED
from repro.robust.inject import corrupt_file
from repro.robust.service_chaos import (
    SCENARIO_EXPECT,
    SERVICE_SCENARIOS,
    service_chaos_suite,
)


class TestCorruptFile:
    def test_bitflip_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "victim.bin"
        original = bytes(range(256))
        path.write_bytes(original)
        detail = corrupt_file(path, mode="bitflip", seed=3)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        diff = [(i, a ^ b) for i, (a, b)
                in enumerate(zip(original, damaged)) if a != b]
        assert len(diff) == 1
        assert bin(diff[0][1]).count("1") == 1
        assert "victim.bin" in detail

    def test_bitflip_is_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        payload = b"x" * 512
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a, mode="bitflip", seed=11)
        corrupt_file(b, mode="bitflip", seed=11)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload

    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "victim.bin"
        path.write_bytes(b"y" * 100)
        corrupt_file(path, mode="truncate")
        assert path.read_bytes() == b"y" * 50

    def test_empty_file_cannot_be_bitflipped(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(path, mode="bitflip")

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "victim.bin"
        path.write_bytes(b"z")
        with pytest.raises(ValueError):
            corrupt_file(path, mode="zero-out")


class TestScenarioCatalog:
    def test_every_scenario_declares_an_expectation(self):
        assert set(SCENARIO_EXPECT) == set(SERVICE_SCENARIOS)
        assert all(v in (DETECTED, MASKED)
                   for v in SCENARIO_EXPECT.values())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            service_chaos_suite(scenarios=["svc-nonexistent"])


class TestServiceScenarios:
    def test_fast_scenarios_meet_their_verdicts(self):
        # The cheap end of the matrix: two that exercise the worker /
        # breaker fault paths (one simulation each) and two pure-HTTP
        # ones (reference simulation only).  The full 8-scenario matrix
        # runs in CI via `repro-chaos --service-chaos`.
        names = ["svc-worker-death", "svc-breaker-trip",
                 "svc-malformed-request", "svc-oversized-request"]
        outcomes = service_chaos_suite(seed=0, scenarios=names)
        assert [o.injector for o in outcomes] == names
        for outcome in outcomes:
            assert outcome.ok, f"{outcome.injector}: {outcome.detail}"
            assert outcome.verdict == SCENARIO_EXPECT[outcome.injector], \
                f"{outcome.injector}: {outcome.detail}"
