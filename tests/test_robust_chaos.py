"""Tests for the chaos harness (:mod:`repro.robust.chaos` + CLI).

Small windows keep these fast; the full 14-workload matrix is the
``repro-chaos`` CLI's own acceptance run (exercised in CI).
"""

from __future__ import annotations

import pytest

from repro.robust.chaos import (
    DETECTED,
    MASKED,
    UNARMED,
    cache_chaos,
    chaos_run,
    chaos_suite,
    derive_seed,
    summarize,
)
from repro.robust.cli import main
from repro.robust.faults import parse_token
from repro.robust.inject import make_injector

_WINDOW = 3000


class TestChaosRuns:
    def test_every_injector_masked_or_detected(self):
        outcomes = chaos_suite(["g721-encode"],
                               ["tag-flip", "tag-conservative",
                                "result-corrupt", "replay-drop"],
                               seed=0, window=_WINDOW)
        assert all(o.ok for o in outcomes)
        by_name = {o.injector: o for o in outcomes}
        assert by_name["tag-flip"].verdict == DETECTED
        assert by_name["tag-conservative"].verdict == MASKED
        assert by_name["result-corrupt"].verdict == DETECTED

    def test_chaos_is_deterministic_per_seed(self):
        def trial():
            injector = make_injector(
                "tag-flip", seed=derive_seed(7, "g721-encode", "tag-flip"))
            return chaos_run("g721-encode", injector, seed=7,
                             window=_WINDOW)
        first, second = trial(), trial()
        assert (first.verdict, first.injections, first.detail) == \
               (second.verdict, second.injections, second.detail)

    def test_replay_drop_detected_on_trapping_workload(self):
        injector = make_injector("replay-drop", seed=0, site=0)
        outcome = chaos_run("perl", injector, seed=0, window=10_000)
        assert outcome.verdict == DETECTED

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError):
            make_injector("frobnicate")

    def test_summarize_counts(self):
        outcomes = chaos_suite(["g721-encode"], ["tag-flip"],
                               seed=0, window=_WINDOW)
        counts = summarize(outcomes)
        assert counts["silent"] == 0 and counts["false-positive"] == 0
        assert counts[DETECTED] + counts[MASKED] + counts[UNARMED] == 1


class TestCacheChaos:
    @pytest.mark.parametrize("mode", ["bitflip", "truncate"])
    def test_cache_corruption_detected(self, tmp_path, mode):
        outcome = cache_chaos(tmp_path, mode=mode, seed=3)
        assert outcome.verdict == DETECTED
        assert outcome.violations == 1   # quarantine count


class TestFaultTokens:
    def test_parse_token_roundtrip(self):
        assert parse_token("crash") == ("crash", None)
        assert parse_token("hang:/tmp/x") == ("hang", "/tmp/x")
        with pytest.raises(ValueError):
            parse_token("explode")


class TestChaosCLI:
    def test_single_trial_exits_zero(self, capsys):
        code = main(["-w", "g721-encode", "-i", "tag-flip",
                     "--seed", "0", "--window", str(_WINDOW)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 silent corruptions" in out
        assert "detected" in out

    def test_list_prints_catalog(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("tag-flip", "tag-conservative", "result-corrupt",
                     "replay-drop", "cache-bitflip"):
            assert name in out

    def test_cache_chaos_flag(self, tmp_path, capsys):
        code = main(["--cache-chaos", "bitflip", "--seed", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "-w", "g721-encode", "-i", "tag-flip",
                     "--window", str(_WINDOW)])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache-bitflip" in out
