"""Cross-cutting property tests: the timing model must never change
program semantics.

Random straight-line programs (operates, loads, stores over a scratch
buffer) are run through (a) the pure functional feed, (b) the full
timing machine, (c) the machine with packing, and (d) with replay
packing — all four must produce identical architected state.  This is
the key safety property of both paper optimizations: they change *when*
operations execute, never *what* they compute.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.feed import Feed
from repro.core.machine import Machine
from repro.memory.hierarchy import HierarchyConfig

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))

_OPERATES = ("addq", "subq", "addl", "subl", "s4addq", "s8addq",
             "cmpeq", "cmplt", "cmpult", "mulq", "mull",
             "and", "bis", "xor", "bic", "ornot", "eqv", "zapnot",
             "sll", "srl", "sra", "extbl", "extwl",
             "cmoveq", "cmovne")
_WORK_REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "s1", "s2", "s3", "v0")

op_strategy = st.one_of(
    # operate: (mnemonic, rd, ra, rb-or-literal)
    st.tuples(st.sampled_from(_OPERATES),
              st.sampled_from(_WORK_REGS),
              st.sampled_from(_WORK_REGS),
              st.one_of(st.sampled_from(_WORK_REGS),
                        st.integers(min_value=0, max_value=255))),
    # load: ("load", mnemonic, rd, disp)
    st.tuples(st.just("load"),
              st.sampled_from(("ldq", "ldl", "ldwu", "ldbu")),
              st.sampled_from(_WORK_REGS),
              st.integers(min_value=0, max_value=24)),
    # store: ("store", mnemonic, rs, disp)
    st.tuples(st.just("store"),
              st.sampled_from(("stq", "stl", "stw", "stb")),
              st.sampled_from(_WORK_REGS),
              st.integers(min_value=0, max_value=24)),
)


def build_program(ops, seeds):
    asm = Assembler("random")
    standard_prologue(asm)
    buf = asm.alloc("buf", 64)
    asm.data_words(buf, seeds[:8])
    asm.li("s0", buf)
    for i, (reg, seed) in enumerate(zip(_WORK_REGS, seeds)):
        asm.li(reg, seed)
    for op in ops:
        if op[0] == "load":
            _, mnemonic, rd, disp = op
            asm.load(mnemonic, rd, "s0", disp)
        elif op[0] == "store":
            _, mnemonic, rs, disp = op
            asm.store(mnemonic, rs, "s0", disp)
        else:
            mnemonic, rd, ra, rb = op
            asm.op(mnemonic, rd, ra, rb)
    asm.halt()
    return asm.assemble(), buf


def architected_state(feed: Feed, buf: int):
    regs = tuple(feed.reg(r) for r in range(32))
    memory = tuple(feed.memory.load(buf + 8 * i, 8) for i in range(8))
    return regs, memory


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=40),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10))
def test_timing_machine_matches_functional_execution(ops, seeds):
    program, buf = build_program(ops, seeds)

    feed = Feed(program, FAST)
    feed.fast_mode = True
    while feed.next() is not None:
        pass
    reference = architected_state(feed, buf)

    machine = Machine(program, FAST)
    machine.run()
    assert architected_state(machine.feed, buf) == reference


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=40),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10))
def test_packing_preserves_semantics(ops, seeds):
    program, buf = build_program(ops, seeds)

    plain = Machine(program, FAST)
    plain.run()
    reference = architected_state(plain.feed, buf)

    for config in (FAST.with_packing(),
                   FAST.with_packing(replay=True),
                   FAST.with_packing(max_subwords=2),
                   FAST.with_packing(same_opcode=False)):
        machine = Machine(program, config)
        machine.run()
        assert architected_state(machine.feed, buf) == reference


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=30),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10))
def test_packing_never_increases_cycles(ops, seeds):
    program, _ = build_program(ops, seeds)
    plain = Machine(program, FAST).run()
    packed = Machine(program, FAST.with_packing()).run()
    assert packed.stats.cycles <= plain.stats.cycles
    assert packed.stats.committed == plain.stats.committed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=30),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10))
def test_power_accounting_invariants(ops, seeds):
    program, _ = build_program(ops, seeds)
    machine = Machine(program, BASELINE)
    result = machine.run()
    power = result.power
    # Gated power can exceed baseline only by the overhead it spends.
    assert power.gated <= power.baseline + power.overhead + 1e-9
    assert power.saved16 >= 0 and power.saved33 >= 0
    assert power.overhead >= 0
    # Net savings identity (Figure 6's definition).
    assert abs(power.net_saved
               - (power.saved16 + power.saved33 - power.overhead)) < 1e-9
    # Gating accounting never changes timing.
    plain = Machine(program, BASELINE.with_gating(
        replace(BASELINE.gating, gate16=False, gate33=False))).run()
    assert plain.stats.cycles == result.stats.cycles
