"""Tests for the machine invariant guards (:mod:`repro.robust.guards`).

The two halves of the guard contract:

* **no false positives** — on an unperturbed machine, across random
  programs and every packing configuration, no guard ever fires;
* **real detection** — a single injected width-tag flip on a live
  value fires exactly one (tag) violation; the other injectors each
  fire their owed guard on real workloads.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.memory.hierarchy import HierarchyConfig
from repro.obs.events import EventRecorder, InvariantViolationEvent
from repro.robust.guards import GuardSet, InvariantViolation
from repro.robust.inject import (
    ReplayDropInjector,
    ResultCorruptInjector,
    TagFlipInjector,
)
from repro.workloads.registry import get_workload, resolve_warmup

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))

_OPERATES = ("addq", "subq", "addl", "subl", "s4addq", "s8addq",
             "cmpeq", "cmplt", "cmpult", "mulq", "mull",
             "and", "bis", "xor", "bic", "ornot", "eqv", "zapnot",
             "sll", "srl", "sra", "extbl", "extwl",
             "cmoveq", "cmovne")
_WORK_REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "s1", "s2", "s3", "v0")

op_strategy = st.one_of(
    st.tuples(st.sampled_from(_OPERATES),
              st.sampled_from(_WORK_REGS),
              st.sampled_from(_WORK_REGS),
              st.one_of(st.sampled_from(_WORK_REGS),
                        st.integers(min_value=0, max_value=255))),
    st.tuples(st.just("load"),
              st.sampled_from(("ldq", "ldl", "ldwu", "ldbu")),
              st.sampled_from(_WORK_REGS),
              st.integers(min_value=0, max_value=24)),
    st.tuples(st.just("store"),
              st.sampled_from(("stq", "stl", "stw", "stb")),
              st.sampled_from(_WORK_REGS),
              st.integers(min_value=0, max_value=24)),
)


def build_program(ops, seeds):
    asm = Assembler("random")
    standard_prologue(asm)
    buf = asm.alloc("buf", 64)
    asm.data_words(buf, seeds[:8])
    asm.li("s0", buf)
    for reg, seed in zip(_WORK_REGS, seeds):
        asm.li(reg, seed)
    for op in ops:
        if op[0] == "load":
            _, mnemonic, rd, disp = op
            asm.load(mnemonic, rd, "s0", disp)
        elif op[0] == "store":
            _, mnemonic, rs, disp = op
            asm.store(mnemonic, rs, "s0", disp)
        else:
            mnemonic, rd, ra, rb = op
            asm.op(mnemonic, rd, ra, rb)
    asm.halt()
    return asm.assemble()


# ------------------------------------------------------- property: clean


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=40),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10))
def test_unperturbed_machine_never_fires_a_guard(ops, seeds):
    program = build_program(ops, seeds)
    for config in (FAST, FAST.with_packing(), FAST.with_packing(replay=True)):
        machine = Machine(program, config)
        guards = GuardSet(machine)   # raise mode: a firing fails loudly
        machine.run()
        assert guards.clean
        # the guards genuinely evaluated something
        assert guards.checks_run["tag"] > 0
        assert guards.checks_run["ruu"] > 0


# ------------------------------------------- property: one flip, one fire


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=40),
       seeds=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                      min_size=10, max_size=10),
       site=st.integers(min_value=0, max_value=30))
def test_single_tag_flip_fires_exactly_one_violation(ops, seeds, site):
    program = build_program(ops, seeds)
    # Packing disabled: the flipped tag influences nothing downstream,
    # so the blast radius is exactly the one lying claim.
    machine = Machine(program, FAST)
    injector = TagFlipInjector(site=site, count=1)
    injector.install(machine)
    guards = GuardSet(machine, collect=True)
    machine.run()
    if injector.armed:
        assert len(guards.violations) == 1
        violation = guards.violations[0]
        assert violation.check == "tag"
        assert violation.seq == injector.injections[0].seq
    else:
        # no eligible site at that index: nothing may fire either
        assert guards.clean


# --------------------------------------------------- violation anatomy


def _flip_one(workload_name="g721-encode", collect=False):
    workload = get_workload(workload_name)
    machine = Machine(workload.build(1), BASELINE)
    injector = TagFlipInjector(site=0, count=1)
    injector.install(machine)
    guards = GuardSet(machine, collect=collect)
    recorder = EventRecorder()
    machine.subscribe(recorder)
    machine.fast_forward(resolve_warmup(workload, 1))
    return machine, injector, guards, recorder


class TestViolationAnatomy:
    def test_raise_mode_raises_typed_violation_with_location(self):
        machine, injector, guards, _ = _flip_one()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.run(max_insts=5000)
        violation = excinfo.value
        assert violation.check == "tag"
        assert violation.cycle == machine.cycle
        assert violation.seq == injector.injections[0].seq
        assert violation.index >= 0
        # srcmap location, when present, lands in the message
        if violation.source is not None:
            file, line = violation.source
            assert f"{file}:{line}" in str(violation)
        assert "narrow16" in str(violation)

    def test_collect_mode_emits_bus_event_and_continues(self):
        machine, injector, guards, recorder = _flip_one(collect=True)
        machine.run(max_insts=5000)
        assert injector.armed and not guards.clean
        fired = [e for e in recorder.events
                 if isinstance(e, InvariantViolationEvent)]
        assert len(fired) == len(guards.violations) == 1
        assert fired[0].check == "tag"
        assert fired[0].seq == guards.violations[0].seq
        with pytest.raises(AssertionError):
            guards.assert_clean()

    def test_warmup_instructions_are_not_eligible(self):
        machine, injector, guards, _ = _flip_one(collect=True)
        # nothing armed during fast_forward itself
        assert not injector.armed


class TestOtherInjectors:
    def test_result_corruption_fires_semantics_guard(self):
        workload = get_workload("g721-encode")
        machine = Machine(workload.build(1), BASELINE)
        injector = ResultCorruptInjector(site=0, count=1)
        injector.install(machine)
        guards = GuardSet(machine, collect=True)
        machine.fast_forward(resolve_warmup(workload, 1))
        machine.run(max_insts=5000)
        assert injector.armed
        assert any(v.check == "semantics" for v in guards.violations)

    def test_replay_drop_fires_replay_guard(self):
        # perl replay-traps within this window under replay packing
        workload = get_workload("perl")
        machine = Machine(workload.build(1),
                          BASELINE.with_packing(replay=True))
        injector = ReplayDropInjector(site=0, count=1)
        injector.install(machine)
        guards = GuardSet(machine, collect=True)
        machine.fast_forward(resolve_warmup(workload, 1))
        machine.run(max_insts=10_000)
        assert injector.armed
        assert any(v.check == "replay" and "dropped" in v.detail
                   for v in guards.violations)


class TestRUUAudit:
    def test_audit_clean_on_live_machine(self):
        workload = get_workload("g721-encode")
        machine = Machine(workload.build(1), BASELINE)
        machine.run(max_insts=2000)
        assert machine.ruu.audit() == []

    def test_audit_flags_counter_imbalance(self):
        workload = get_workload("g721-encode")
        machine = Machine(workload.build(1), BASELINE)
        machine.run(max_insts=2000)
        machine.ruu._lsq_count += 1
        problems = machine.ruu.audit()
        assert any("LSQ counter" in p for p in problems)

    def test_guard_raises_on_ruu_corruption(self):
        workload = get_workload("g721-encode")
        machine = Machine(workload.build(1), BASELINE)
        GuardSet(machine)
        machine.ruu._lsq_count += 1   # simulate an accounting bug
        with pytest.raises(InvariantViolation) as excinfo:
            machine.run(max_insts=2000)
        assert excinfo.value.check == "ruu"
