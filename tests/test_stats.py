"""Unit tests for statistics collection (width histograms, fluctuation
tracking, core counters)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import OpClass
from repro.stats.counters import CoreStats, speedup_pct
from repro.stats.fluctuation import FluctuationTracker
from repro.stats.widths import WIDTH_TRACKED_CLASSES, WidthHistogram


class TestWidthHistogram:
    def test_cumulative_curve_monotone(self):
        hist = WidthHistogram()
        for w in (3, 8, 16, 33, 50):
            hist.record(OpClass.INT_ARITH, w)
        curve = hist.cumulative_curve()
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(100.0)

    def test_cumulative_pct(self):
        hist = WidthHistogram()
        hist.record(OpClass.INT_ARITH, 10)
        hist.record(OpClass.INT_ARITH, 20)
        hist.record(OpClass.INT_ARITH, 40)
        assert hist.cumulative_pct(16) == pytest.approx(100 / 3)
        assert hist.cumulative_pct(33) == pytest.approx(200 / 3)
        assert hist.cumulative_pct(64) == pytest.approx(100.0)

    def test_class_filter(self):
        hist = WidthHistogram()
        hist.record(OpClass.INT_ARITH, 10)
        hist.record(OpClass.LOAD, 33)
        assert hist.cumulative_pct(16, (OpClass.INT_ARITH,)) == 100.0
        assert hist.cumulative_pct(16, (OpClass.LOAD,)) == 0.0

    def test_narrow_pct_by_class_denominator_is_all_tracked(self):
        # Figures 4/5 normalize per-class bars by ALL operations so the
        # class bars stack to the benchmark total.
        hist = WidthHistogram()
        hist.record(OpClass.INT_ARITH, 8)       # narrow
        hist.record(OpClass.INT_LOGIC, 8)       # narrow
        hist.record(OpClass.LOAD, 40)           # wide
        hist.record(OpClass.LOAD, 40)           # wide
        by_class = hist.narrow_pct_by_class(16)
        assert by_class[OpClass.INT_ARITH] == pytest.approx(25.0)
        assert by_class[OpClass.INT_LOGIC] == pytest.approx(25.0)
        assert by_class.get(OpClass.LOAD, 0.0) == 0.0

    def test_rejects_bad_width(self):
        hist = WidthHistogram()
        with pytest.raises(ValueError):
            hist.record(OpClass.INT_ARITH, 0)
        with pytest.raises(ValueError):
            hist.record(OpClass.INT_ARITH, 65)

    def test_tracked_classes_include_address_calcs(self):
        # Figure 1 "includes address calculations".
        assert OpClass.LOAD in WIDTH_TRACKED_CLASSES
        assert OpClass.STORE in WIDTH_TRACKED_CLASSES
        assert OpClass.BRANCH in WIDTH_TRACKED_CLASSES
        assert OpClass.NOP not in WIDTH_TRACKED_CLASSES

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1))
    def test_total_matches_records(self, widths):
        hist = WidthHistogram()
        for w in widths:
            hist.record(OpClass.INT_ARITH, w)
        assert hist.total == len(widths)
        assert hist.count_at_most(64) == len(widths)


class TestFluctuationTracker:
    def test_stable_pc_does_not_fluctuate(self):
        tracker = FluctuationTracker()
        for _ in range(10):
            tracker.record(0x1000, 8)
        assert tracker.fluctuation_pct == 0.0

    def test_crossing_pc_counts(self):
        tracker = FluctuationTracker()
        tracker.record(0x1000, 8)     # narrow
        tracker.record(0x1000, 40)    # wide: crossed the line
        assert tracker.changed_pcs == 1
        assert tracker.fluctuation_pct == 100.0

    def test_single_execution_not_eligible(self):
        tracker = FluctuationTracker()
        tracker.record(0x1000, 8)
        assert tracker.eligible_pcs == 0
        assert tracker.fluctuation_pct == 0.0

    def test_mixed_population(self):
        tracker = FluctuationTracker()
        for _ in range(3):
            tracker.record(0x1000, 8)      # stable narrow
        for _ in range(3):
            tracker.record(0x2000, 40)     # stable wide
        tracker.record(0x3000, 8)
        tracker.record(0x3000, 40)         # fluctuates
        assert tracker.total_pcs == 3
        assert tracker.eligible_pcs == 3
        assert tracker.fluctuation_pct == pytest.approx(100 / 3)

    def test_change_within_same_side_ignored(self):
        tracker = FluctuationTracker()
        tracker.record(0x1000, 4)
        tracker.record(0x1000, 12)     # both <= 16: no crossing
        assert tracker.changed_pcs == 0

    def test_threshold_configurable(self):
        tracker = FluctuationTracker(threshold=33)
        tracker.record(0x1000, 20)
        tracker.record(0x1000, 40)
        assert tracker.changed_pcs == 1


class TestCoreStats:
    def test_ipc(self):
        stats = CoreStats(cycles=100, committed=250)
        assert stats.ipc == 2.5

    def test_ipc_no_cycles(self):
        assert CoreStats().ipc == 0.0

    def test_branch_accuracy(self):
        stats = CoreStats(cond_branches_committed=100, mispredicts=8)
        assert stats.branch_accuracy == pytest.approx(0.92)

    def test_class_mix(self):
        stats = CoreStats()
        stats.count_class("arith")
        stats.count_class("arith")
        stats.count_class("load")
        assert stats.class_mix == {"arith": 2, "load": 1}

    def test_speedup_pct(self):
        assert speedup_pct(110, 100) == pytest.approx(10.0)
        assert speedup_pct(100, 100) == 0.0
        assert speedup_pct(95, 100) == pytest.approx(-5.0)

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup_pct(100, 0)
