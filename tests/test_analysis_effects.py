"""Effects analysis: per-block memory summaries, address intervals,
and the memo-safety proofs the fast backend's block cache consumes."""

from repro.analysis.effects import (
    LOAD_ONLY,
    PURE,
    STORES,
    AccessRange,
    analyze_effects,
)
from repro.asm.assembler import Assembler, standard_prologue
from repro.fastsim.blockcache import MIN_BODY_LEN, build_plan
from repro.isa.registers import REG_INDEX
from repro.workloads.registry import all_workloads


def _effects(asm):
    return analyze_effects(asm.assemble())


# ------------------------------------------------------- classification

def test_pure_block_classified():
    asm = Assembler("t")
    asm.op("addq", "t0", "t1", 1)
    asm.op("xor", "t2", "t0", "t1")
    asm.halt()
    eff = _effects(asm)
    assert eff.effects[0].effect == PURE
    assert eff.proofs[0].memo_safe


def test_store_block_never_memo_safe():
    asm = Assembler("t")
    buf = asm.alloc("buf", 16)
    asm.li("s0", buf)
    asm.store("stq", "t0", "s0", 0)
    asm.halt()
    eff = _effects(asm)
    block = next(b for b in eff.effects.values() if b.stores)
    assert block.effect == STORES
    proof = eff.proofs[block.leader]
    assert not proof.memo_safe
    assert any("stores" in r for r in proof.reasons)


def test_load_disjoint_from_stores_is_memo_safe():
    # Load from one buffer, store to another: the interval domain keeps
    # the ranges apart, so the loading block stays provably memo-safe.
    asm = Assembler("t")
    src = asm.alloc("src", 16)
    dst = asm.alloc("dst", 16)
    asm.li("s0", src)
    asm.li("s1", dst)
    asm.label("loop")
    asm.load("ldq", "t0", "s0", 0)
    asm.op("addq", "t1", "t0", 1)
    asm.br("beq", "t1", "skip")         # split: load block ends here
    asm.store("stq", "t1", "s1", 0)
    asm.label("skip")
    asm.op("subq", "s2", "s2", 1)
    asm.br("bne", "s2", "loop")
    asm.halt()
    eff = _effects(asm)
    loading = next(b for b in eff.effects.values()
                   if b.loads and not b.stores)
    assert loading.effect == LOAD_ONLY
    # No store range may overlap the load range, and the proof accepts
    # the loading block's body.
    load = loading.loads[0]
    assert not load.unbounded
    assert all(not load.overlaps(s) for s in eff.store_ranges)
    assert eff.proofs[loading.leader].memo_safe


def test_load_aliasing_store_blocks_memoization():
    # Load and store share one buffer: the proof must refuse the
    # loading block (the loaded bytes are mutable).
    asm = Assembler("t")
    buf = asm.alloc("buf", 16)
    asm.li("s0", buf)
    asm.label("loop")
    asm.load("ldq", "t0", "s0", 0)
    asm.op("addq", "t1", "t0", 1)
    asm.store("stq", "t1", "s0", 0)
    asm.op("subq", "s2", "s2", 1)
    asm.br("bne", "s2", "loop")
    asm.halt()
    eff = _effects(asm)
    # Every block containing that load is store-tainted here (load and
    # store share a block), so check the reason machinery on the proof.
    tainted = next(p for p in eff.proofs.values() if not p.memo_safe
                   and p.reasons)
    assert tainted.reasons


def test_body_excludes_trailing_branch():
    asm = Assembler("t")
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.br("bne", "t0", "loop")
    asm.halt()
    eff = _effects(asm)
    proof = eff.proofs[0]
    assert proof.body_len == 2          # the bne executes live
    assert proof.end - proof.start == 3


def test_proof_key_and_delta_registers():
    asm = Assembler("t")
    asm.op("addq", "t0", "t1", "t2")    # reads t1,t2; writes t0
    asm.op("addq", "t3", "t0", 1)       # reads t0 (defined); writes t3
    asm.halt()
    eff = _effects(asm)
    proof = eff.proofs[0]
    assert REG_INDEX["t1"] in proof.ue_regs
    assert REG_INDEX["t2"] in proof.ue_regs
    assert REG_INDEX["t0"] not in proof.ue_regs
    assert {REG_INDEX["t0"], REG_INDEX["t3"]} <= set(proof.defs)


def test_access_range_overlap_semantics():
    a = AccessRange(index=0, is_store=False, lo=0x100, hi=0x107)
    b = AccessRange(index=1, is_store=True, lo=0x108, hi=0x10F)
    c = AccessRange(index=2, is_store=True, lo=0x104, hi=0x104)
    top = AccessRange(index=3, is_store=True, unbounded=True)
    assert not a.overlaps(b)
    assert a.overlaps(c)
    assert a.overlaps(top) and top.overlaps(a)


# ------------------------------------------------------------- plan

def test_build_plan_filters_short_and_unsafe_bodies():
    asm = Assembler("t")
    buf = asm.alloc("buf", 16)
    asm.li("s0", buf)
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.op("addq", "t2", "t2", 3)
    asm.br("bne", "t0", "loop")
    asm.store("stq", "t0", "s0", 0)     # storing exit block
    asm.halt()
    plan = build_plan(asm.assemble())
    for leader, (body_len, ue, defs, has_loads, trap_free) in plan.items():
        assert body_len >= MIN_BODY_LEN
        assert isinstance(ue, tuple) and isinstance(defs, tuple)


def test_summary_and_report_cover_workloads():
    for workload in all_workloads():
        eff = analyze_effects(workload.build(1))
        s = eff.summary()
        assert s["blocks"] == (s["pure_blocks"] + s["load_only_blocks"]
                               + s["store_blocks"])
        assert s["memo_safe_blocks"] <= s["blocks"]
        report = eff.report()
        assert len(report.splitlines()) == s["blocks"] + 1
