"""Unit and integration tests for operation packing (paper Section 5)."""

from dataclasses import replace

from hypothesis import given
from hypothesis import strategies as st

from repro.asm.assembler import Assembler, standard_prologue
from repro.bitwidth.tags import WidthTag, tag_value
from repro.core.config import BASELINE, PackingConfig
from repro.core.feed import DynInst
from repro.core.machine import Machine
from repro.core.ruu import RUUEntry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.registers import reg_index
from repro.isa.semantics import MASK64, to_unsigned
from repro.memory.hierarchy import HierarchyConfig
from repro.packing.pack import (
    is_full_pack_candidate,
    is_replay_pack_candidate,
    open_pack,
    pack_key,
    replay_overflows,
    try_join,
)

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))
PCFG = PackingConfig(enabled=True, max_subwords=4)
RCFG = PackingConfig(enabled=True, replay=True, max_subwords=4)

NARROW = WidthTag(True, True)
WIDE = WidthTag(False, False)


def entry(op: Opcode, a_val=1, b_val=2, tag_a=NARROW, tag_b=NARROW,
          result=None) -> RUUEntry:
    dyn = DynInst(seq=0, index=0, pc=0x1000,
                  inst=Instruction(op, ra=1, rb=2, rd=3),
                  op_class=op_class(op), a_val=a_val, b_val=b_val,
                  tag_a=tag_a, tag_b=tag_b, result=result)
    return RUUEntry(dyn=dyn, dispatch_cycle=0)


class TestCandidates:
    def test_narrow_arith_is_candidate(self):
        assert is_full_pack_candidate(entry(Opcode.ADDQ))

    def test_narrow_logic_and_shift_are_candidates(self):
        assert is_full_pack_candidate(entry(Opcode.XOR))
        assert is_full_pack_candidate(entry(Opcode.SLL))

    def test_multiplies_never_pack(self):
        assert not is_full_pack_candidate(entry(Opcode.MULQ))

    def test_memory_and_branches_never_pack(self):
        assert not is_full_pack_candidate(entry(Opcode.LDQ))
        assert not is_full_pack_candidate(entry(Opcode.BEQ))

    def test_wide_operand_blocks_full_pack(self):
        assert not is_full_pack_candidate(entry(Opcode.ADDQ, tag_b=WIDE))

    def test_no_pack_flag_respected(self):
        e = entry(Opcode.ADDQ)
        e.no_pack = True
        assert not is_full_pack_candidate(e)

    def test_replay_candidate_one_wide(self):
        e = entry(Opcode.ADDQ, tag_a=WIDE)
        assert is_replay_pack_candidate(e, RCFG)

    def test_replay_disabled_in_config(self):
        e = entry(Opcode.ADDQ, tag_a=WIDE)
        assert not is_replay_pack_candidate(e, PCFG)

    def test_replay_requires_add_sub(self):
        # Logic results don't pass the wide operand's upper bits
        # through, so speculating on them would be incorrect.
        e = entry(Opcode.AND, tag_a=WIDE)
        assert not is_replay_pack_candidate(e, RCFG)

    def test_replay_rejects_both_narrow_or_both_wide(self):
        assert not is_replay_pack_candidate(entry(Opcode.ADDQ), RCFG)
        both_wide = entry(Opcode.ADDQ, tag_a=WIDE, tag_b=WIDE)
        assert not is_replay_pack_candidate(both_wide, RCFG)


class TestPackAssembly:
    def test_same_opcode_key(self):
        assert pack_key(entry(Opcode.ADDQ), PCFG) is Opcode.ADDQ

    def test_class_key_when_relaxed(self):
        cfg = replace(PCFG, same_opcode=False)
        assert pack_key(entry(Opcode.ADDQ), cfg) is OpClass.INT_ARITH

    def test_open_then_join(self):
        packs: dict = {}
        leader = entry(Opcode.ADDQ)
        pack = open_pack(packs, leader, PCFG)
        assert pack is not None and pack.lanes_left == 3
        joined, replay = try_join(packs, entry(Opcode.ADDQ), PCFG)
        assert joined is pack and not replay
        assert pack.lanes_left == 2

    def test_lane_capacity(self):
        packs: dict = {}
        open_pack(packs, entry(Opcode.ADDQ), PCFG)
        for _ in range(3):
            joined, _ = try_join(packs, entry(Opcode.ADDQ), PCFG)
            assert joined is not None
        joined, _ = try_join(packs, entry(Opcode.ADDQ), PCFG)
        assert joined is None                    # full: 4 subwords max

    def test_two_subword_config(self):
        cfg = replace(PCFG, max_subwords=2)
        packs: dict = {}
        open_pack(packs, entry(Opcode.ADDQ), cfg)
        assert try_join(packs, entry(Opcode.ADDQ), cfg)[0] is not None
        assert try_join(packs, entry(Opcode.ADDQ), cfg)[0] is None

    def test_different_opcode_does_not_join(self):
        packs: dict = {}
        open_pack(packs, entry(Opcode.ADDQ), PCFG)
        joined, _ = try_join(packs, entry(Opcode.SUBQ), PCFG)
        assert joined is None

    def test_wide_entry_cannot_seed_pack(self):
        packs: dict = {}
        assert open_pack(packs, entry(Opcode.ADDQ, tag_a=WIDE), PCFG) is None

    def test_only_one_replay_member_per_pack(self):
        packs: dict = {}
        open_pack(packs, entry(Opcode.ADDQ), RCFG)
        wide1 = entry(Opcode.ADDQ, tag_a=WIDE)
        wide2 = entry(Opcode.ADDQ, tag_a=WIDE)
        joined, replay = try_join(packs, wide1, RCFG)
        assert joined is not None and replay
        joined, _ = try_join(packs, wide2, RCFG)
        assert joined is None                    # wide bits occupied


class TestReplayOverflow:
    def make(self, a, b):
        a, b = to_unsigned(a), to_unsigned(b)
        e = entry(Opcode.ADDQ,
                  a_val=a, b_val=b,
                  tag_a=tag_value(a), tag_b=tag_value(b),
                  result=(a + b) & MASK64)
        return e

    def test_no_overflow_common_case(self):
        # big + small with no carry into the upper 48 bits.
        e = self.make(0x1_0000_0000, 5)
        assert not replay_overflows(e)

    def test_overflow_on_carry(self):
        # 0x...FFFF + 1 carries out of the low 16 bits.
        e = self.make(0x1_0000_FFFF, 1)
        assert replay_overflows(e)

    def test_borrow_from_negative_small(self):
        # big + (-1) borrows into the upper bits.
        e = self.make(0x1_0000_0000, -1)
        assert replay_overflows(e)

    @given(st.integers(min_value=1 << 17, max_value=MASK64 >> 1),
           st.integers(min_value=-32768, max_value=32767))
    def test_overflow_detection_exact(self, wide, small):
        # ``wide`` is genuinely wide (> 17 bits), ``small`` narrow — the
        # only shape that reaches replay packing.
        e = self.make(wide, small)
        truth = ((to_unsigned(wide) + to_unsigned(small)) & MASK64) >> 16
        assert replay_overflows(e) == (truth != wide >> 16)


def narrow_ilp_program(iterations=300) -> Assembler:
    """Eight independent narrow add chains + a bursty load."""
    asm = Assembler("narrow-ilp")
    standard_prologue(asm)
    buf = asm.alloc("buf", 256 * 1024)
    asm.li("s0", buf)
    regs = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]
    for r in regs:
        asm.clr(r)
    asm.li("s1", iterations)
    asm.label("loop")
    asm.load("ldq", "s2", "s0", 0)
    for r in regs:
        asm.op("addq", r, r, 3)
    asm.op("addq", "s0", "s0", 64)
    asm.op("subq", "s1", "s1", 1)
    asm.br("bne", "s1", "loop")
    asm.halt()
    return asm


def streaming_fanout_program(passes=3) -> Assembler:
    """The paper's winning regime: L1-miss loads (L2 warm after the
    first pass) feeding bursts of independent narrow consumers."""
    asm = Assembler("fanout")
    standard_prologue(asm)
    buf = asm.alloc("buf", 96 * 1024)
    asm.li("a1", passes)
    asm.label("pass")
    asm.li("s0", buf)
    asm.li("a0", 96 * 1024 // 64)
    asm.label("loop")
    asm.load("ldq", "t0", "s0", 0)
    asm.op("and", "t1", "t0", 255)
    for i, r in enumerate(("t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")):
        asm.op("addq", r, "t1", 2 * i + 1)
    for i, r in enumerate(("t10", "t11", "t12", "a2")):
        asm.op("sll", r, "t1", i + 1)
    asm.op("addq", "s1", "s1", "t2")
    asm.op("addq", "s2", "s2", "t3")
    asm.op("addq", "s0", "s0", 64)
    asm.op("subq", "a0", "a0", 1)
    asm.br("bne", "a0", "loop")
    asm.op("subq", "a1", "a1", 1)
    asm.br("bne", "a1", "pass")
    asm.halt()
    return asm


def _run_warm(program, config, warmup=96 * 1024 // 64 * 21 + 30):
    machine = Machine(program, config)
    machine.fast_forward(warmup)      # pass 1 warms the L2
    return machine.run()


class TestPackingInMachine:
    def test_results_identical_with_packing(self):
        program = narrow_ilp_program().assemble()
        base = Machine(program, FAST)
        base.run()
        packed = Machine(program, FAST.with_packing())
        packed.run()
        for r in range(32):
            assert base.feed.reg(r) == packed.feed.reg(r)

    def test_packing_counts_groups(self):
        result = Machine(narrow_ilp_program().assemble(),
                         BASELINE.with_packing()).run()
        assert result.stats.pack_groups > 0
        assert result.stats.packed_ops >= 2 * result.stats.pack_groups

    def test_packing_never_slows_down(self):
        program = narrow_ilp_program().assemble()
        base = Machine(program, BASELINE).run()
        packed = Machine(program, BASELINE.with_packing()).run()
        assert packed.stats.cycles <= base.stats.cycles

    def test_packing_beats_baseline_on_bursty_narrow_code(self):
        # The regime the paper exploits: L1-miss bursts drained faster
        # because narrow ops share ALUs.
        program = streaming_fanout_program().assemble()
        base = _run_warm(program, BASELINE)
        packed = _run_warm(program, BASELINE.with_packing())
        speedup = 100 * (base.stats.cycles / packed.stats.cycles - 1)
        assert speedup > 5.0

    def test_packed_machine_tracks_8issue(self):
        # Figure 11: the packed 4-issue machine "comes very close to
        # achieving the same IPC as the more costly 8-issue/8-ALU
        # implementation".
        program = streaming_fanout_program().assemble()
        packed = _run_warm(program, BASELINE.with_packing())
        wide = _run_warm(program, BASELINE.with_issue_width(8, 8))
        assert packed.stats.cycles <= wide.stats.cycles * 1.10

    def test_replay_packing_results_still_correct(self):
        # Wide base-address adds speculate and sometimes trap; the
        # final architected state must be unaffected.
        asm = Assembler("replay")
        standard_prologue(asm)
        buf = asm.alloc("buf", 8 * 4096)
        asm.li("s0", buf + 0xFFF8)       # low 16 bits near the carry edge
        asm.clr("s2")
        asm.li("s1", 300)
        asm.label("loop")
        # The narrow add comes first so it opens a pack the wide
        # pointer add can speculatively join.
        asm.op("addq", "s2", "s2", 1)
        asm.op("addq", "s0", "s0", 8)    # wide + narrow: replay packable
        asm.op("subq", "s1", "s1", 1)
        asm.br("bne", "s1", "loop")
        asm.halt()
        program = asm.assemble()
        base = Machine(program, FAST)
        base.run()
        replay = Machine(program, FAST.with_packing(replay=True))
        result = replay.run()
        assert base.feed.reg(reg_index("s0")) == replay.feed.reg(
            reg_index("s0"))
        assert result.stats.replay_traps >= 1   # crossed the carry edge

    def test_replay_traps_are_rare_relative_to_packs(self):
        program = narrow_ilp_program().assemble()
        result = Machine(program, BASELINE.with_packing(replay=True)).run()
        # Section 5.3: overflow "happens relatively infrequently".
        assert result.stats.replay_traps <= result.stats.packed_ops

    def test_packing_disabled_has_no_packs(self):
        result = Machine(narrow_ilp_program().assemble(), BASELINE).run()
        assert result.stats.packed_ops == 0
        assert result.stats.pack_groups == 0
