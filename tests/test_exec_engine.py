"""Tests for the run engine: determinism across execution tiers,
deduplication, cache fallback, and the declarative experiment wiring.

The headline guarantee under test: the same ``(workload, config,
scale)`` job run **serially**, through the **process pool**, and
**rehydrated from the on-disk cache** yields identical
``CoreStats``/``PowerReport``/width/fluctuation counters.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BASELINE
from repro.exec import (
    GLOBAL_STATS,
    Job,
    ResultCache,
    RunContext,
    RunEngine,
    clear_memo,
)
from repro.exec.engine import _MEMO


def counters(result) -> tuple:
    """Everything a figure can read from a run, in comparable form."""
    return (
        result.stats.as_dict(),
        result.widths.as_dict(),
        result.fluctuation.as_dict(),
        result.power.as_dict() if result.power else None,
    )


JOB_GO = Job("go", BASELINE, 1)
JOB_GO_PACKED = Job("go", BASELINE.with_packing(), 1)


class TestDeterminismAcrossTiers:
    def test_serial_pool_and_cache_agree_bit_exact(self, tmp_path):
        # Tier A: fresh serial run, no caching anywhere.
        serial = RunEngine(RunContext(use_cache=False)).run_jobs(
            [JOB_GO, JOB_GO_PACKED])

        # Tier B: fresh run through a 2-worker process pool, cache on.
        clear_memo()
        pooled_engine = RunEngine(RunContext(cache_dir=tmp_path, jobs=2))
        pooled = pooled_engine.run_jobs([JOB_GO, JOB_GO_PACKED])
        assert pooled_engine.stats.fresh_runs == 2

        # Tier C: rehydrated from the on-disk cache, memo cleared.
        clear_memo()
        warm_engine = RunEngine(RunContext(cache_dir=tmp_path, jobs=2))
        warm = warm_engine.run_jobs([JOB_GO, JOB_GO_PACKED])
        assert warm_engine.stats.fresh_runs == 0
        assert warm_engine.stats.cache_hits == 2

        for job in (JOB_GO, JOB_GO_PACKED):
            assert (counters(serial[job.key])
                    == counters(pooled[job.key])
                    == counters(warm[job.key]))

    def test_pool_merging_is_submission_ordered(self, tmp_path):
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path, jobs=2))
        results = engine.run_jobs([JOB_GO, JOB_GO_PACKED])
        assert list(results) == [JOB_GO.key, JOB_GO_PACKED.key]
        # Same committed work; packing can only change cycles.
        assert (results[JOB_GO.key].stats.committed
                == results[JOB_GO_PACKED.key].stats.committed)


class TestCacheFallback:
    def test_corrupt_entry_falls_back_to_fresh_simulation(self, tmp_path):
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path))
        good = engine.run(JOB_GO)
        cache = ResultCache(tmp_path)
        cache.path(JOB_GO).write_text("garbage{", encoding="utf-8")
        clear_memo()

        retry_engine = RunEngine(RunContext(cache_dir=tmp_path))
        retry = retry_engine.run(JOB_GO)
        assert retry_engine.stats.cache_hits == 0
        assert retry_engine.stats.fresh_runs == 1
        assert counters(retry) == counters(good)
        # The bad entry was overwritten with a good one.
        assert cache.load(JOB_GO) is not None

    def test_stale_schema_entry_falls_back_to_fresh(self, tmp_path):
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path))
        good = engine.run(JOB_GO)
        cache = ResultCache(tmp_path)
        path = cache.path(JOB_GO)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = "repro-exec/0"
        path.write_text(json.dumps(entry), encoding="utf-8")
        clear_memo()

        retry_engine = RunEngine(RunContext(cache_dir=tmp_path))
        retry = retry_engine.run(JOB_GO)
        assert retry_engine.stats.fresh_runs == 1
        assert counters(retry) == counters(good)


class TestEnginePolicy:
    def test_duplicate_jobs_execute_once(self):
        engine = RunEngine(RunContext())
        engine.run_jobs([JOB_GO, JOB_GO, JOB_GO, JOB_GO_PACKED])
        assert engine.stats.jobs_requested == 4
        assert engine.stats.jobs_unique == 2
        assert engine.stats.fresh_runs + engine.stats.memo_hits == 2

    def test_memo_shared_across_engines(self):
        RunEngine(RunContext()).run(JOB_GO)
        second = RunEngine(RunContext())
        second.run(JOB_GO)
        assert second.stats.memo_hits == 1
        assert second.stats.fresh_runs == 0

    def test_use_cache_false_bypasses_and_stores_nothing(self, tmp_path):
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path, use_cache=False))
        engine.run(JOB_GO)
        assert engine.stats.fresh_runs == 1
        assert JOB_GO.key not in _MEMO
        assert ResultCache(tmp_path).entries() == []

    def test_refresh_overwrites_cache_entry(self, tmp_path):
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path))
        engine.run(JOB_GO)
        path = ResultCache(tmp_path).path(JOB_GO)
        before = path.stat().st_mtime_ns

        refresh_engine = RunEngine(RunContext(cache_dir=tmp_path,
                                              refresh=True))
        refresh_engine.run(JOB_GO)
        assert refresh_engine.stats.fresh_runs == 1
        assert refresh_engine.stats.memo_hits == 0
        assert path.stat().st_mtime_ns >= before

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            RunContext(jobs=0)


class TestObsThroughEngine:
    def test_fresh_run_writes_manifest(self, tmp_path):
        clear_memo()
        ctx = RunContext(obs_dir=tmp_path / "obs",
                         cache_dir=tmp_path / "cache")
        RunEngine(ctx).run(JOB_GO)
        manifests = list((tmp_path / "obs").glob("go-*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text(encoding="utf-8"))
        assert manifest["workload"] == "go"
        assert manifest["windows"]

    def test_warm_cache_rematerializes_manifest(self, tmp_path):
        clear_memo()
        cache_dir = tmp_path / "cache"
        RunEngine(RunContext(obs_dir=tmp_path / "obs1",
                             cache_dir=cache_dir)).run(JOB_GO)
        clear_memo()

        warm = RunEngine(RunContext(obs_dir=tmp_path / "obs2",
                                    cache_dir=cache_dir))
        warm.run(JOB_GO)
        assert warm.stats.fresh_runs == 0
        assert warm.stats.cache_hits == 1
        first = (tmp_path / "obs1" / warm_manifest_name(tmp_path, "obs1"))
        second = (tmp_path / "obs2" / warm_manifest_name(tmp_path, "obs2"))
        assert first.read_text() == second.read_text()

    def test_obs_request_refuses_uninstrumented_entry(self, tmp_path):
        clear_memo()
        cache_dir = tmp_path / "cache"
        RunEngine(RunContext(cache_dir=cache_dir)).run(JOB_GO)  # no obs
        clear_memo()

        obs_engine = RunEngine(RunContext(obs_dir=tmp_path / "obs",
                                          cache_dir=cache_dir))
        obs_engine.run(JOB_GO)
        # The cached entry has no manifest, so obs forces a fresh run.
        assert obs_engine.stats.fresh_runs == 1
        assert list((tmp_path / "obs").glob("go-*.json"))


def warm_manifest_name(tmp_path, sub) -> str:
    names = [p.name for p in (tmp_path / sub).glob("go-*.json")]
    assert len(names) == 1
    return names[0]


class TestExperimentRegistry:
    def test_registry_covers_every_experiment(self):
        from repro.experiments.registry import (
            all_experiments,
            experiment_names,
        )
        names = experiment_names()
        for key in ("table1", "table4", "fig1", "fig2", "fig4", "fig5",
                    "fig6", "fig7", "fig10", "fig10-replay",
                    "fig10-8wide", "fig11", "loaddetect"):
            assert key in names
        for exp in all_experiments().values():
            assert exp.description
            assert isinstance(exp.jobs(1), list)

    def test_tables_declare_no_jobs(self):
        from repro.experiments.registry import get_experiment
        assert get_experiment("table1").jobs(1) == []
        assert get_experiment("table4").jobs(1) == []

    def test_fig6_fig7_share_their_job_set(self):
        from repro.experiments.registry import get_experiment
        assert (get_experiment("fig6").jobs(1)
                == get_experiment("fig7").jobs(1))

    def test_fig10_fig11_share_packed_runs(self):
        from repro.experiments.registry import get_experiment
        fig10 = {j.key for j in get_experiment("fig10").jobs(1)}
        fig11 = {j.key for j in get_experiment("fig11").jobs(1)}
        shared = fig10 & fig11
        # baseline + packed runs under the combining predictor overlap
        assert len(shared) >= 2 * 14

    def test_declared_jobs_cover_render(self, monkeypatch):
        """After the engine pre-runs an experiment's declared job set,
        rendering performs zero fresh simulations."""
        from repro.experiments import fig1_cumulative_widths as fig1
        from repro.experiments.registry import get_experiment
        monkeypatch.setattr(fig1, "spec_names", lambda: ("go",))
        exp = get_experiment("fig1")

        RunEngine(RunContext()).run_jobs(exp.jobs(1))
        fresh_before = GLOBAL_STATS.fresh_runs
        text = exp.render(1)
        assert GLOBAL_STATS.fresh_runs == fresh_before
        assert "Figure 1" in text and "go" in text


class TestRunnerCLI:
    def test_parallel_flagged_run(self, capsys):
        from repro.experiments.runner import main
        assert main(["--jobs", "2", "table1", "table4"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out and "Table 4" in captured.out
        # Stream contract: the engine summary is progress, not output.
        assert "engine:" in captured.err
        assert "engine:" not in captured.out

    def test_no_cache_and_refresh_flags_accepted(self, tmp_path, capsys):
        from repro.experiments.runner import main
        assert main(["--no-cache", "table1"]) == 0
        assert main(["--refresh", "--cache-dir", str(tmp_path),
                     "table4"]) == 0
        capsys.readouterr()

    def test_unknown_experiment_lists_valid_names(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig99"])
        err = capsys.readouterr().err
        assert "unknown experiments: fig99" in err
        assert "valid: " in err and "fig11" in err

    def test_rejects_bad_jobs_value(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "table1"])
        capsys.readouterr()
