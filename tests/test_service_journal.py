"""Tests for the durable sweep journal (WAL semantics).

The journal's contract: every appended record is durably on disk and
digest-protected before ``append`` returns; replay tolerates exactly
the damage a crash can produce (a half-written final line) while any
*mid-file* damage is counted and skipped, never replayed as state; and
startup compaction rewrites only live sweeps, atomically.
"""

from __future__ import annotations

import json

import pytest

from repro.service.journal import (
    JOURNAL_SCHEMA,
    REC_ADMITTED,
    REC_DISPATCHED,
    REC_DONE,
    REC_FAILED,
    REC_START,
    SweepJournal,
    read_journal,
    record_digest,
)


def _journal_with_sweep(path, sweep_id="sweep-000001", fp="fp-1",
                        done=False):
    journal = SweepJournal(path, sync=False)
    journal.append(REC_START, workers=1)
    journal.append(REC_ADMITTED, sweep_id=sweep_id, backend="reference",
                   deadline_seconds=None,
                   jobs=[{"spec": {"workload": "go"}, "fingerprint": fp}],
                   sources={fp: "fresh"})
    journal.append(REC_DISPATCHED, fingerprint=fp)
    if done:
        journal.append(REC_DONE, fingerprint=fp, source="fresh")
    journal.close()
    return journal


class TestAppendAndReplay:
    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _journal_with_sweep(path, done=True)
        replay = read_journal(path)
        assert replay.ok
        assert replay.records == 4
        assert replay.bad_records == 0
        assert not replay.torn_tail
        assert list(replay.sweeps) == ["sweep-000001"]
        sweep = replay.sweeps["sweep-000001"]
        assert sweep.jobs[0]["fingerprint"] == "fp-1"
        assert replay.job_states["fp-1"] == {"state": "done",
                                             "source": "fresh"}
        assert replay.max_sweep_number == 1

    def test_every_line_carries_schema_and_digest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _journal_with_sweep(path)
        for line in path.read_bytes().splitlines():
            record = json.loads(line)
            assert record["schema"] == JOURNAL_SCHEMA
            assert record["digest"] == record_digest(record)

    def test_unknown_record_type_rejected(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl", sync=False)
        with pytest.raises(ValueError):
            journal.append("job.exploded", fingerprint="fp")
        journal.close()

    def test_missing_file_replays_empty(self, tmp_path):
        replay = read_journal(tmp_path / "absent.jsonl")
        assert replay.ok
        assert replay.records == 0
        assert not replay.sweeps

    def test_failed_job_state_keeps_error(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path, sync=False)
        journal.append(REC_FAILED, fingerprint="fp-1", error="boom",
                       error_code="worker-crash")
        journal.close()
        replay = read_journal(path)
        assert replay.job_states["fp-1"] == {
            "state": "failed", "error": "boom",
            "error_code": "worker-crash"}


class TestDamageTolerance:
    def test_torn_tail_ignored_and_flagged(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _journal_with_sweep(path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])     # half-written final record
        replay = read_journal(path)
        assert replay.torn_tail
        assert replay.bad_records == 0  # a torn tail is not corruption
        assert replay.ok
        # Everything before the tear replayed intact.
        assert "sweep-000001" in replay.sweeps
        assert replay.records == 2

    def test_midfile_corruption_counted_and_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _journal_with_sweep(path, done=True)
        lines = path.read_bytes().split(b"\n")
        flipped = bytearray(lines[1])   # the admission record
        flipped[len(flipped) // 2] ^= 0x01
        lines[1] = bytes(flipped)
        path.write_bytes(b"\n".join(lines))
        replay = read_journal(path)
        assert replay.bad_records == 1
        assert not replay.ok
        assert not replay.torn_tail
        # The damaged admission never became state; later records did.
        assert "sweep-000001" not in replay.sweeps
        assert replay.job_states["fp-1"]["state"] == "done"

    def test_wrong_schema_line_is_bad_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"schema": "repro-journal/999", "record": REC_START}
        record["digest"] = record_digest(record)
        good = SweepJournal(path, sync=False)
        good.append(REC_START, workers=1)
        good.close()
        raw = path.read_bytes()
        path.write_bytes(
            (json.dumps(record) + "\n").encode("utf-8") + raw)
        replay = read_journal(path)
        assert replay.bad_records == 1
        assert replay.records == 1

    def test_digest_detects_any_field_change(self):
        record = {"schema": JOURNAL_SCHEMA, "record": REC_DONE,
                  "fingerprint": "fp-1", "source": "fresh"}
        record["digest"] = record_digest(record)
        assert record_digest(record) == record["digest"]
        record["source"] = "store"
        assert record_digest(record) != record["digest"]


class TestCompaction:
    def test_compact_keeps_only_live_sweeps(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path, sync=False)
        journal.append(REC_START, workers=1)
        for index, fp in ((1, "fp-1"), (2, "fp-2")):
            journal.append(
                REC_ADMITTED, sweep_id=f"sweep-{index:06d}",
                backend="reference", deadline_seconds=None,
                jobs=[{"spec": {"workload": "go"}, "fingerprint": fp}],
                sources={fp: "fresh"})
        journal.append(REC_DONE, fingerprint="fp-1", source="fresh")
        journal.close()

        replay = read_journal(path)
        compacted = SweepJournal.compact(path, replay, ["sweep-000002"],
                                         sync=False)
        compacted.append(REC_DISPATCHED, fingerprint="fp-2")
        compacted.close()

        again = read_journal(path)
        assert again.ok and not again.torn_tail
        assert list(again.sweeps) == ["sweep-000002"]
        assert "fp-1" not in again.job_states
        assert again.job_states["fp-2"] == {"state": "running"}

    def test_compact_preserves_terminal_outcomes_of_live_sweeps(
            self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path, sync=False)
        journal.append(
            REC_ADMITTED, sweep_id="sweep-000001", backend="reference",
            deadline_seconds=None,
            jobs=[{"spec": {"workload": "go"}, "fingerprint": "fp-1"},
                  {"spec": {"workload": "perl"}, "fingerprint": "fp-2"}],
            sources={"fp-1": "fresh", "fp-2": "fresh"})
        journal.append(REC_FAILED, fingerprint="fp-1", error="boom",
                       error_code="job-failed")
        journal.close()

        replay = read_journal(path)
        SweepJournal.compact(path, replay, ["sweep-000001"],
                             sync=False).close()
        again = read_journal(path)
        # A second replay reconstructs exactly what the first did.
        assert again.job_states["fp-1"] == {
            "state": "failed", "error": "boom",
            "error_code": "job-failed"}
        assert "fp-2" not in again.job_states
        assert again.sweeps["sweep-000001"].jobs == \
            replay.sweeps["sweep-000001"].jobs

    def test_compact_is_reopened_for_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _journal_with_sweep(path)
        replay = read_journal(path)
        journal = SweepJournal.compact(path, replay, [], sync=False)
        journal.append(REC_START, workers=2)
        journal.close()
        again = read_journal(path)
        assert again.records == 1
        assert not again.sweeps
