"""Unit and property tests for the structured assembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.assembler import Assembler, AssemblerError, standard_prologue
from repro.asm.layout import CODE_BASE, DATA_BASE, STACK_TOP
from repro.core.config import BASELINE
from repro.core.feed import Feed
from repro.isa.opcodes import Opcode
from repro.isa.registers import reg_index
from repro.isa.semantics import MASK64, to_unsigned


def run_functionally(asm: Assembler, max_steps: int = 10000) -> Feed:
    """Assemble and execute to completion on the functional feed."""
    asm.halt()
    feed = Feed(asm.assemble(), BASELINE)
    feed.fast_mode = True
    for _ in range(max_steps):
        if feed.next() is None:
            break
    assert feed.halted, "program did not halt"
    return feed


class TestEmit:
    def test_operate_with_registers(self):
        asm = Assembler()
        asm.op("addq", "t0", "t1", "t2")
        inst = asm.assemble().instructions[0]
        assert inst.opcode is Opcode.ADDQ
        assert inst.rd == reg_index("t0")
        assert inst.ra == reg_index("t1")
        assert inst.rb == reg_index("t2")

    def test_operate_with_literal(self):
        asm = Assembler()
        asm.op("subq", "t0", "t0", 255)
        inst = asm.assemble().instructions[0]
        assert inst.rb is None
        assert inst.imm == 255

    def test_literal_range_enforced(self):
        # Alpha operate literals are 8-bit unsigned.
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.op("addq", "t0", "t0", 256)
        with pytest.raises(AssemblerError):
            asm.op("addq", "t0", "t0", -1)

    def test_displacement_range_enforced(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.load("ldq", "t0", "sp", 40000)
        with pytest.raises(AssemblerError):
            asm.lda("t0", "zero", -40000)

    def test_op_rejects_memory_mnemonics(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.op("ldq", "t0", "t1", "t2")

    def test_load_rejects_store_mnemonics(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.load("stq", "t0", "sp", 0)

    def test_branch_needs_register_and_label(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.br("bne", "loop")


class TestLabels:
    def test_forward_reference(self):
        asm = Assembler()
        asm.br("br", "end")
        asm.nop()
        asm.label("end")
        asm.nop()
        program = asm.assemble()
        assert program.instructions[0].target == 2

    def test_backward_reference(self):
        asm = Assembler()
        asm.label("top")
        asm.nop()
        asm.br("br", "top")
        program = asm.assemble()
        assert program.instructions[1].target == 0

    def test_undefined_label(self):
        asm = Assembler()
        asm.br("br", "nowhere")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_duplicate_label(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblerError):
            asm.label("x")


class TestDataSection:
    def test_alloc_above_4gb(self):
        # Figure 1's 33-bit jump depends on data living above 4 GB.
        asm = Assembler()
        addr = asm.alloc("buf", 64)
        assert addr >= DATA_BASE
        assert addr >= 2**32

    def test_alloc_alignment(self):
        asm = Assembler()
        asm.alloc("a", 3)
        b = asm.alloc("b", 8, align=16)
        assert b % 16 == 0

    def test_alloc_no_overlap(self):
        asm = Assembler()
        a = asm.alloc("a", 100)
        b = asm.alloc("b", 100)
        assert b >= a + 100

    def test_symbol_lookup(self):
        asm = Assembler()
        addr = asm.alloc("table", 8)
        assert asm.symbol("table") == addr

    def test_data_words_little_endian(self):
        asm = Assembler()
        addr = asm.alloc("w", 8)
        asm.data_words(addr, [0x0102030405060708])
        program = asm.assemble()
        assert program.image[addr] == 0x08
        assert program.image[addr + 7] == 0x01

    def test_data_words_negative(self):
        asm = Assembler()
        addr = asm.alloc("w", 2)
        asm.data_words(addr, [-1], size=2)
        program = asm.assemble()
        assert program.image[addr] == 0xFF
        assert program.image[addr + 1] == 0xFF


class TestPseudoOps:
    def test_mov(self):
        asm = Assembler()
        asm.li("t1", 77)
        asm.mov("t2", "t1")
        feed = run_functionally(asm)
        assert feed.reg(reg_index("t2")) == 77

    def test_clr(self):
        asm = Assembler()
        asm.li("t1", 5)
        asm.clr("t1")
        feed = run_functionally(asm)
        assert feed.reg(reg_index("t1")) == 0

    def test_prologue_sets_stack(self):
        asm = Assembler()
        standard_prologue(asm)
        feed = run_functionally(asm)
        assert feed.reg(reg_index("sp")) == STACK_TOP


class TestLoadImmediate:
    """li must produce the exact constant through real instruction
    sequences (lda/ldah/shifts), for any 64-bit value."""

    def check(self, value: int) -> None:
        asm = Assembler()
        asm.li("s0", value)
        feed = run_functionally(asm)
        assert feed.reg(reg_index("s0")) == to_unsigned(value)

    def test_small(self):
        self.check(0)
        self.check(1)
        self.check(-1)
        self.check(32767)
        self.check(-32768)

    def test_medium(self):
        self.check(65536)
        self.check(0x12345678)
        self.check(-0x12345678)

    def test_addresses(self):
        self.check(DATA_BASE)
        self.check(STACK_TOP)
        self.check(CODE_BASE)

    def test_large(self):
        self.check(0x1122334455667788)
        self.check(MASK64)
        self.check(1 << 63)

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_any_constant(self, value):
        self.check(value)

    def test_64bit_li_to_at_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblerError):
            asm.li("at", 0x1122334455667788)


class TestDiagnostics:
    """Assembler errors point at the emitting source line and name the
    offending mnemonic; programs carry a source map."""

    def test_error_carries_source_line_and_mnemonic(self):
        asm = Assembler()
        with pytest.raises(AssemblerError) as excinfo:
            asm.op("addq", "t0", "t0", 999)  # literal out of range
        err = excinfo.value
        assert err.mnemonic == "addq"
        assert err.source is not None
        path, line = err.source
        assert path.endswith("test_assembler.py")
        assert line > 0
        assert f"{path}:{line}: addq:" in str(err)

    def test_undefined_label_points_at_branch_site(self):
        asm = Assembler()
        asm.br("br", "nowhere")  # the offending emission
        with pytest.raises(AssemblerError) as excinfo:
            asm.assemble()
        err = excinfo.value
        assert err.mnemonic == "br"
        assert err.source is not None
        assert err.source[0].endswith("test_assembler.py")
        assert "nowhere" in str(err)

    def test_displacement_error_names_mnemonic(self):
        asm = Assembler()
        with pytest.raises(AssemblerError) as excinfo:
            asm.load("ldq", "t0", "sp", 40000)
        assert excinfo.value.mnemonic == "ldq"

    def test_program_source_map(self):
        asm = Assembler()
        asm.nop()
        asm.li("t0", 0x12345678)  # multi-instruction expansion
        program = asm.assemble()
        assert program.srcmap is not None
        assert len(program.srcmap) == len(program)
        source = program.source_of(0)
        assert source is not None and source[0].endswith(
            "test_assembler.py")
        # Every li()-expanded instruction maps back to the one builder
        # statement that asked for it.
        li_sites = {program.source_of(i) for i in range(1, len(program))}
        assert len(program) > 2 and len(li_sites) == 1


class TestProgramGeometry:
    def test_pc_mapping_roundtrip(self):
        asm = Assembler()
        for _ in range(10):
            asm.nop()
        program = asm.assemble()
        for i in range(10):
            assert program.index_of(program.pc_of(i)) == i

    def test_out_of_range_fetch_is_halt(self):
        asm = Assembler()
        asm.nop()
        program = asm.assemble()
        assert program.fetch(99).opcode is Opcode.HALT
        assert program.fetch(-5).opcode is Opcode.HALT
