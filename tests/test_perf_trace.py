"""Span tracer tests: recording semantics, Chrome export, and the two
contracts the engine leans on — deterministic trace *structure* across
identical warm-cache runs, and span counts that match the engine's own
job/attempt accounting exactly.
"""

from __future__ import annotations

import pytest

from repro.core.config import BASELINE
from repro.exec.context import RunContext
from repro.exec.engine import RunEngine, clear_memo
from repro.exec.jobs import Job
from repro.obs.export import read_jsonl
from repro.perf.clock import epoch_now
from repro.perf.trace import (
    ENGINE_PID,
    SCHEMA,
    SpanTracer,
    read_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _cold_memo():
    clear_memo()
    yield
    clear_memo()


def small_jobs() -> list[Job]:
    return [Job(workload="g721-encode", config=BASELINE, scale=1),
            Job(workload="compress", config=BASELINE, scale=1)]


class TestSpanRecording:
    def test_begin_end_nest_on_the_stack(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(outer)
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent == outer
        assert spans["outer"].parent is None
        assert spans["inner"].end >= spans["inner"].start

    def test_out_of_order_close_keeps_both_spans(self):
        tracer = SpanTracer()
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(a)          # closes under b — tolerated, not fatal
        tracer.end(b)
        assert sorted(s.name for s in tracer.spans) == ["a", "b"]

    def test_ids_are_sequential_in_recording_order(self):
        tracer = SpanTracer()
        with tracer.span("one"):
            pass
        tracer.instant("two")
        tracer.add_rel("three", "cat", 0.0, 0.1)
        assert [s.id for s in sorted(tracer.spans,
                                     key=lambda s: s.id)] == [1, 2, 3]

    def test_add_epoch_rebases_worker_stamps(self):
        tracer = SpanTracer()
        t0 = epoch_now()
        tracer.add_epoch("w", "attempt", t0, t0 + 0.5, pid=1234)
        span = tracer.spans[0]
        assert span.duration == pytest.approx(0.5)
        assert span.pid == 1234
        assert span.start == pytest.approx(tracer.rel_epoch(t0))

    def test_end_before_start_is_clamped(self):
        tracer = SpanTracer()
        tracer.add_rel("clock-skew", "cat", 1.0, 0.9)
        assert tracer.spans[0].duration == 0.0

    def test_accounting_counts_by_name(self):
        tracer = SpanTracer()
        tracer.instant("x")
        tracer.instant("x")
        tracer.instant("y")
        assert tracer.accounting() == {"x": 2, "y": 1}

    def test_structure_masks_volatile_args(self):
        tracer = SpanTracer()
        tracer.instant("s", job="go", pid=77, seconds=1.23)
        (entry,) = tracer.structure()
        assert entry["args"] == {"job": "go"}


class TestChromeExport:
    def test_export_shape_and_roundtrip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("parent", "engine"):
            tracer.add_epoch("child", "attempt", epoch_now(),
                             epoch_now(), pid=42)
        path = write_chrome_trace(tmp_path / "t.json", tracer,
                                  metadata={"tool": "test"})
        doc = read_chrome_trace(path)
        assert doc["otherData"]["schema"] == SCHEMA
        assert doc["otherData"]["tool"] == "test"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 2
        # One process_name lane per pid: engine + worker-42.
        names = {e["args"]["name"] for e in metas}
        assert names == {"engine", "worker-42"}
        for event in xs:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert "span_id" in event["args"]
        child = next(e for e in xs if e["name"] == "child")
        parent = next(e for e in xs if e["name"] == "parent")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert child["pid"] == 42
        assert parent["pid"] == ENGINE_PID


class TestEngineTraceContracts:
    def test_execute_spans_equal_total_attempts(self, tmp_path):
        tracer = SpanTracer()
        engine = RunEngine(RunContext(cache_dir=tmp_path / "c", jobs=1),
                           tracer=tracer)
        _, report = engine.run_jobs_report(small_jobs())
        assert report.ok
        acc = tracer.accounting()
        assert acc["execute"] == sum(o.attempts for o in report.outcomes)
        assert acc["cache.store"] == 2
        assert acc["schedule"] == 1
        assert acc["suite.batch"] == 1
        # Every execute span carries its sim phase children.
        assert acc["sim.run"] == acc["execute"]
        assert acc["serialize"] == acc["execute"]

    def test_cache_hit_spans_equal_cache_tier_outcomes(self, tmp_path):
        jobs = small_jobs()
        ctx = RunContext(cache_dir=tmp_path / "c", jobs=1)
        RunEngine(ctx).run_jobs(jobs)          # populate the disk tier
        clear_memo()
        tracer = SpanTracer()
        _, report = RunEngine(ctx, tracer=tracer).run_jobs_report(jobs)
        acc = tracer.accounting()
        served = sum(1 for o in report.outcomes
                     if o.ok and o.attempts == 0)
        assert acc["cache.hit"] == served == 2
        assert "execute" not in acc

    def test_warm_runs_are_structurally_identical(self, tmp_path):
        """The determinism contract: two identical warm-cache runs
        produce the same span tree modulo timestamps."""
        jobs = small_jobs()
        ctx = RunContext(cache_dir=tmp_path / "c", jobs=1)
        RunEngine(ctx).run_jobs(jobs)
        structures = []
        for _ in range(2):
            clear_memo()
            tracer = SpanTracer()
            RunEngine(ctx, tracer=tracer).run_jobs_report(jobs)
            structures.append(tracer.structure())
        assert structures[0] == structures[1]
        assert structures[0]          # and they are not trivially empty

    def test_failed_attempts_each_record_an_execute_span(self, tmp_path):
        tracer = SpanTracer()
        ctx = RunContext(cache_dir=None, jobs=1, retries=1,
                         faults=(("g721-encode", "crash"),))
        engine = RunEngine(ctx, tracer=tracer)
        _, report = engine.run_jobs_report(
            [Job(workload="g721-encode", config=BASELINE, scale=1)])
        (outcome,) = report.outcomes
        assert not outcome.ok
        assert outcome.attempts == 2          # first try + 1 retry
        acc = tracer.accounting()
        assert acc["execute"] == 2
        outcomes = [s.args["outcome"] for s in tracer.of_name("execute")]
        assert outcomes == ["error", "error"]

    def test_manifest_cross_links_span_id(self, tmp_path):
        tracer = SpanTracer()
        ctx = RunContext(cache_dir=tmp_path / "c",
                         obs_dir=tmp_path / "obs", jobs=1)
        engine = RunEngine(ctx, tracer=tracer)
        job = Job(workload="g721-encode", config=BASELINE, scale=1)
        engine.run_jobs([job])
        (jsonl,) = (tmp_path / "obs").glob("*.jsonl")
        records = [r for r in read_jsonl(jsonl) if r["record"] == "trace"]
        assert len(records) == 1
        execute_ids = {s.id for s in tracer.of_name("execute")}
        assert records[0]["span_id"] in execute_ids

    def test_untraced_engine_records_nothing(self, tmp_path):
        engine = RunEngine(RunContext(cache_dir=tmp_path / "c", jobs=1))
        _, report = engine.run_jobs_report(small_jobs())
        assert report.ok
        assert engine.tracer is None
        for outcome in report.outcomes:
            assert outcome.wall_seconds is not None
            assert outcome.wall_seconds >= 0
