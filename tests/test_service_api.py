"""Tests for the service's typed public submission API.

The API contract: every wire document is the ``to_dict`` form of a
frozen dataclass, every ``from_dict`` validates (malformed input is a
typed :class:`RequestInvalid`, never a stack trace), and every error
round-trips through ``error_to_dict``/``error_from_dict`` into the
same exception type — :class:`Backpressure` keeps its queue depth and
retry-after across the wire.
"""

from __future__ import annotations

import pytest

from repro.core.config import named_configs
from repro.service.api import (
    API_SCHEMA,
    Backpressure,
    ERR_WORKER_CRASH,
    JobSpec,
    JobStatus,
    MAX_JOBS_PER_SWEEP,
    NotFound,
    PayloadTooLarge,
    RequestInvalid,
    ServiceError,
    ServiceUnavailable,
    SubmitRequest,
    SweepStatus,
    error_from_dict,
    error_to_dict,
)
from repro.service.http import retry_after_header


class TestNamedConfigs:
    def test_catalog_names(self):
        names = named_configs()
        for expected in ("baseline", "packing", "packing-replay",
                         "no-detect", "wide-decode", "wide-issue",
                         "perfect-predictor"):
            assert expected in names

    def test_fingerprints_distinct(self):
        fingerprints = [c.fingerprint()
                        for c in named_configs().values()]
        assert len(fingerprints) == len(set(fingerprints))


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(workload="go", config="packing", scale=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = JobSpec.from_dict({"workload": "go"})
        assert spec.config == "baseline"
        assert spec.scale == 1

    @pytest.mark.parametrize("data", [
        "not a dict",
        {},
        {"workload": ""},
        {"workload": 7},
        {"workload": "go", "scale": 0},
        {"workload": "go", "scale": True},
        {"workload": "go", "scale": "2"},
        {"workload": "go", "config": 3},
    ])
    def test_invalid_specs_typed(self, data):
        with pytest.raises(RequestInvalid):
            JobSpec.from_dict(data)

    def test_resolve_known(self):
        job = JobSpec(workload="go", config="packing").resolve()
        assert job.workload == "go"
        assert job.config == named_configs()["packing"]

    def test_resolve_unknown_workload(self):
        with pytest.raises(RequestInvalid) as exc:
            JobSpec(workload="no-such-benchmark").resolve()
        assert "known" in exc.value.details

    def test_resolve_unknown_config(self):
        with pytest.raises(RequestInvalid):
            JobSpec(workload="go", config="no-such-config").resolve()

    def test_fingerprint_matches_engine_job(self):
        spec = JobSpec(workload="go", config="baseline")
        assert spec.fingerprint() == spec.resolve().fingerprint()


class TestSubmitRequest:
    def _body(self, **overrides):
        body = {"schema": API_SCHEMA, "backend": "reference",
                "jobs": [{"workload": "go"}]}
        body.update(overrides)
        return body

    def test_round_trip(self):
        request = SubmitRequest.from_dict(self._body())
        assert SubmitRequest.from_dict(request.to_dict()) == request

    def test_schema_required_and_exact(self):
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(self._body(schema=None))
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(self._body(schema="repro-service/2"))

    def test_backend_choices(self):
        assert SubmitRequest.from_dict(
            self._body(backend="fast")).backend == "fast"
        # "both" is the CI cross-check mode, not a serving mode.
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(self._body(backend="both"))

    def test_jobs_required_nonempty(self):
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(self._body(jobs=[]))
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(self._body(jobs="go"))

    def test_sweep_size_ceiling(self):
        oversized = [{"workload": "go"}] * (MAX_JOBS_PER_SWEEP + 1)
        with pytest.raises(RequestInvalid) as exc:
            SubmitRequest.from_dict(self._body(jobs=oversized))
        assert exc.value.details["limit"] == MAX_JOBS_PER_SWEEP


class TestSweepStatus:
    def _status(self, states):
        return SweepStatus(
            sweep_id="sweep-000001",
            statuses=tuple(
                JobStatus(spec=JobSpec(workload="go"), fingerprint=f"f{i}",
                          state=state)
                for i, state in enumerate(states)))

    def test_round_trip(self):
        status = self._status(["done", "running"])
        again = SweepStatus.from_dict(status.to_dict())
        assert again.sweep_id == status.sweep_id
        assert [s.state for s in again.statuses] == ["done", "running"]

    def test_done_and_ok_rollups(self):
        assert not self._status(["queued"]).done
        assert not self._status(["done", "running"]).done
        failed = self._status(["done", "failed"])
        assert failed.done and not failed.ok
        assert self._status(["done", "done"]).ok

    def test_invalid_statuses_typed(self):
        with pytest.raises(RequestInvalid):
            SweepStatus.from_dict({"sweep_id": "s", "jobs": [
                {"spec": {"workload": "go"}, "fingerprint": "f",
                 "state": "exploded"}]})
        with pytest.raises(RequestInvalid):
            SweepStatus.from_dict({"jobs": []})


class TestErrorRoundTrip:
    def test_backpressure_keeps_fields(self):
        err = Backpressure("queue full", queue_depth=7, queue_limit=8,
                           retry_after=12.5)
        again = error_from_dict(error_to_dict(err))
        assert isinstance(again, Backpressure)
        assert again.http_status == 429
        assert again.queue_depth == 7
        assert again.queue_limit == 8
        assert again.retry_after == 12.5

    def test_not_found_and_invalid(self):
        for err in (NotFound("gone"), RequestInvalid("bad", hint="x")):
            again = error_from_dict(error_to_dict(err))
            assert type(again) is type(err)
            assert again.message == err.message
            assert again.details == err.details

    def test_unknown_code_degrades_to_base(self):
        err = error_from_dict({"error": "from-the-future",
                               "message": "??"})
        assert type(err) is ServiceError
        assert err.message == "??"


class TestNewErrorTypes:
    def test_payload_too_large_is_a_413_in_the_400_family(self):
        err = PayloadTooLarge("body too big", length=9_000_000,
                              limit=8_388_608)
        assert isinstance(err, RequestInvalid)
        assert err.http_status == 413
        again = error_from_dict(error_to_dict(err))
        assert type(again) is PayloadTooLarge
        assert again.details == {"length": 9_000_000, "limit": 8_388_608}

    def test_service_unavailable_round_trips_reason_and_extras(self):
        err = ServiceUnavailable("breaker open", reason="breaker-open",
                                 retry_after=27.5,
                                 consecutive_crashes=5, threshold=5)
        again = error_from_dict(error_to_dict(err))
        assert type(again) is ServiceUnavailable
        assert again.http_status == 503
        assert again.reason == "breaker-open"
        assert again.retry_after == 27.5
        assert again.details["consecutive_crashes"] == 5
        assert again.details["threshold"] == 5

    def test_unknown_code_keeps_details(self):
        err = error_from_dict({"error": "from-the-future",
                               "message": "??",
                               "details": {"hint": "upgrade"}})
        assert type(err) is ServiceError
        assert err.details == {"hint": "upgrade"}


class TestRetryAfterHeader:
    @pytest.mark.parametrize("seconds,expected", [
        (0, "1"),           # a zero wait still tells clients to pause
        (0.4, "1"),         # fractions round *up*: never retry early
        (1.0, "1"),
        (1.2, "2"),
        (2.0, "2"),
        (90.7, "91"),
    ])
    def test_rounding(self, seconds, expected):
        assert retry_after_header(seconds) == expected


class TestDeadlineSeconds:
    def test_round_trip(self):
        request = SubmitRequest(jobs=(JobSpec(workload="go"),),
                                deadline_seconds=12.5)
        again = SubmitRequest.from_dict(request.to_dict())
        assert again.deadline_seconds == 12.5

    def test_omitted_from_wire_when_unset(self):
        request = SubmitRequest(jobs=(JobSpec(workload="go"),))
        assert "deadline_seconds" not in request.to_dict()
        assert SubmitRequest.from_dict(
            request.to_dict()).deadline_seconds is None

    @pytest.mark.parametrize("deadline", [
        0, -1, -0.5, True, "10", [], 86401.0,
    ])
    def test_invalid_budgets_typed(self, deadline):
        body = {"schema": API_SCHEMA,
                "jobs": [{"workload": "go"}],
                "deadline_seconds": deadline}
        with pytest.raises(RequestInvalid):
            SubmitRequest.from_dict(body)


class TestJobStatusErrorCode:
    def test_error_code_round_trips(self):
        status = JobStatus(spec=JobSpec(workload="go"), fingerprint="fp",
                           state="failed", error="boom",
                           error_code=ERR_WORKER_CRASH)
        again = JobStatus.from_dict(status.to_dict())
        assert again.error_code == ERR_WORKER_CRASH
        assert again.error == "boom"
        assert again.terminal

    def test_error_code_absent_when_clean(self):
        status = JobStatus(spec=JobSpec(workload="go"), fingerprint="fp",
                           state="done")
        assert status.to_dict()["error_code"] is None
        assert JobStatus.from_dict(status.to_dict()).error_code is None
