"""Integration tests for the out-of-order timing machine."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.isa.registers import reg_index
from repro.memory.hierarchy import HierarchyConfig

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def sum_loop(n: int) -> Assembler:
    asm = Assembler("sum")
    standard_prologue(asm)
    asm.li("s0", n)
    asm.clr("s1")
    asm.label("loop")
    asm.op("addq", "s1", "s1", "s0")
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


class TestEndToEnd:
    def test_computes_correct_result(self):
        machine = Machine(sum_loop(100).assemble(), BASELINE)
        machine.run()
        assert machine.feed.reg(reg_index("s1")) == 5050

    def test_halts_and_reports(self):
        machine = Machine(sum_loop(10).assemble(), BASELINE)
        result = machine.run()
        assert machine.done
        assert result.stats.cycles > 0
        assert 0 < result.ipc <= BASELINE.commit_width

    def test_committed_counts_whole_program(self):
        machine = Machine(sum_loop(50).assemble(), BASELINE)
        result = machine.run()
        # prologue(2 for li sp) + li + clr + 50*3 loop + halt, plus the
        # li expansion; committed must equal the functional length.
        from repro.core.feed import Feed
        feed = Feed(sum_loop(50).assemble(), BASELINE)
        feed.fast_mode = True
        count = 0
        while feed.next() is not None:
            count += 1
        assert result.stats.committed == count

    def test_max_insts_window(self):
        machine = Machine(sum_loop(10000).assemble(), FAST)
        result = machine.run(max_insts=500)
        assert not machine.done
        assert 500 <= result.stats.committed < 520   # one extra cycle max

    def test_deterministic(self):
        r1 = Machine(sum_loop(200).assemble(), BASELINE).run()
        r2 = Machine(sum_loop(200).assemble(), BASELINE).run()
        assert r1.stats.cycles == r2.stats.cycles
        assert r1.stats.committed == r2.stats.committed


class TestTimingSanity:
    def test_dependent_chain_one_per_cycle(self):
        # A pure dependence chain commits ~1 instruction per cycle.
        asm = Assembler("chain")
        asm.clr("t0")
        for _ in range(200):
            asm.op("addq", "t0", "t0", 1)
        asm.halt()
        result = Machine(asm.assemble(), FAST).run()
        assert result.stats.cycles >= 200

    def test_independent_ops_reach_high_ipc(self):
        asm = Assembler("par")
        regs = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]
        for r in regs:
            asm.clr(r)
        for _ in range(100):
            for r in regs:
                asm.op("addq", r, r, 1)
        asm.halt()
        result = Machine(asm.assemble(), FAST).run()
        assert result.ipc > 3.0

    def test_mispredict_penalty_costs_cycles(self):
        # Data-dependent unpredictable branches vs none.
        def branchy(taken_bits):
            asm = Assembler("branchy")
            buf = asm.alloc("bits", len(taken_bits))
            asm.data_bytes(buf, bytes(taken_bits))
            asm.li("s0", buf)
            asm.li("s1", len(taken_bits))
            asm.clr("s2")
            asm.label("loop")
            asm.load("ldbu", "t0", "s0", 0)
            asm.br("beq", "t0", "skip")
            asm.op("addq", "s2", "s2", 1)
            asm.label("skip")
            asm.op("addq", "s0", "s0", 1)
            asm.op("subq", "s1", "s1", 1)
            asm.br("bne", "s1", "loop")
            asm.halt()
            return asm.assemble()

        from repro.workloads.data import Xorshift64
        rng = Xorshift64(11)
        random_bits = [rng.next_below(2) for _ in range(400)]
        steady_bits = [1] * 400
        random_run = Machine(branchy(random_bits), FAST).run()
        steady_run = Machine(branchy(steady_bits), FAST).run()
        assert random_run.stats.mispredicts > steady_run.stats.mispredicts
        assert random_run.stats.cycles > steady_run.stats.cycles

    def test_cache_misses_cost_cycles(self):
        def walker(stride):
            asm = Assembler("walk")
            buf = asm.alloc("buf", 64 * 1024 * 4)
            asm.li("s0", buf)
            asm.li("s1", 500)
            asm.clr("s2")
            asm.label("loop")
            asm.load("ldq", "t0", "s0", 0)
            asm.op("addq", "s2", "s2", "t0")
            asm.op("addq", "s0", "s0", stride)
            asm.op("subq", "s1", "s1", 1)
            asm.br("bne", "s1", "loop")
            asm.halt()
            return asm.assemble()

        hits = Machine(walker(0), BASELINE).run()      # same line always
        misses = Machine(walker(64), BASELINE).run()   # new line each time
        assert misses.stats.cycles > hits.stats.cycles * 2

    def test_perfect_vs_realistic_prediction(self):
        program = sum_loop(300).assemble()
        realistic = Machine(program, FAST).run()
        perfect = Machine(program, FAST.with_predictor("perfect")).run()
        assert perfect.stats.mispredicts == 0
        assert perfect.stats.cycles <= realistic.stats.cycles


class TestSpeculativeExecution:
    def test_wrong_path_work_is_squashed_not_committed(self):
        machine = Machine(sum_loop(100).assemble(), FAST)
        result = machine.run()
        # issued counts wrong-path work; committed never does.
        assert result.stats.issued >= result.stats.committed
        assert result.stats.mispredicts > 0   # cold predictor at loop exit

    def test_state_correct_despite_speculation(self):
        asm = Assembler("specmem")
        standard_prologue(asm)
        buf = asm.alloc("buf", 8)
        asm.li("s3", 50)
        asm.li("s4", 0)
        asm.li("a5", buf)
        asm.label("loop")
        asm.op("and", "t0", "s3", 3)
        asm.br("beq", "t0", "mult4")
        asm.op("addq", "s4", "s4", 1)
        asm.br("br", "next")
        asm.label("mult4")
        asm.op("addq", "s4", "s4", 100)
        asm.store("stq", "s4", "a5", 0)
        asm.label("next")
        asm.op("subq", "s3", "s3", 1)
        asm.br("bne", "s3", "loop")
        asm.halt()
        machine = Machine(asm.assemble(), BASELINE)
        machine.run()
        # Python model of the same computation:
        s4 = 0
        last_store = None
        for s3 in range(50, 0, -1):
            if s3 % 4 == 0:
                s4 += 100
                last_store = s4
            else:
                s4 += 1
        assert machine.feed.reg(reg_index("s4")) == s4
        assert machine.feed.memory.load(buf, 8) == last_store


class TestStructuralLimits:
    def test_ruu_never_exceeds_capacity(self):
        config = replace(FAST, ruu_size=8, lsq_size=4)
        machine = Machine(sum_loop(50).assemble(), config)
        max_seen = 0
        while not machine.done and machine.stats.cycles < 10000:
            machine._step()
            max_seen = max(max_seen, len(machine.ruu))
        assert machine.done
        assert max_seen <= 8

    def test_commit_width_respected(self):
        machine = Machine(sum_loop(100).assemble(), FAST)
        prev = 0
        while not machine.done and machine.stats.cycles < 10000:
            machine._step()
            committed_now = machine.stats.committed - prev
            assert committed_now <= FAST.commit_width
            prev = machine.stats.committed

    def test_issue_width_respected_without_packing(self):
        machine = Machine(sum_loop(100).assemble(), FAST)
        prev = 0
        while not machine.done and machine.stats.cycles < 10000:
            machine._step()
            issued_now = machine.stats.issued - prev
            assert issued_now <= FAST.issue_width
            prev = machine.stats.issued

    def test_tiny_fetch_queue_still_correct(self):
        config = replace(FAST, fetch_queue_size=2)
        machine = Machine(sum_loop(30).assemble(), config)
        machine.run()
        assert machine.feed.reg(reg_index("s1")) == 465


class TestWarmup:
    def test_fast_forward_runs_functionally(self):
        machine = Machine(sum_loop(100).assemble(), BASELINE)
        executed = machine.fast_forward(50)
        assert executed == 50
        assert machine.stats.cycles == 0       # no timing yet
        result = machine.run()
        assert machine.feed.reg(reg_index("s1")) == 5050
        assert result.stats.committed < 330    # the rest of the program

    def test_fast_forward_stops_at_halt(self):
        machine = Machine(sum_loop(5).assemble(), BASELINE)
        executed = machine.fast_forward(10**6)
        assert executed < 10**6
        assert machine.feed.halted

    def test_fast_forward_warms_caches(self):
        machine = Machine(sum_loop(100).assemble(), BASELINE)
        machine.fast_forward(20)
        assert machine.hierarchy.l1i.stats.accesses > 0
