"""Differential oracle: static claims verified against live simulation.

The strongest test in the analysis suite: every registered workload
runs under the full timing model with packing and replay packing
enabled, with the oracle intercepting the feed and the event bus.
Zero violations means every statically-proven width fact held on every
architected dynamic instance, every control transfer stayed on the
recovered CFG, and every good-path packed issue was statically
predicted possible.
"""

import pytest

from repro.analysis import DifferentialOracle
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.workloads.registry import all_workloads, resolve_warmup

#: Detailed-simulation cap per workload: enough to cover warmup
#: transients, loop steady state, and (for xlisp) call/return recovery.
_WINDOW = 6000

_CONFIG = BASELINE.with_packing(replay=True)


def _run_with_oracle(workload):
    machine = Machine(workload.build(1), _CONFIG)
    oracle = DifferentialOracle(machine)
    machine.fast_forward(resolve_warmup(workload, 1))
    machine.run(max_insts=_WINDOW)
    return machine, oracle


@pytest.mark.parametrize("workload", all_workloads(),
                         ids=lambda w: w.name)
def test_static_subset_dynamic(workload):
    machine, oracle = _run_with_oracle(workload)
    assert oracle.checked > 0
    oracle.assert_clean()


@pytest.mark.parametrize("workload", all_workloads(),
                         ids=lambda w: w.name)
def test_static_pack_bound_holds(workload):
    machine, oracle = _run_with_oracle(workload)
    report = oracle.report()
    # The static candidate count upper-bounds observed packing...
    assert report["static_pack_bound"] >= report["observed_packed"]
    # ...and the oracle's event-side accounting reproduces the
    # machine's own packed_ops counter exactly.
    assert report["observed_packed"] == machine.stats.packed_ops


def test_oracle_detects_a_planted_violation():
    """Sanity: the oracle is not vacuous — corrupting a static fact
    makes it fire."""
    from dataclasses import replace as dc_replace

    from repro.analysis import analyze
    from repro.analysis.intervals import Interval

    workload = all_workloads()[0]
    program = workload.build(1)
    analysis = analyze(program)
    # Claim every instruction with a genuinely wide-ranging result is
    # provably zero; some dynamic instance must refute it.
    corrupted = 0
    for i, f in enumerate(analysis.facts):
        if f is not None and f.result is not None \
                and not f.result.is_constant:
            analysis.facts[i] = dc_replace(f, result=Interval(0, 0))
            corrupted += 1
    assert corrupted > 0
    machine = Machine(program, _CONFIG)
    oracle = DifferentialOracle(machine, analysis)
    machine.run(max_insts=_WINDOW)
    assert not oracle.clean
    with pytest.raises(AssertionError):
        oracle.assert_clean()
