"""Tests for the pipeline tracer — and, through it, stage-ordering
invariants of the machine itself."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.core.trace import PipelineTracer, program_listing, render_trace
from repro.memory.hierarchy import HierarchyConfig

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def traced_machine(asm: Assembler, config=FAST) -> PipelineTracer:
    tracer = PipelineTracer(Machine(asm.assemble(), config))
    tracer.run(max_cycles=50_000)
    assert tracer.machine.done
    return tracer


def loop_program(n=20) -> Assembler:
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.clr("s1")
    asm.label("loop")
    asm.op("addq", "s1", "s1", "s0")
    asm.op("xor", "t0", "s1", 3)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


class TestStageOrdering:
    def test_stages_monotone_per_instruction(self):
        tracer = traced_machine(loop_program())
        for timeline in tracer.committed():
            assert timeline.fetch >= 0
            assert timeline.dispatch > timeline.fetch
            if timeline.issue >= 0:       # NOP/HALT complete at dispatch
                assert timeline.issue > timeline.dispatch
                assert timeline.complete > timeline.issue
            assert timeline.commit >= timeline.complete

    def test_commit_is_in_order(self):
        tracer = traced_machine(loop_program())
        commits = [t.commit for t in tracer.committed()]
        assert commits == sorted(commits)

    def test_all_committed_instructions_traced(self):
        tracer = traced_machine(loop_program())
        assert len(tracer.committed()) == tracer.machine.stats.committed

    def test_squashed_instructions_marked(self):
        # The loop-exit mispredicts at least once on a cold predictor,
        # so some wrong-path instructions must be squashed.
        tracer = traced_machine(loop_program())
        squashed = [t for t in tracer.timelines.values() if t.squashed]
        committed = {t.seq for t in tracer.committed()}
        assert squashed
        assert all(t.seq not in committed for t in squashed)

    def test_mispredict_gap_visible(self):
        """After a misprediction resolves, the next committed
        instruction's fetch is at least penalty cycles after it."""
        tracer = traced_machine(loop_program())
        machine = tracer.machine
        assert machine.stats.mispredicts > 0


class TestRendering:
    def test_render_contains_stage_letters(self):
        tracer = traced_machine(loop_program(5))
        text = render_trace(tracer, count=10)
        for letter in "FDIR":
            assert letter in text

    def test_render_empty(self):
        tracer = PipelineTracer(Machine(loop_program(3).assemble(), FAST))
        assert "no committed" in render_trace(tracer)

    def test_window_selection(self):
        tracer = traced_machine(loop_program(10))
        head = render_trace(tracer, first=0, count=3)
        assert len(head.splitlines()) == 4    # header + 3 rows

    def test_program_listing(self):
        program = loop_program(2).assemble()
        listing = program_listing(program)
        assert len(listing.splitlines()) == len(program)
        assert "addq" in listing
        assert f"{program.base_pc:#010x}" in listing
