"""Block memoization: bit-exactness (memoized == unmemoized ==
reference), the RunContext escape hatch, and the adaptive runtime
plumbing."""

import pytest

from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import Machine
from repro.exec.context import RunContext
from repro.exec.serialize import dict_divergences, result_to_dict
from repro.fastsim.blockcache import BlockMemo, build_plan
from repro.fastsim.machine import FastMachine
from repro.workloads.registry import get_workload, resolve_warmup

WINDOW = 2_000


def _run(machine_cls, workload_name, config, window=WINDOW, **kwargs):
    workload = get_workload(workload_name)
    machine = machine_cls(workload.build(1), config, **kwargs)
    machine.fast_forward(resolve_warmup(workload, 1))
    return machine, result_to_dict(machine.run(max_insts=window))


# --------------------------------------------------------- bit-exactness

class TestMemoEquivalence:
    @pytest.mark.parametrize("workload", ["gcc", "g721-encode", "perl",
                                          "m88ksim", "compress"])
    def test_memo_on_off_and_reference_agree(self, workload):
        _, memo_on = _run(FastMachine, workload, BASELINE, memo=True)
        _, memo_off = _run(FastMachine, workload, BASELINE, memo=False)
        _, reference = _run(Machine, workload, BASELINE)
        assert dict_divergences(memo_off, memo_on) == []
        assert dict_divergences(reference, memo_on) == []

    @pytest.mark.parametrize("config", [
        BASELINE.with_packing(),
        BASELINE.with_packing(replay=True),
    ], ids=["packing", "packing-replay"])
    def test_memo_bit_exact_under_packing(self, config):
        _, memo_on = _run(FastMachine, "gcc", config, memo=True)
        _, memo_off = _run(FastMachine, "gcc", config, memo=False)
        assert dict_divergences(memo_off, memo_on) == []

    def test_memo_bit_exact_at_odd_windows(self):
        for window in (1, 17, 501):
            _, on = _run(FastMachine, "gcc", BASELINE, window=window,
                         memo=True)
            _, off = _run(FastMachine, "gcc", BASELINE, window=window,
                          memo=False)
            assert dict_divergences(off, on) == []


# ------------------------------------------------------------ plumbing

class TestMemoPlumbing:
    def test_memo_disabled_reports_disabled(self):
        machine = FastMachine(get_workload("gcc").build(1), BASELINE,
                              memo=False)
        stats = machine.memo_stats()
        assert stats["enabled"] is False
        assert stats["hits"] == 0

    def test_memo_stats_after_run(self):
        machine, _ = _run(FastMachine, "gcc", BASELINE, memo=True)
        stats = machine.memo_stats()
        assert stats["enabled"] is True
        assert stats["blocks_planned"] >= stats["blocks_active"]
        assert 0.0 <= stats["hit_rate"] <= 1.0
        # gcc's hot loop blocks recur within the first 2k instructions.
        assert stats["hits"] > 0

    def test_adaptive_give_up_drops_noise_blocks(self):
        # go's memo keys are pairwise-distinct: recording can never
        # repay, so the adaptive gate must disable blocks over the run.
        machine, _ = _run(FastMachine, "go", BASELINE, window=8_000,
                          memo=True)
        stats = machine.memo_stats()
        assert stats["blocks_active"] < stats["blocks_planned"]

    def test_plan_requires_trap_free_under_replay_packing(self):
        program = get_workload("gcc").build(1)
        full = build_plan(program)
        memo = BlockMemo(program, require_trap_free=True)
        assert set(memo.plan) <= set(full)
        assert all(full[lead][4] for lead in memo.plan)

    def test_run_context_carries_memo_flag(self):
        assert RunContext().memo is True
        assert RunContext(memo=False).memo is False


# --------------------------------------------------------------- engine

class TestEngineMemoFlag:
    def test_no_memo_context_matches_default(self, tmp_path):
        from repro.exec.engine import RunEngine, clear_memo
        from repro.exec.jobs import Job

        job = Job("gcc", BASELINE, 1)
        outs = []
        for memo in (True, False):
            clear_memo()
            ctx = RunContext(cache_dir=tmp_path / f"memo-{memo}",
                             backend="fast", jobs=1, memo=memo)
            results = RunEngine(ctx).run_jobs([job])
            outs.append(result_to_dict(results[job.key]))
        clear_memo()
        assert dict_divergences(outs[0], outs[1]) == []
