"""Unit and property tests for the backing store and speculation overlay."""

from hypothesis import given
from hypothesis import strategies as st

from repro.asm.layout import PAGE_BYTES
from repro.memory.backing import MainMemory, SpeculativeMemory


class TestMainMemory:
    def test_unwritten_reads_zero(self):
        mem = MainMemory()
        assert mem.load(0x1234, 8) == 0
        assert mem.load(0x1_0000_0000, 4) == 0

    def test_byte_roundtrip(self):
        mem = MainMemory()
        mem.store_byte(100, 0xAB)
        assert mem.load_byte(100) == 0xAB

    def test_little_endian(self):
        mem = MainMemory()
        mem.store(0, 0x0102030405060708, 8)
        assert mem.load_byte(0) == 0x08
        assert mem.load_byte(7) == 0x01

    def test_sizes(self):
        mem = MainMemory()
        mem.store(16, 0xDEADBEEFCAFEBABE, 8)
        assert mem.load(16, 1) == 0xBE
        assert mem.load(16, 2) == 0xBABE
        assert mem.load(16, 4) == 0xCAFEBABE
        assert mem.load(16, 8) == 0xDEADBEEFCAFEBABE

    def test_store_truncates_to_size(self):
        mem = MainMemory()
        mem.store(0, 0x1FF, 1)
        assert mem.load(0, 1) == 0xFF
        assert mem.load(1, 1) == 0     # neighbour untouched

    def test_page_spanning_access(self):
        mem = MainMemory()
        addr = PAGE_BYTES - 4
        mem.store(addr, 0x1122334455667788, 8)
        assert mem.load(addr, 8) == 0x1122334455667788

    def test_image_constructor(self):
        mem = MainMemory({10: 0xAA, 11: 0xBB})
        assert mem.load(10, 2) == 0xBBAA

    def test_sparse_distant_pages(self):
        mem = MainMemory()
        mem.store(0, 1, 8)
        mem.store(1 << 40, 2, 8)
        assert mem.load(0, 8) == 1
        assert mem.load(1 << 40, 8) == 2

    @given(st.integers(min_value=0, max_value=2**34),
           st.integers(min_value=0, max_value=2**64 - 1),
           st.sampled_from([1, 2, 4, 8]))
    def test_roundtrip(self, addr, value, size):
        mem = MainMemory()
        mem.store(addr, value, size)
        assert mem.load(addr, size) == value & ((1 << (8 * size)) - 1)


class TestSpeculativeMemory:
    def test_reads_fall_through(self):
        base = MainMemory()
        base.store(8, 77, 8)
        spec = SpeculativeMemory(base)
        assert spec.load(8, 8) == 77

    def test_spec_store_shadows(self):
        base = MainMemory()
        base.store(8, 77, 8)
        spec = SpeculativeMemory(base)
        spec.store(8, 99, 8)
        assert spec.load(8, 8) == 99
        assert base.load(8, 8) == 77   # architected state untouched

    def test_discard(self):
        base = MainMemory()
        spec = SpeculativeMemory(base)
        spec.store(0, 123, 8)
        assert not spec.empty()
        spec.discard()
        assert spec.empty()
        assert spec.load(0, 8) == 0

    def test_partial_overlay(self):
        # A wrong-path byte store over an architected quad: the load
        # must merge overlay and base bytes.
        base = MainMemory()
        base.store(0, 0x1111111111111111, 8)
        spec = SpeculativeMemory(base)
        spec.store(2, 0xFF, 1)
        assert spec.load(0, 8) == 0x111111111_1FF1111

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=2**64 - 1))
    def test_discard_restores_base_view(self, addr, value):
        base = MainMemory()
        base.store(addr, 42, 8)
        spec = SpeculativeMemory(base)
        spec.store(addr, value, 8)
        spec.discard()
        assert spec.load(addr, 8) == 42
