"""Tests for the sharded content-addressed store and the shared
engine CLI flags.

The CAS contract: entry *bytes* are identical to the flat layout's
(only the directory differs), the root is self-describing via its
layout marker, corruption quarantines per shard, and fingerprint-only
lookups scan exactly one shard.  The flag contract: every repro CLI
carries the same engine knob group and derives the same typed
RunContext from it.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.core.config import BASELINE, named_configs
from repro.exec import (
    CAS_SCHEMA,
    CasLayoutError,
    Job,
    RunContext,
    RunEngine,
    ShardedResultCache,
    add_engine_arguments,
    clear_memo,
    context_from_args,
    validate_engine_args,
)
from repro.exec.shards import MARKER, shard_key

GO = Job("go", BASELINE, 1)


class TestShardKey:
    def test_deterministic(self):
        assert shard_key("go-x1-abc") == shard_key("go-x1-abc")

    def test_width(self):
        assert len(shard_key("x", 2)) == 2
        assert len(shard_key("x", 4)) == 4

    def test_hashed_not_prefix(self):
        # Raw fingerprints share the workload-name prefix; hashing
        # spreads them (same workload, different configs -> usually
        # different shards, never guaranteed-same).
        keys = {shard_key(f"go-x1-{c.fingerprint()}")
                for c in named_configs().values()}
        assert len(keys) > 1

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            ShardedResultCache("anywhere", width=0)
        with pytest.raises(ValueError):
            ShardedResultCache("anywhere", width=9)


class TestShardedLayout:
    def run_into(self, directory, layout):
        clear_memo()
        ctx = RunContext(cache_dir=directory, cache_layout=layout)
        return RunEngine(ctx).run(GO)

    def test_store_lands_in_shard_with_marker(self, tmp_path):
        self.run_into(tmp_path / "cas", "cas")
        marker = json.loads((tmp_path / "cas" / MARKER).read_text())
        assert marker["schema"] == CAS_SCHEMA
        assert marker["shard_width"] == 2
        cache = ShardedResultCache(tmp_path / "cas")
        entries = cache.entries()
        assert len(entries) == 1
        # The entry sits in the shard its fingerprint hashes to.
        assert entries[0].parent.name == shard_key(GO.fingerprint())

    def test_entry_bytes_identical_to_flat_layout(self, tmp_path):
        self.run_into(tmp_path / "cas", "cas")
        self.run_into(tmp_path / "flat", "flat")
        cas_entry = ShardedResultCache(tmp_path / "cas").entries()[0]
        flat_entry = sorted((tmp_path / "flat").glob("*.json"))[0]
        assert cas_entry.name == flat_entry.name
        assert cas_entry.read_bytes() == flat_entry.read_bytes()

    def test_warm_hit_through_engine(self, tmp_path):
        first = self.run_into(tmp_path / "cas", "cas")
        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path / "cas",
                                      cache_layout="cas"))
        second = engine.run(GO)
        assert engine.stats.cache_hits == 1
        assert engine.stats.fresh_runs == 0
        assert second.stats.as_dict() == first.stats.as_dict()

    def test_load_by_fingerprint(self, tmp_path):
        self.run_into(tmp_path / "cas", "cas")
        cache = ShardedResultCache(tmp_path / "cas")
        entry = cache.load_by_fingerprint(GO.fingerprint())
        assert entry is not None
        assert entry["fingerprint"] == GO.fingerprint()
        assert cache.load_by_fingerprint("no-such-fingerprint") is None

    def test_corrupt_entry_quarantines_in_its_shard(self, tmp_path):
        self.run_into(tmp_path / "cas", "cas")
        cache = ShardedResultCache(tmp_path / "cas")
        path = cache.entries()[0]
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(raw))

        clear_memo()
        engine = RunEngine(RunContext(cache_dir=tmp_path / "cas",
                                      cache_layout="cas"))
        recovered = engine.run(GO)
        assert engine.stats.cache_quarantined == 1
        assert engine.stats.fresh_runs == 1
        assert recovered.stats.as_dict() is not None
        quarantined = ShardedResultCache(tmp_path / "cas").quarantined()
        assert len(quarantined) == 1
        # Quarantine stays inside the shard that owned the entry.
        assert quarantined[0].parent.parent.name \
            == shard_key(GO.fingerprint())


class TestLayoutMarker:
    def test_width_mismatch_refused(self, tmp_path):
        root = tmp_path / "cas"
        root.mkdir()
        (root / MARKER).write_text(json.dumps(
            {"schema": CAS_SCHEMA, "shard_width": 3}))
        with pytest.raises(CasLayoutError):
            ShardedResultCache(root, width=2)
        ShardedResultCache(root, width=3)    # matching width is fine

    def test_foreign_schema_refused(self, tmp_path):
        root = tmp_path / "cas"
        root.mkdir()
        (root / MARKER).write_text(json.dumps(
            {"schema": "something-else/9", "shard_width": 2}))
        with pytest.raises(CasLayoutError):
            ShardedResultCache(root)

    def test_unreadable_marker_refused(self, tmp_path):
        root = tmp_path / "cas"
        root.mkdir()
        (root / MARKER).write_text("{not json")
        with pytest.raises(CasLayoutError):
            ShardedResultCache(root)

    def test_context_validates_layout(self, tmp_path):
        with pytest.raises(ValueError):
            RunContext(cache_dir=tmp_path, cache_layout="banana")


def _all_parsers():
    from repro.experiments.runner import build_parser as experiments
    from repro.fastsim.cli import build_parser as equivalence
    from repro.obs.cli import build_parser as obs
    from repro.robust.cli import build_parser as chaos
    from repro.service.server import build_parser as serve
    return {"repro-experiments": experiments(), "repro-obs": obs(),
            "repro-chaos": chaos(), "repro-equivalence": equivalence(),
            "repro-serve": serve()}


class TestSharedEngineFlags:
    ENGINE_DESTS = ("jobs", "backend", "cache_dir", "cache_layout",
                    "no_cache", "refresh", "timeout", "retries")

    def test_every_cli_carries_the_full_group(self):
        for name, parser in _all_parsers().items():
            dests = {action.dest for action in parser._actions}
            missing = set(self.ENGINE_DESTS) - dests
            assert not missing, f"{name} is missing {sorted(missing)}"

    def test_context_from_args_and_overrides(self, tmp_path):
        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        args = parser.parse_args(
            ["--jobs", "3", "--cache-dir", str(tmp_path),
             "--cache-layout", "cas", "--refresh", "--retries", "0",
             "--backend", "fast", "--timeout", "5.5"])
        validate_engine_args(parser, args)
        ctx = context_from_args(args, obs_dir=tmp_path / "obs")
        assert ctx.jobs == 3
        assert ctx.backend == "fast"
        assert ctx.cache_layout == "cas"
        assert ctx.refresh and ctx.use_cache
        assert ctx.retries == 0
        assert ctx.timeout == 5.5
        assert ctx.obs_dir == tmp_path / "obs"

    @pytest.mark.parametrize("argv", [
        ["--jobs", "0"],
        ["--retries", "-1"],
        ["--timeout", "0"],
    ])
    def test_uniform_validation_rejects(self, argv):
        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        args = parser.parse_args(argv)
        with pytest.raises(SystemExit):
            validate_engine_args(parser, args)
