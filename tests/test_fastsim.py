"""Differential tests for the two-phase fast backend.

Three layers, from leaf to whole-machine:

1. the per-opcode dispatch tables (``COMPUTE_FNS``/``BRANCH_FNS``)
   against the reference ``compute()``/``branch_taken()`` if-chains,
   over edge-pattern operands and randomized 64-bit values;
2. the :class:`~repro.fastsim.machine.FastMachine` against the
   reference :class:`~repro.core.machine.Machine`: serialized results
   (every counter, the width histogram, fluctuation, power) must be
   identical over a matrix of workloads and configurations;
3. the run engine's ``backend`` plumbing: ``fast`` yields the same
   results as ``reference`` through :class:`RunEngine`, ``both``
   cross-checks and raises :class:`BackendDivergence` on any tampering,
   and an unknown backend is rejected at context construction.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import Machine
from repro.exec import Job, RunContext, RunEngine, clear_memo
from repro.exec.engine import BackendDivergence
from repro.exec.serialize import dict_divergences, result_to_dict
from repro.fastsim.machine import FastMachine
from repro.isa.opcodes import Opcode
from repro.isa.semantics import (
    BRANCH_FNS,
    COMPUTE_FNS,
    MASK64,
    branch_taken,
    compute,
)
from repro.power.gating import GatingPolicy
from repro.robust.report import SuiteFailure
from repro.workloads.registry import get_workload, resolve_warmup

u64 = st.integers(min_value=0, max_value=MASK64)

#: Operand bit patterns around every boundary the semantics care about:
#: zero, the byte/word/longword edges, the 32-bit sign bit (ADDL/SUBL
#: sign extension), and the 64-bit sign bit (signed compares, SRA).
EDGES = (
    0, 1, 2, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF,
    0x10000, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 1 << 32,
    (1 << 62), (1 << 63) - 1, 1 << 63, MASK64 - 1, MASK64,
)


class TestComputeTable:
    """COMPUTE_FNS must be ``compute()`` exactly, opcode by opcode."""

    def test_covers_every_operate_opcode(self):
        # The table and the if-chain must agree on *which* opcodes are
        # computable: every table entry runs through compute() without
        # the ValueError fallthrough.
        for op in COMPUTE_FNS:
            compute(op, 1, 1, 0)

    @pytest.mark.parametrize("op", sorted(COMPUTE_FNS, key=lambda o: o.name))
    def test_edges(self, op):
        fn = COMPUTE_FNS[op]
        for a, b in itertools.product(EDGES, EDGES):
            for old in (0, MASK64):
                assert fn(a, b, old) == compute(op, a, b, old), (
                    f"{op.name}(a={a:#x}, b={b:#x}, old={old:#x})")

    @given(u64, u64, u64)
    @settings(max_examples=60, deadline=None)
    def test_random_operands(self, a, b, old):
        for op, fn in COMPUTE_FNS.items():
            assert fn(a, b, old) == compute(op, a, b, old), op.name


class TestBranchTable:
    """BRANCH_FNS must be ``branch_taken()`` exactly."""

    def test_covers_every_conditional_branch(self):
        for op in BRANCH_FNS:
            branch_taken(op, 0)

    @pytest.mark.parametrize("op", sorted(BRANCH_FNS, key=lambda o: o.name))
    def test_edges(self, op):
        fn = BRANCH_FNS[op]
        for a in EDGES:
            assert bool(fn(a)) == branch_taken(op, a), (
                f"{op.name}(a={a:#x})")

    @given(u64)
    @settings(max_examples=120, deadline=None)
    def test_random_operands(self, a):
        for op, fn in BRANCH_FNS.items():
            assert bool(fn(a)) == branch_taken(op, a), op.name


# --------------------------------------------------------------- machines

WINDOW = 2_000     # keeps a full cross-check under ~100ms per cell


def run_pair(workload_name: str, config: MachineConfig,
             window: int = WINDOW) -> list[str]:
    """Both backends over one cell; returns the divergent result paths
    (empty = bit-exact)."""
    workload = get_workload(workload_name)
    warmup = resolve_warmup(workload, 1)

    reference = Machine(workload.build(1), config)
    reference.fast_forward(warmup)
    ref = result_to_dict(reference.run(max_insts=window))

    fast = FastMachine(workload.build(1), config)
    fast.fast_forward(warmup)
    out = result_to_dict(fast.run(max_insts=window))
    return dict_divergences(ref, out)


class TestFastMachineEquivalence:
    @pytest.mark.parametrize("workload", ["go", "compress", "g721-encode",
                                          "gcc", "xlisp"])
    def test_baseline_config(self, workload):
        assert run_pair(workload, BASELINE) == []

    @pytest.mark.parametrize("config", [
        BASELINE.with_packing(),
        BASELINE.with_packing(replay=True),
        BASELINE.with_packing(max_subwords=2, same_opcode=False),
        BASELINE.with_gating(GatingPolicy(detect_loads=False)),
        BASELINE.with_predictor("bimodal"),
    ], ids=["packing", "packing-replay", "packing-loose",
            "no-detect", "bimodal-predictor"])
    def test_config_matrix(self, config):
        assert run_pair("go", config) == []

    def test_window_boundaries(self):
        # Equivalence must hold at odd cutoffs, not just round windows:
        # the committed-instruction cutoff interacts with squashes and
        # in-flight packing state.
        for window in (1, 17, 501):
            assert run_pair("compress", BASELINE, window=window) == []


# ----------------------------------------------------------------- engine

@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


JOB = Job("go", BASELINE, 1)


class TestEngineBackend:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunContext(backend="warp")

    def test_fast_matches_reference_through_engine(self):
        ref = RunEngine(RunContext(use_cache=False)).run(JOB)
        clear_memo()
        fast = RunEngine(RunContext(backend="fast",
                                    use_cache=False)).run(JOB)
        assert dict_divergences(result_to_dict(ref),
                                result_to_dict(fast)) == []

    def test_both_mode_passes_clean(self):
        result = RunEngine(RunContext(backend="both",
                                      use_cache=False)).run(JOB)
        assert result.stats.committed > 0

    def test_both_mode_never_served_from_cache(self, tmp_path):
        # A cached result proves nothing about the current fast
        # backend; "both" must re-simulate even on a warm cache.
        ctx = RunContext(cache_dir=str(tmp_path))
        RunEngine(ctx).run(JOB)
        clear_memo()
        both = RunContext(backend="both", cache_dir=str(tmp_path))
        engine = RunEngine(both)
        engine.run(JOB)
        assert engine.stats.cache_hits == 0

    def test_both_mode_raises_on_divergence(self, monkeypatch):
        # Tamper with the fast backend's result; the cross-check must
        # refuse to return it and name the divergent counter.  The
        # engine's worker boundary converts the BackendDivergence into
        # a failed job outcome (tried once: retries=0), so the typed
        # error surfaces through SuiteFailure.
        original = FastMachine.run

        def tampered(self, max_insts=None):
            result = original(self, max_insts=max_insts)
            result.stats.committed += 1
            return result

        monkeypatch.setattr(FastMachine, "run", tampered)
        engine = RunEngine(RunContext(backend="both", use_cache=False,
                                      retries=0))
        with pytest.raises(SuiteFailure) as excinfo:
            engine.run(JOB)
        (outcome,) = excinfo.value.report.outcomes
        assert BackendDivergence.__name__ in outcome.error
        assert "stats.committed" in outcome.error
