"""Unit tests for opcode classification."""

from repro.isa.opcodes import (
    ALU_CLASSES,
    CALL_OPS,
    CONDITIONAL_BRANCHES,
    MEM_SIZE,
    OP_CLASS,
    PACKABLE_CLASSES,
    Opcode,
    OpClass,
    is_control,
    op_class,
)


class TestClassification:
    def test_every_opcode_classified(self):
        for op in Opcode:
            assert op in OP_CLASS

    def test_arith_examples(self):
        for op in (Opcode.ADDQ, Opcode.SUBQ, Opcode.CMPLT, Opcode.LDA,
                   Opcode.S8ADDQ):
            assert op_class(op) is OpClass.INT_ARITH

    def test_mult(self):
        assert op_class(Opcode.MULQ) is OpClass.INT_MULT
        assert op_class(Opcode.MULL) is OpClass.INT_MULT

    def test_logic_examples(self):
        for op in (Opcode.AND, Opcode.BIS, Opcode.XOR, Opcode.CMOVEQ,
                   Opcode.ZAPNOT):
            assert op_class(op) is OpClass.INT_LOGIC

    def test_shift_examples(self):
        for op in (Opcode.SLL, Opcode.SRA, Opcode.EXTBL, Opcode.EXTWL):
            assert op_class(op) is OpClass.INT_SHIFT

    def test_memory_classes(self):
        assert op_class(Opcode.LDQ) is OpClass.LOAD
        assert op_class(Opcode.STB) is OpClass.STORE

    def test_control_classes(self):
        assert op_class(Opcode.BEQ) is OpClass.BRANCH
        assert op_class(Opcode.BR) is OpClass.BRANCH
        assert op_class(Opcode.RET) is OpClass.JUMP

    def test_nop_halt(self):
        assert op_class(Opcode.NOP) is OpClass.NOP
        assert op_class(Opcode.HALT) is OpClass.HALT


class TestGroups:
    def test_alu_classes_cover_integer_work(self):
        assert OpClass.INT_ARITH in ALU_CLASSES
        assert OpClass.LOAD in ALU_CLASSES        # address calculation
        assert OpClass.BRANCH in ALU_CLASSES      # condition evaluation
        assert OpClass.NOP not in ALU_CLASSES

    def test_packable_excludes_multiplies(self):
        # Section 5.1: "we do not attempt to pack multiply operations".
        assert OpClass.INT_MULT not in PACKABLE_CLASSES
        assert OpClass.INT_ARITH in PACKABLE_CLASSES
        assert OpClass.INT_LOGIC in PACKABLE_CLASSES
        assert OpClass.INT_SHIFT in PACKABLE_CLASSES

    def test_packable_excludes_memory_and_control(self):
        assert OpClass.LOAD not in PACKABLE_CLASSES
        assert OpClass.BRANCH not in PACKABLE_CLASSES

    def test_mem_sizes(self):
        assert MEM_SIZE[Opcode.LDQ] == 8
        assert MEM_SIZE[Opcode.LDL] == 4
        assert MEM_SIZE[Opcode.LDWU] == 2
        assert MEM_SIZE[Opcode.LDBU] == 1
        assert MEM_SIZE[Opcode.STQ] == 8
        assert MEM_SIZE[Opcode.STB] == 1

    def test_conditional_branches(self):
        assert Opcode.BEQ in CONDITIONAL_BRANCHES
        assert Opcode.BLBS in CONDITIONAL_BRANCHES
        assert Opcode.BR not in CONDITIONAL_BRANCHES
        assert Opcode.JMP not in CONDITIONAL_BRANCHES

    def test_call_ops(self):
        assert CALL_OPS == frozenset({Opcode.BSR, Opcode.JSR})

    def test_is_control(self):
        assert is_control(Opcode.BEQ)
        assert is_control(Opcode.RET)
        assert not is_control(Opcode.ADDQ)
        assert not is_control(Opcode.LDQ)
