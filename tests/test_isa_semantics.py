"""Unit and property tests for the functional semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import Opcode
from repro.isa.semantics import (
    MASK64,
    branch_taken,
    compute,
    mask64,
    sext,
    to_signed,
    to_unsigned,
)

u64 = st.integers(min_value=0, max_value=MASK64)


class TestConversions:
    def test_mask64(self):
        assert mask64(1 << 64) == 0
        assert mask64(-1) == MASK64

    def test_to_signed_positive(self):
        assert to_signed(5) == 5
        assert to_signed(2**63 - 1) == 2**63 - 1

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(2**63) == -(2**63)

    def test_to_unsigned(self):
        assert to_unsigned(-1) == MASK64
        assert to_unsigned(-2**63) == 2**63

    @given(u64)
    def test_signed_roundtrip(self, v):
        assert to_unsigned(to_signed(v)) == v

    def test_sext(self):
        assert sext(0xFF, 8) == MASK64           # -1 as a byte
        assert sext(0x7F, 8) == 0x7F
        assert sext(0x8000, 16) == to_unsigned(-32768)
        assert sext(0xFFFF_FFFF, 32) == MASK64


class TestArithmetic:
    def test_addq(self):
        assert compute(Opcode.ADDQ, 17, 2) == 19

    def test_addq_wraps(self):
        assert compute(Opcode.ADDQ, MASK64, 1) == 0

    def test_subq(self):
        assert compute(Opcode.SUBQ, 2, 3) == to_unsigned(-1)

    def test_addl_sign_extends(self):
        # 32-bit add whose result has bit 31 set sign-extends.
        assert compute(Opcode.ADDL, 0x7FFF_FFFF, 1) == to_unsigned(-2**31)

    def test_subl(self):
        assert compute(Opcode.SUBL, 0, 1) == MASK64

    def test_scaled_adds(self):
        assert compute(Opcode.S4ADDQ, 3, 100) == 112
        assert compute(Opcode.S8ADDQ, 3, 100) == 124

    def test_lda_is_add(self):
        assert compute(Opcode.LDA, 1000, to_unsigned(-8)) == 992

    def test_ldah_shifts_displacement(self):
        assert compute(Opcode.LDAH, 0, 1) == 65536
        assert compute(Opcode.LDAH, 4, 2) == 0x20004

    def test_compares_signed(self):
        minus_one = to_unsigned(-1)
        assert compute(Opcode.CMPLT, minus_one, 0) == 1
        assert compute(Opcode.CMPLT, 0, minus_one) == 0
        assert compute(Opcode.CMPLE, 5, 5) == 1
        assert compute(Opcode.CMPEQ, 5, 5) == 1
        assert compute(Opcode.CMPEQ, 5, 6) == 0

    def test_compares_unsigned(self):
        minus_one = to_unsigned(-1)
        assert compute(Opcode.CMPULT, minus_one, 0) == 0   # huge unsigned
        assert compute(Opcode.CMPULT, 0, minus_one) == 1
        assert compute(Opcode.CMPULE, 7, 7) == 1

    @given(u64, u64)
    def test_addq_matches_modular_arithmetic(self, a, b):
        assert compute(Opcode.ADDQ, a, b) == (a + b) % 2**64

    @given(u64, u64)
    def test_subq_matches_modular_arithmetic(self, a, b):
        assert compute(Opcode.SUBQ, a, b) == (a - b) % 2**64

    @given(u64, u64)
    def test_add_sub_inverse(self, a, b):
        assert compute(Opcode.SUBQ, compute(Opcode.ADDQ, a, b), b) == a


class TestMultiply:
    def test_mulq(self):
        assert compute(Opcode.MULQ, 7, 6) == 42

    def test_mulq_low_bits(self):
        assert compute(Opcode.MULQ, 2**40, 2**40) == (2**80) % 2**64

    def test_mull_sign_extends(self):
        assert compute(Opcode.MULL, 0x10000, 0x8000) == to_unsigned(-2**31)

    @given(u64, u64)
    def test_mulq_matches_modular(self, a, b):
        assert compute(Opcode.MULQ, a, b) == (a * b) % 2**64


class TestLogic:
    def test_basic_logic(self):
        assert compute(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert compute(Opcode.BIS, 0b1100, 0b1010) == 0b1110
        assert compute(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_negated_forms(self):
        assert compute(Opcode.BIC, 0b1111, 0b0101) == 0b1010
        assert compute(Opcode.ORNOT, 0, 0) == MASK64
        assert compute(Opcode.EQV, 5, 5) == MASK64

    def test_cmov(self):
        assert compute(Opcode.CMOVEQ, 0, 7, old_dest=3) == 7
        assert compute(Opcode.CMOVEQ, 1, 7, old_dest=3) == 3
        assert compute(Opcode.CMOVNE, 1, 7, old_dest=3) == 7
        assert compute(Opcode.CMOVNE, 0, 7, old_dest=3) == 3

    def test_zapnot(self):
        value = 0x1122334455667788
        assert compute(Opcode.ZAPNOT, value, 0x01) == 0x88
        assert compute(Opcode.ZAPNOT, value, 0x03) == 0x7788
        assert compute(Opcode.ZAPNOT, value, 0xFF) == value

    @given(u64, u64)
    def test_demorgan(self, a, b):
        land = compute(Opcode.AND, a, b)
        lor_not = compute(Opcode.ORNOT, a ^ MASK64, b)
        assert land ^ MASK64 == lor_not


class TestShifts:
    def test_sll(self):
        assert compute(Opcode.SLL, 1, 4) == 16

    def test_sll_uses_low_six_bits(self):
        assert compute(Opcode.SLL, 1, 64) == 1     # shift count mod 64

    def test_srl_logical(self):
        assert compute(Opcode.SRL, MASK64, 60) == 0xF

    def test_sra_arithmetic(self):
        assert compute(Opcode.SRA, to_unsigned(-16), 2) == to_unsigned(-4)
        assert compute(Opcode.SRA, 16, 2) == 4

    def test_extbl(self):
        value = 0x1122334455667788
        assert compute(Opcode.EXTBL, value, 0) == 0x88
        assert compute(Opcode.EXTBL, value, 7) == 0x11

    def test_extwl(self):
        value = 0x1122334455667788
        assert compute(Opcode.EXTWL, value, 0) == 0x7788
        assert compute(Opcode.EXTWL, value, 2) == 0x5566

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_srl_then_sll_clears_low_bits(self, v, n):
        down_up = compute(Opcode.SLL, compute(Opcode.SRL, v, n), n)
        assert down_up == (v >> n) << n & MASK64


class TestBranches:
    def test_zero_conditions(self):
        assert branch_taken(Opcode.BEQ, 0)
        assert not branch_taken(Opcode.BEQ, 1)
        assert branch_taken(Opcode.BNE, 1)
        assert not branch_taken(Opcode.BNE, 0)

    def test_sign_conditions(self):
        minus = to_unsigned(-5)
        assert branch_taken(Opcode.BLT, minus)
        assert not branch_taken(Opcode.BLT, 0)
        assert branch_taken(Opcode.BLE, 0)
        assert branch_taken(Opcode.BGT, 5)
        assert not branch_taken(Opcode.BGT, minus)
        assert branch_taken(Opcode.BGE, 0)

    def test_low_bit_conditions(self):
        assert branch_taken(Opcode.BLBS, 3)
        assert branch_taken(Opcode.BLBC, 2)
        assert not branch_taken(Opcode.BLBS, 2)

    @given(u64)
    def test_blt_bge_partition(self, v):
        assert branch_taken(Opcode.BLT, v) != branch_taken(Opcode.BGE, v)

    @given(u64)
    def test_beq_bne_partition(self, v):
        assert branch_taken(Opcode.BEQ, v) != branch_taken(Opcode.BNE, v)


class TestErrors:
    def test_compute_rejects_control(self):
        with pytest.raises(ValueError):
            compute(Opcode.BEQ, 0, 0)

    def test_compute_rejects_memory(self):
        with pytest.raises(ValueError):
            compute(Opcode.LDQ, 0, 0)

    def test_branch_taken_rejects_non_branch(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADDQ, 0)
