"""Unit tests for caches, TLBs, and the Table 1 memory hierarchy."""

from repro.memory.cache import Cache, PerfectCache
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.tlb import TLB


class TestCache:
    def make(self, size=1024, assoc=2, block=32):
        return Cache("test", size, assoc, block)

    def test_geometry(self):
        cache = self.make()
        assert cache.num_sets == 1024 // (2 * 32)

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)        # same 32B block
        assert not cache.access(32)    # next block

    def test_miss_counting(self):
        cache = self.make()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == 2 / 3

    def test_lru_within_set(self):
        cache = self.make(size=128, assoc=2, block=32)  # 2 sets
        set_stride = 2 * 32                             # same set
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)        # a is MRU
        cache.access(c)        # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_writeback_counted_on_dirty_eviction(self):
        cache = self.make(size=64, assoc=1, block=32)   # 2 sets, direct
        cache.access(0, is_write=True)                  # dirty line
        cache.access(64)                                # evicts it
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = self.make(size=64, assoc=1, block=32)
        cache.access(0)
        cache.access(64)
        assert cache.stats.writebacks == 0

    def test_probe_does_not_touch_stats(self):
        cache = self.make()
        cache.probe(0)
        assert cache.stats.accesses == 0

    def test_flush(self):
        cache = self.make()
        cache.access(0)
        cache.flush()
        assert not cache.probe(0)

    def test_capacity_thrash(self):
        # Cyclic access to more lines than fit misses every time (LRU).
        cache = self.make(size=128, assoc=2, block=32)  # 4 lines total
        lines = [i * 32 for i in range(8)]
        for _ in range(3):
            for addr in lines:
                cache.access(addr)
        assert cache.stats.misses == cache.stats.accesses

    def test_perfect_cache_always_hits(self):
        cache = PerfectCache()
        assert cache.access(12345)
        assert cache.stats.misses == 0


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB("t", entries=4)
        assert tlb.access(0) == 30
        assert tlb.access(100) == 0     # same page

    def test_capacity_lru(self):
        tlb = TLB("t", entries=2, page_bytes=4096)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(0 * 4096)            # refresh page 0
        tlb.access(2 * 4096)            # evicts page 1
        assert tlb.access(0 * 4096) == 0
        assert tlb.access(1 * 4096) == 30

    def test_miss_latency_configurable(self):
        tlb = TLB("t", entries=2, miss_latency=99)
        assert tlb.access(0) == 99


class TestHierarchy:
    def test_table1_latencies(self):
        h = MemoryHierarchy(HierarchyConfig())
        addr = 0x1_0000_0000
        # Cold: L1 miss, L2 miss -> memory; TLB miss adds 30.
        assert h.access_data(addr) == 12 + 100 + 30
        # Warm: L1 hit, TLB hit.
        assert h.access_data(addr) == 1

    def test_l2_hit_latency(self):
        h = MemoryHierarchy(HierarchyConfig(l1d_size=64, l1d_assoc=1))
        a, b = 0, 4096 * 64   # same tiny-L1 set, different pages
        h.access_data(a)
        h.access_data(b)      # evicts a from the tiny L1; L2 keeps it
        latency = h.access_data(a)
        assert latency == 12  # L1 miss, L2 hit, TLB hit

    def test_instruction_path(self):
        h = MemoryHierarchy(HierarchyConfig())
        cold = h.fetch_instruction(0x1_0000)
        warm = h.fetch_instruction(0x1_0000)
        assert cold == 12 + 100 + 30
        assert warm == 1

    def test_perfect_hierarchy(self):
        h = MemoryHierarchy(HierarchyConfig(perfect=True))
        assert h.access_data(0xABCDEF) == 1
        assert h.fetch_instruction(0x1234) == 1

    def test_flush(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.access_data(0)
        h.flush()
        assert h.access_data(0) == 12 + 100 + 30

    def test_unified_l2_shared_by_code_and_data(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.fetch_instruction(0x8000)          # brings block into L2
        # Data access to the same block: L1D misses but L2 hits.
        assert h.access_data(0x8000) == 12 + 30
