"""Tests for the fault-tolerant run engine.

Each scenario from the issue gets a test: a worker that raises, a
worker that hangs past the timeout, a pool that dies mid-suite, and a
cache directory with garbage/truncated JSON — asserting in every case
that the surviving jobs' counters are bit-exact against a clean run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BASELINE
from repro.exec import (
    GLOBAL_STATS,
    Job,
    ResultCache,
    RunContext,
    RunEngine,
    clear_memo,
)
from repro.robust.report import FAILED, OK, TIMED_OUT, RunReport, SuiteFailure
from repro.robust.retry import RetryPolicy, jitter_fraction

JOB_A = Job("g721-encode", BASELINE, 1)
JOB_B = Job("gsm-decode", BASELINE, 1)


def counters(result) -> tuple:
    return (result.stats.as_dict(), result.widths.as_dict())


@pytest.fixture()
def clean_slate():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture(scope="module")
def clean_results():
    """Reference counters from an undisturbed serial run."""
    clear_memo()
    results = RunEngine(RunContext(use_cache=False)).run_jobs(
        [JOB_A, JOB_B])
    clear_memo()
    return {key: counters(result) for key, result in results.items()}


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, backoff=0.1, backoff_cap=1.0)
        delays = [policy.delay("job-x", n) for n in (1, 2, 3)]
        assert delays == [policy.delay("job-x", n) for n in (1, 2, 3)]
        assert all(0 < d <= 1.0 for d in delays)
        # different jobs de-synchronize
        assert policy.delay("job-x", 1) != policy.delay("job-y", 1)

    def test_jitter_is_a_pure_function(self):
        assert jitter_fraction("k", 1) == jitter_fraction("k", 1)
        assert 0.0 <= jitter_fraction("k", 1) < 1.0
        assert jitter_fraction("k", 1) != jitter_fraction("k", 2)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)


class TestRaisingWorker:
    def test_transient_crash_retries_to_success(self, tmp_path,
                                                clean_slate,
                                                clean_results):
        sentinel = tmp_path / "crash.once"
        ctx = RunContext(use_cache=False, jobs=2, retries=2, backoff=0.01,
                         faults={JOB_A.workload: f"crash:{sentinel}"})
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A, JOB_B])
        assert report.ok
        outcome = report.outcome_of(JOB_A)
        assert outcome.retried and outcome.attempts == 2
        assert engine.stats.job_retries == 1
        for key, result in results.items():
            assert counters(result) == clean_results[key]

    def test_persistent_crash_fails_job_but_survivors_complete(
            self, clean_slate, clean_results):
        ctx = RunContext(use_cache=False, jobs=2, retries=1, backoff=0.01,
                         faults={JOB_A.workload: "crash"})
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A, JOB_B])
        assert not report.ok
        outcome = report.outcome_of(JOB_A)
        assert outcome.status == FAILED
        assert outcome.attempts == 2      # first try + one retry
        assert "InjectedWorkerError" in outcome.error
        assert engine.stats.jobs_failed == 1
        # the survivor is present and bit-exact
        assert counters(results[JOB_B.key]) == clean_results[JOB_B.key]
        assert JOB_A.key not in results

    def test_run_jobs_raises_typed_suite_failure(self, clean_slate):
        ctx = RunContext(use_cache=False, jobs=2, retries=0,
                         faults={JOB_A.workload: "crash"})
        with pytest.raises(SuiteFailure) as excinfo:
            RunEngine(ctx).run_jobs([JOB_A, JOB_B])
        report = excinfo.value.report
        assert [o.job.key for o in report.failed] == [JOB_A.key]
        assert JOB_A.workload in str(excinfo.value)

    def test_failed_job_is_remembered_not_resimulated(self, clean_slate):
        ctx = RunContext(use_cache=False, jobs=2, retries=0,
                         faults={JOB_A.workload: "crash"})
        RunEngine(ctx).run_jobs_report([JOB_A])
        fresh_before = GLOBAL_STATS.fresh_runs
        # a render-phase re-request must not re-simulate (or crash)
        _, report = RunEngine(RunContext(use_cache=False)).run_jobs_report(
            [JOB_A])
        assert GLOBAL_STATS.fresh_runs == fresh_before
        outcome = report.outcome_of(JOB_A)
        assert not outcome.ok and outcome.attempts == 0
        assert "failed earlier this process" in outcome.error


class TestHungWorker:
    def test_hang_times_out_and_survivor_completes(self, tmp_path,
                                                   clean_slate,
                                                   clean_results):
        ctx = RunContext(use_cache=False, jobs=2, retries=0, timeout=15.0,
                         faults={JOB_A.workload: "hang"})
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A, JOB_B])
        assert not report.ok
        outcome = report.outcome_of(JOB_A)
        assert outcome.status == TIMED_OUT
        assert "15.0s" in outcome.error
        assert engine.stats.jobs_timed_out == 1
        assert counters(results[JOB_B.key]) == clean_results[JOB_B.key]

    def test_transient_hang_recovers_on_retry(self, tmp_path,
                                              clean_slate,
                                              clean_results):
        sentinel = tmp_path / "hang.once"
        ctx = RunContext(use_cache=False, jobs=2, retries=1, timeout=15.0,
                         backoff=0.01,
                         faults={JOB_A.workload: f"hang:{sentinel}"})
        results, report = RunEngine(ctx).run_jobs_report([JOB_A, JOB_B])
        assert report.ok
        assert report.outcome_of(JOB_A).retried
        for key, result in results.items():
            assert counters(result) == clean_results[key]


class TestDeadPool:
    def test_pool_death_requeues_and_recovers(self, tmp_path, clean_slate,
                                              clean_results):
        # One worker calls os._exit mid-suite: BrokenProcessPool breaks
        # every pending future.  The engine must rebuild, requeue, and
        # still produce every result bit-exact.
        sentinel = tmp_path / "die.once"
        ctx = RunContext(use_cache=False, jobs=2, retries=2, backoff=0.01,
                         faults={JOB_A.workload: f"die:{sentinel}"})
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A, JOB_B])
        assert report.ok
        assert set(results) == {JOB_A.key, JOB_B.key}
        for key, result in results.items():
            assert counters(result) == clean_results[key]

    def test_reliably_dying_job_exhausts_only_itself(self, clean_slate,
                                                     clean_results):
        ctx = RunContext(use_cache=False, jobs=2, retries=1, backoff=0.01,
                         faults={JOB_A.workload: "die"})
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A, JOB_B])
        assert not report.ok
        assert not report.outcome_of(JOB_A).ok
        # the innocent pool-mate was never charged and completed
        outcome_b = report.outcome_of(JOB_B)
        assert outcome_b.ok
        assert counters(results[JOB_B.key]) == clean_results[JOB_B.key]


class TestCorruptCache:
    def _seed_cache(self, tmp_path):
        ctx = RunContext(cache_dir=tmp_path, jobs=1)
        RunEngine(ctx).run_jobs([JOB_A])
        clear_memo()
        cache = ResultCache(tmp_path)
        [path] = cache.entries()
        return ctx, cache, path

    def test_garbage_json_is_quarantined_with_reason(self, tmp_path,
                                                     clean_slate,
                                                     clean_results):
        ctx, cache, path = self._seed_cache(tmp_path)
        path.write_text("garbage{", encoding="utf-8")
        engine = RunEngine(ctx)
        results, report = engine.run_jobs_report([JOB_A])
        assert report.ok
        assert counters(results[JOB_A.key]) == clean_results[JOB_A.key]
        assert engine.stats.cache_quarantined == 1
        [bad] = cache.quarantined()
        assert bad.name == path.name
        reason = json.loads(
            (bad.parent / f"{bad.name}.reason.json").read_text())
        assert reason["reason"] == "entry is not valid JSON"
        # the entry was re-stored and now round-trips
        assert cache.load(JOB_A) is not None

    def test_truncated_entry_is_quarantined(self, tmp_path, clean_slate,
                                            clean_results):
        ctx, cache, path = self._seed_cache(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        engine = RunEngine(ctx)
        results, _ = engine.run_jobs_report([JOB_A])
        assert counters(results[JOB_A.key]) == clean_results[JOB_A.key]
        assert engine.stats.cache_quarantined == 1

    def test_bitflip_inside_counters_is_caught_by_integrity(
            self, tmp_path, clean_slate, clean_results):
        # A flipped bit inside a JSON digit still parses: only the
        # integrity digest can catch it.
        ctx, cache, path = self._seed_cache(tmp_path)
        entry = json.loads(path.read_text())
        entry["result"]["stats"]["committed"] += 1
        path.write_text(json.dumps(entry, sort_keys=True))
        engine = RunEngine(ctx)
        results, _ = engine.run_jobs_report([JOB_A])
        assert engine.stats.cache_quarantined == 1
        assert counters(results[JOB_A.key]) == clean_results[JOB_A.key]

    def test_stale_schema_is_a_plain_miss_not_quarantine(self, tmp_path,
                                                         clean_slate):
        ctx, cache, path = self._seed_cache(tmp_path)
        entry = json.loads(path.read_text())
        entry["schema"] = "repro-exec/1"
        path.write_text(json.dumps(entry, sort_keys=True))
        engine = RunEngine(ctx)
        engine.run_jobs_report([JOB_A])
        assert engine.stats.cache_quarantined == 0
        assert cache.quarantined() == []


class TestRunReport:
    def test_banner_and_summary_table(self):
        from repro.robust.report import JobOutcome
        report = RunReport()
        report.add(JobOutcome(JOB_A, status=OK, attempts=1))
        assert report.banner() is None
        report.add(JobOutcome(JOB_B, status=FAILED, attempts=3,
                              error="RuntimeError: boom"))
        banner = report.banner()
        assert "1 job(s) failed" in banner
        table = report.summary_table()
        assert JOB_B.workload in table and "boom" in table
        assert report.counts() == {"jobs": 2, "succeeded": 1,
                                   "retried": 0, "timed_out": 0,
                                   "failed": 1}


class TestRunnerDegradation:
    def test_runner_exits_nonzero_with_summary(self, capsys, monkeypatch,
                                               clean_slate):
        from repro.experiments import fig1_cumulative_widths as fig1
        from repro.experiments.runner import main
        monkeypatch.setattr(fig1, "spec_names",
                            lambda: (JOB_A.workload,))
        code = main(["fig1", "--no-cache", "--jobs", "2",
                     "--retries", "0",
                     "--inject-fault", f"{JOB_A.workload}=crash"])
        captured = capsys.readouterr()
        assert code == 1
        # Degradation is progress/diagnostics: all of it on stderr,
        # stdout reserved for rendered tables and figures.
        assert "job(s) failed after retries" in captured.err
        assert "NOT rendered" in captured.err
        assert JOB_A.workload in captured.err    # failure summary table

    def test_runner_rejects_bad_fault_spec(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig1", "--inject-fault", "nonsense"])
        assert "WORKLOAD=TOKEN" in capsys.readouterr().err
