"""Tests for the thermal-management extension (paper Section 5's
'switch between the two techniques on thermal sensory data')."""

import pytest

from repro.core.config import BASELINE
from repro.power.thermal import (
    Mode,
    ThermalConfig,
    ThermalController,
    ThermalModel,
    run_managed,
)


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = ThermalModel()
        assert model.temperature_c == ThermalConfig().ambient_c

    def test_heats_toward_steady_state(self):
        config = ThermalConfig(ambient_c=40, resistance_c_per_mw=0.1,
                               alpha=0.5)
        model = ThermalModel(config)
        steady = 40 + 500 * 0.1        # 90 C at 500 mW
        for _ in range(100):
            model.step(500.0)
        assert model.temperature_c == pytest.approx(steady, abs=0.5)

    def test_cools_to_ambient_at_zero_power(self):
        model = ThermalModel(ThermalConfig(alpha=0.5))
        for _ in range(20):
            model.step(1000.0)
        hot = model.temperature_c
        for _ in range(200):
            model.step(0.0)
        assert model.temperature_c < hot
        assert model.temperature_c == pytest.approx(
            ThermalConfig().ambient_c, abs=0.5)

    def test_monotone_heating(self):
        model = ThermalModel()
        last = model.temperature_c
        for _ in range(50):
            now = model.step(800.0)
            assert now >= last
            last = now


class TestController:
    def make(self):
        return ThermalController(ThermalConfig(
            ambient_c=45, resistance_c_per_mw=0.1, alpha=0.5,
            hot_c=70, cool_c=60))

    def test_starts_in_packing_mode(self):
        assert self.make().mode is Mode.PACKING

    def test_switches_to_gating_when_hot(self):
        controller = self.make()
        for _ in range(50):
            controller.observe(600.0)      # steady state 105 C
        assert controller.mode is Mode.GATING
        assert controller.stats.switches >= 1

    def test_returns_to_packing_when_cool(self):
        controller = self.make()
        for _ in range(50):
            controller.observe(600.0)
        for _ in range(100):
            controller.observe(50.0)       # steady state 50 C
        assert controller.mode is Mode.PACKING

    def test_hysteresis_no_thrash_in_band(self):
        controller = self.make()
        # Power whose steady state (65 C) sits inside the band.
        for _ in range(200):
            controller.observe(200.0)
        assert controller.stats.switches == 0
        assert controller.mode is Mode.PACKING

    def test_stats_account_every_interval(self):
        controller = self.make()
        for _ in range(30):
            controller.observe(100.0)
        stats = controller.stats
        assert stats.intervals == 30
        assert stats.packing_intervals + stats.gating_intervals == 30
        assert 0.0 <= stats.packing_fraction <= 1.0
        assert stats.max_temperature_c >= ThermalConfig().ambient_c


class TestManagedRun:
    @pytest.fixture(scope="class")
    def program(self):
        from repro.workloads.registry import get_workload
        return get_workload("gsm-encode").build()

    def test_hot_limits_force_gating_intervals(self, program):
        # Thresholds low enough that any activity overheats.
        hot = ThermalConfig(hot_c=50.0, cool_c=48.0, alpha=0.5,
                            interval_cycles=64)
        result = run_managed(program, BASELINE, hot, max_insts=8000)
        assert result.stats.gating_intervals > 0
        assert result.stats.max_temperature_c > 50.0

    def test_cool_package_stays_in_packing(self, program):
        cold = ThermalConfig(hot_c=10_000.0, cool_c=9_000.0,
                             interval_cycles=64)
        result = run_managed(program, BASELINE, cold, max_insts=8000)
        assert result.stats.gating_intervals == 0
        assert result.stats.packing_fraction == 1.0

    def test_managed_run_completes_and_reports(self, program):
        result = run_managed(program, BASELINE, max_insts=6000)
        assert result.committed >= 6000
        assert result.cycles > 0
        assert 0 < result.ipc <= 4.0
        assert result.mean_power_mw > 0
