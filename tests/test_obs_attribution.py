"""Stall-attribution tests: the slot-conservation law on workloads
with packing, replay traps, mispredictions, and structural hazards."""

from dataclasses import replace

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.memory.hierarchy import HierarchyConfig
from repro.obs.attribution import STALL_KINDS, StallAttribution

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def narrow_ilp_program(n=60) -> Assembler:
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.op("addq", "t2", "t2", 3)
    asm.op("addq", "t3", "t3", 4)
    asm.op("addq", "t4", "t4", 5)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def replay_trap_program(iters=300) -> Assembler:
    """Wide pointer adds near a 16-bit carry edge: replay packing
    speculates and must trap at least once (cf. test_packing)."""
    asm = Assembler("replay")
    standard_prologue(asm)
    buf = asm.alloc("buf", 8 * 4096)
    asm.li("s0", buf + 0xFFF8)
    asm.clr("s2")
    asm.li("s1", iters)
    asm.label("loop")
    asm.op("addq", "s2", "s2", 1)
    asm.op("addq", "s0", "s0", 8)
    asm.op("subq", "s1", "s1", 1)
    asm.br("bne", "s1", "loop")
    asm.halt()
    return asm


def serial_chain_program(n=100) -> Assembler:
    """A pure dependence chain: almost every slot stalls on deps."""
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.label("loop")
    asm.op("addq", "s1", "s1", 1)
    asm.op("addq", "s1", "s1", 1)
    asm.op("addq", "s1", "s1", 1)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def mult_pressure_program(n=80) -> Assembler:
    """Independent multiplies against one multiplier: structural
    stalls on the INT_MULT unit."""
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.li("t5", 3)
    asm.label("loop")
    asm.op("mulq", "t0", "t5", 5)
    asm.op("mulq", "t1", "t5", 7)
    asm.op("mulq", "t2", "t5", 9)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def attributed_run(asm: Assembler, config=FAST) -> Machine:
    machine = Machine(asm.assemble(), config)
    machine.enable_stall_attribution()
    machine.run()
    assert machine.done
    return machine


def assert_conserved(machine: Machine) -> StallAttribution:
    attribution = machine.attribution
    assert attribution.check()
    assert attribution.cycles == machine.stats.cycles
    assert (attribution.total_slots
            == machine.config.issue_width * machine.stats.cycles)
    return attribution


class TestSlotConservation:
    def test_conservation_with_packing_enabled(self):
        machine = attributed_run(narrow_ilp_program(),
                                 FAST.with_packing())
        assert machine.stats.pack_groups > 0
        assert_conserved(machine)

    def test_conservation_with_replay_traps_firing(self):
        machine = attributed_run(replay_trap_program(),
                                 FAST.with_packing(replay=True))
        assert machine.stats.replay_traps >= 1
        assert_conserved(machine)

    def test_conservation_on_realistic_hierarchy(self):
        machine = attributed_run(narrow_ilp_program(), BASELINE)
        assert_conserved(machine)

    def test_packed_joins_do_not_leak_slots(self):
        # Packed followers issue without consuming a slot; the used
        # counter must still never exceed the supply.
        machine = attributed_run(narrow_ilp_program(),
                                 FAST.with_packing())
        attribution = machine.attribution
        assert machine.stats.issued > attribution.used
        assert attribution.used <= (machine.config.issue_width
                                    * attribution.cycles)


class TestClassification:
    def test_deps_dominate_a_serial_chain(self):
        attribution = assert_conserved(
            attributed_run(serial_chain_program()))
        fractions = attribution.fractions()
        assert fractions["deps"] > fractions["frontend"]
        assert fractions["deps"] > 0.3

    def test_structural_mult_stalls_counted(self):
        attribution = assert_conserved(
            attributed_run(mult_pressure_program()))
        assert attribution.structural_mult > 0

    def test_recovery_slots_after_mispredicts(self):
        # The wide loop drains fast, so the loop-exit mispredict leaves
        # an empty window during the redirect: recovery slots appear.
        # (A serial chain instead keeps unready work in the window, and
        # those same cycles correctly classify as deps.)
        machine = attributed_run(narrow_ilp_program())
        assert machine.stats.mispredicts > 0
        attribution = assert_conserved(machine)
        assert attribution.recovery > 0

    def test_frontend_covers_an_empty_window(self):
        # With an I-cache that cold-misses, the window drains while
        # fetch waits on fills: frontend slots must appear.
        attribution = assert_conserved(
            attributed_run(narrow_ilp_program(), BASELINE))
        assert attribution.frontend > 0


class TestReporting:
    def test_cpi_breakdown_sums_to_cpi(self):
        machine = attributed_run(narrow_ilp_program())
        attribution = machine.attribution
        breakdown = attribution.cpi_breakdown(machine.stats.committed)
        cpi = machine.stats.cycles / machine.stats.committed
        assert abs(sum(breakdown.values()) - cpi) < 1e-9
        assert set(breakdown) == {"used", *STALL_KINDS}

    def test_as_dict_is_checked_and_complete(self):
        machine = attributed_run(narrow_ilp_program())
        record = machine.attribution.as_dict()
        assert record["slots_total"] == (record["issue_width"]
                                         * record["cycles"])
        for kind in STALL_KINDS:
            assert kind in record

    def test_check_raises_on_leaked_slots(self):
        broken = StallAttribution(issue_width=4, cycles=10, used=39)
        try:
            broken.check()
        except AssertionError:
            pass
        else:
            raise AssertionError("check() accepted a leaky breakdown")

    def test_enable_is_idempotent(self):
        machine = Machine(narrow_ilp_program().assemble(), FAST)
        first = machine.enable_stall_attribution()
        assert machine.enable_stall_attribution() is first
