"""Backward liveness fixpoint: hand-built CFG cases, soundness against
a dynamic def-use trace, and monotonicity — on random programs via
hypothesis.

The soundness property is the one every L006 verdict rests on: if the
fixpoint says a register is *not* live after a write, then no dynamic
execution reads that value before it is overwritten.  The dynamic side
is checked with the pure functional feed, which records every
register read/write in program order.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import LivenessAnalysis, analyze_liveness
from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.feed import Feed
from repro.isa.registers import REG_INDEX

_WORK_REGS = ("t0", "t1", "t2", "t3", "s1", "s2", "v0")
_OPERATES = ("addq", "subq", "and", "bis", "xor", "sll", "srl",
             "cmpeq", "cmplt", "mull")


# ------------------------------------------------------------- hand cases

def test_straight_line_use_defs():
    asm = Assembler("t")
    asm.op("addq", "t0", "t1", 1)      # reads t1, writes t0
    asm.op("addq", "t2", "t0", "t3")   # reads t0 (defined), t3
    asm.halt()
    use, defs = LivenessAnalysis.block_use_defs(asm.assemble(), 0, 2)
    assert REG_INDEX["t1"] in use and REG_INDEX["t3"] in use
    assert REG_INDEX["t0"] not in use          # defined before the read
    assert {REG_INDEX["t0"], REG_INDEX["t2"]} <= defs


def test_live_through_branch_join():
    # t0 is written before the diamond and read after it on one arm
    # only — it must be live-out of the entry block.
    asm = Assembler("t")
    asm.op("addq", "t0", "zero", 7)
    asm.br("beq", "t1", "skip")
    asm.op("addq", "t2", "t0", 1)      # reads t0 on the fall-through arm
    asm.label("skip")
    asm.halt()
    lv = analyze_liveness(asm.assemble())
    entry = lv.blocks[0]
    assert REG_INDEX["t0"] in entry.live_out


def test_dead_write_detected_and_rewrites_kill():
    asm = Assembler("t")
    asm.op("addq", "t0", "zero", 1)    # dead: rewritten before any read
    asm.op("addq", "t0", "zero", 2)
    asm.op("addq", "t1", "t0", 0)      # live read of the second write
    asm.halt()
    dead = analyze_liveness(asm.assemble()).dead_writes()
    assert 0 in dead
    assert 1 not in dead


def test_loop_detection():
    asm = Assembler("t")
    asm.op("addq", "s1", "zero", 8)
    asm.label("head")
    asm.op("subq", "s1", "s1", 1)
    asm.br("bne", "s1", "head")
    asm.halt()
    lv = analyze_liveness(asm.assemble())
    assert lv.loops, "the back edge must form a natural loop"
    assert lv.loop_blocks
    # The loop-carried counter is live around the back edge.
    head = min(lv.loops)
    assert REG_INDEX["s1"] in lv.blocks[head].live_in


# ------------------------------------------------------ random programs

op_strategy = st.tuples(
    st.sampled_from(_OPERATES),
    st.sampled_from(_WORK_REGS),
    st.sampled_from(_WORK_REGS),
    st.one_of(st.sampled_from(_WORK_REGS),
              st.integers(min_value=0, max_value=255)),
)


def _build(ops, seeds, branch_at=None):
    asm = Assembler("rand")
    standard_prologue(asm)
    for reg, seed in zip(_WORK_REGS, seeds):
        asm.li(reg, seed)
    for i, (mnem, rd, ra, rb) in enumerate(ops):
        if branch_at is not None and i == branch_at:
            asm.br("beq", rd, "join")
        asm.op(mnem, rd, ra, rb)
    asm.label("join")
    asm.halt()
    return asm.assemble()


def _dynamic_read_before_overwrite(program):
    """Dynamic def-use facts from the functional feed: the set of
    (instruction index, register) writes whose value is read later
    (by any instruction) before being overwritten."""
    feed = Feed(program, BASELINE)
    feed.fast_mode = True       # architected path only, no wrong path
    last_writer: dict[int, int] = {}
    used: set[tuple[int, int]] = set()
    while True:
        dyn = feed.next()
        if dyn is None or dyn.inst.opcode.name == "HALT":
            break
        for reg in dyn.inst.src_regs():
            if reg in last_writer:
                used.add((last_writer[reg], reg))
        dest = dyn.inst.dest_reg()
        if dest is not None:
            last_writer[dest] = dyn.index
    return used


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=24),
       seeds=st.lists(st.integers(min_value=0, max_value=2**16),
                      min_size=len(_WORK_REGS), max_size=len(_WORK_REGS)),
       branch_at=st.one_of(st.none(),
                           st.integers(min_value=0, max_value=23)))
def test_dead_verdicts_sound_against_dynamic_trace(ops, seeds, branch_at):
    """No write the fixpoint calls dead is ever read back dynamically."""
    program = _build(ops, seeds, branch_at)
    dead = set(analyze_liveness(program).dead_writes())
    dynamic_used = _dynamic_read_before_overwrite(program)
    for index, reg in dynamic_used:
        assert index not in dead, (
            f"inst#{index} (writes r{reg}) was declared dead but its "
            f"value was dynamically read")


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=2, max_size=16),
       seeds=st.lists(st.integers(min_value=0, max_value=2**16),
                      min_size=len(_WORK_REGS), max_size=len(_WORK_REGS)))
def test_fixpoint_is_monotone_under_added_reads(ops, seeds):
    """Appending a read of every work register can only grow live
    sets — liveness is monotone in the use sets."""
    base = _build(ops, seeds)
    asm = Assembler("rand")
    standard_prologue(asm)
    for reg, seed in zip(_WORK_REGS, seeds):
        asm.li(reg, seed)
    for mnem, rd, ra, rb in ops:
        asm.op(mnem, rd, ra, rb)
    acc = _WORK_REGS[0]
    for reg in _WORK_REGS[1:]:
        asm.op("addq", acc, acc, reg)   # read them all at the end
    asm.label("join")
    asm.halt()
    extended = asm.assemble()

    lv_base = analyze_liveness(base)
    lv_ext = analyze_liveness(extended)
    # Same leaders up front (the programs share their prefix CFG until
    # the tail); compare the blocks both have.
    for lead, facts in lv_base.blocks.items():
        ext = lv_ext.blocks.get(lead)
        if ext is None or ext.defs != facts.defs:
            continue    # tail reshaped this block; not comparable
        assert facts.live_in <= ext.live_in
        assert facts.live_out <= ext.live_out


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, min_size=1, max_size=20),
       seeds=st.lists(st.integers(min_value=0, max_value=2**16),
                      min_size=len(_WORK_REGS), max_size=len(_WORK_REGS)))
def test_fixpoint_equations_hold_at_convergence(ops, seeds):
    """live_in = use | (live_out - defs) and live_out = U succ live_in
    at every reachable block (the definition of a fixpoint)."""
    lv = analyze_liveness(_build(ops, seeds))
    for lead, facts in lv.blocks.items():
        assert facts.live_in == facts.use | (facts.live_out - facts.defs)
        succs = [s for s in lv.cfg.blocks[lead].succs
                 if s in lv.blocks]
        expect = frozenset().union(
            *(lv.blocks[s].live_in for s in succs)) if succs \
            else frozenset()
        assert facts.live_out == expect
