"""Width-tag lattice monotonicity (paper Figure 3 hardware semantics).

The narrow-width detectors induce a lattice on values: narrower is
lower.  These properties pin down the direction every component agrees
on — widening a value (or an interval) can only move tags from narrow
toward wide, never the reverse.  The static analyzer's soundness
argument leans on exactly this: joins and widenings lose narrowness
monotonically, so a "provably narrow" verdict survives abstraction.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import intervals as iv
from repro.bitwidth.detect import effective_width, is_narrow
from repro.bitwidth.tags import tag_value
from repro.isa.semantics import to_signed, to_unsigned

signed_values = st.one_of(
    st.integers(min_value=-(1 << 17), max_value=1 << 17),
    st.integers(min_value=-(1 << 34), max_value=1 << 34),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
)
widths = st.integers(min_value=1, max_value=64)


@given(v=signed_values, w1=widths, w2=widths)
def test_is_narrow_monotone_in_width(v, w1, w2):
    """A value narrow at w is narrow at every wider cut."""
    lo, hi = sorted((w1, w2))
    pattern = to_unsigned(v)
    if is_narrow(pattern, lo):
        assert is_narrow(pattern, hi)


@given(v=signed_values, w=widths)
def test_is_narrow_agrees_with_effective_width(v, w):
    pattern = to_unsigned(v)
    assert is_narrow(pattern, w) == (effective_width(pattern) <= w)


@given(v=signed_values)
def test_tag_value_consistent_with_interval_fits(v):
    """The dynamic tag and the singleton interval answer identically —
    the bridge the differential oracle crosses."""
    tag = tag_value(to_unsigned(v))
    single = iv.const(v)
    assert tag.narrow16 == single.fits(16)
    assert tag.narrow33 == single.fits(33)


@given(a=signed_values, b=signed_values, w=st.sampled_from((16, 33)))
def test_interval_join_never_gains_narrowness(a, b, w):
    """Widening an operand's interval can only lose narrow verdicts:
    if the join fits w, both inputs fit w — so a wide input can never
    produce a narrow join (the analyzer analogue of 'widening a value
    never turns a wide tag narrow')."""
    ia, ib = iv.const(a), iv.const(b)
    joined = ia.join(ib)
    if joined.fits(w):
        assert ia.fits(w) and ib.fits(w)
    # Contrapositive, on the dynamic tags:
    if not tag_value(to_unsigned(a)).narrow16 and w == 16:
        assert not joined.fits(16)


@given(a=signed_values, b=signed_values, w=st.sampled_from((16, 33)))
def test_interval_widen_never_gains_narrowness(a, b, w):
    current = iv.const(a)
    widened = current.widen(current.join(iv.const(b)))
    if widened.fits(w):
        assert current.fits(w)


@given(a=signed_values, b=signed_values)
def test_bitwise_hull_width_bound(a, b):
    """The sign-extension hull argument: any bitwise combination of two
    values is narrow at the max of their effective widths."""
    wa = effective_width(to_unsigned(a))
    wb = effective_width(to_unsigned(b))
    w = max(wa, wb)
    for result in (a & b, a | b, a ^ b):
        assert is_narrow(to_unsigned(result), w), (
            f"{a} op {b} -> {result} not narrow at {w}")


@given(v=signed_values)
def test_width_bound_matches_effective_width_on_singletons(v):
    assert iv.const(v).width_bound() == effective_width(to_unsigned(v))
