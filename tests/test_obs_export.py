"""Export tests: JSONL round trips, the run manifest, the repro-obs
CLI, and the experiment runner's --obs-out integration."""

from dataclasses import replace

import pytest

from repro.asm.assembler import Assembler, standard_prologue
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.experiments import base as experiments_base
from repro.memory.hierarchy import HierarchyConfig
from repro.obs.cli import main as obs_main
from repro.obs.events import EventRecorder
from repro.obs.export import (
    build_manifest,
    manifest_records,
    read_jsonl,
    read_manifest,
    write_events_jsonl,
    write_jsonl,
    write_manifest,
    write_windows_jsonl,
)
from repro.obs.sampler import IntervalSampler, window_from_dict

FAST = replace(BASELINE, hierarchy=HierarchyConfig(perfect=True))


def work_program(n=120) -> Assembler:
    asm = Assembler()
    standard_prologue(asm)
    asm.li("s0", n)
    asm.label("loop")
    asm.op("addq", "t0", "t0", 1)
    asm.op("addq", "t1", "t1", 2)
    asm.op("subq", "s0", "s0", 1)
    asm.br("bne", "s0", "loop")
    asm.halt()
    return asm


def observed_run(config=FAST):
    machine = Machine(work_program().assemble(), config)
    recorder = EventRecorder()
    machine.subscribe(recorder)
    sampler = IntervalSampler(window=64)
    machine.add_probe(sampler)
    attribution = machine.enable_stall_attribution()
    result = machine.run()
    sampler.finish(machine)
    return machine, result, recorder, sampler, attribution


class TestJsonlRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [{"a": 1, "b": "two"}, {"a": 2, "b": None}]
        assert write_jsonl(path, records) == 2
        assert read_jsonl(path) == records

    def test_event_trace_round_trip(self, tmp_path):
        _, _, recorder, _, _ = observed_run()
        path = tmp_path / "events.jsonl"
        count = write_events_jsonl(path, recorder.events)
        assert count == len(recorder.events)
        records = read_jsonl(path)
        assert len(records) == count
        assert records[0]["kind"] == recorder.events[0].kind
        assert {r["kind"] for r in records} \
            == {e.kind for e in recorder.events}

    def test_window_series_round_trip(self, tmp_path):
        _, _, _, sampler, _ = observed_run()
        path = tmp_path / "windows.jsonl"
        write_windows_jsonl(path, sampler.windows)
        rebuilt = [window_from_dict(r) for r in read_jsonl(path)]
        assert rebuilt == sampler.windows


class TestManifest:
    def test_manifest_contents_and_invariants(self, tmp_path):
        machine, result, _, sampler, attribution = observed_run(
            FAST.with_packing())
        manifest = build_manifest(result, attribution=attribution,
                                  sampler=sampler, workload="unit",
                                  scale=1)
        attr = manifest["attribution"]
        assert (attr["slots_total"]
                == attr["issue_width"] * attr["cycles"]
                == machine.config.issue_width * machine.stats.cycles)
        windows = manifest["windows"]
        assert (sum(w["committed"] for w in windows)
                == manifest["stats"]["committed"])
        assert manifest["config"]["issue_width"] \
            == machine.config.issue_width
        assert manifest["config"]["packing"]["enabled"] is True
        assert manifest["power"]["gated_mw"] > 0

    def test_manifest_files_round_trip(self, tmp_path):
        _, result, _, sampler, attribution = observed_run()
        manifest = build_manifest(result, attribution=attribution,
                                  sampler=sampler)
        paths = write_manifest(tmp_path, manifest, stem="run")
        assert read_manifest(paths["json"]) == manifest
        records = read_jsonl(paths["jsonl"])
        kinds = [r["record"] for r in records]
        assert kinds[0] == "run"
        assert kinds.count("window") == len(sampler.windows)
        assert set(list(manifest_records(manifest))[0]) == set(records[0])

    def test_manifest_without_obs_layers(self):
        machine = Machine(work_program().assemble(), FAST)
        result = machine.run()
        manifest = build_manifest(result)
        assert manifest["attribution"] is None
        assert manifest["windows"] is None
        assert manifest["stats"]["committed"] == machine.stats.committed


class TestCli:
    def test_repro_obs_on_go_with_packing(self, tmp_path, capsys):
        """The acceptance scenario: repro-obs on the go workload with
        packing leaves a manifest whose stall slots conserve exactly
        and whose windows sum to the committed count."""
        out = tmp_path / "go"
        code = obs_main(["go", "--packing", "--events",
                         "--window", "1000", "--out", str(out)])
        assert code == 0
        manifest = read_manifest(out / "manifest.json")
        stats = manifest["stats"]
        attr = manifest["attribution"]
        assert attr["slots_total"] == attr["issue_width"] * attr["cycles"]
        assert attr["cycles"] == stats["cycles"]
        assert (sum(w["committed"] for w in manifest["windows"])
                == stats["committed"])
        assert manifest["config"]["packing"]["enabled"] is True
        assert stats["packed_ops"] > 0
        events = read_jsonl(out / "events.jsonl")
        assert sum(1 for e in events if e["kind"] == "commit") \
            == stats["committed"]
        assert (out / "windows.jsonl").exists()
        assert (out / "manifest.jsonl").exists()
        captured = capsys.readouterr()
        # Stream contract: human summary on stderr, artifact paths on
        # stdout (machine-parseable).
        assert "slot conservation" in captured.err
        assert "slot conservation" not in captured.out
        assert "wrote " in captured.out

    def test_cli_list_workloads(self, capsys):
        assert obs_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "go" in out and "gsm-encode" in out


class TestRunnerObsDir:
    def test_run_workload_leaves_manifest(self, tmp_path):
        from repro.exec import RunContext
        result = experiments_base.run_workload(
            "go", BASELINE.with_packing(), use_cache=False,
            ctx=RunContext(obs_dir=tmp_path))
        manifests = list(tmp_path.glob("go-*.json"))
        assert len(manifests) == 1
        manifest = read_manifest(manifests[0])
        assert manifest["stats"]["committed"] == result.stats.committed
        attr = manifest["attribution"]
        assert attr["slots_total"] == attr["issue_width"] * attr["cycles"]
        assert manifests[0].with_suffix(".jsonl").exists()

    def test_no_module_global_obs_setter(self):
        # The deprecated warn-once shim is gone for good: obs output is
        # configured only by threading RunContext(obs_dir=...).
        assert not hasattr(experiments_base, "set_obs" + "_dir")
        assert not hasattr(experiments_base, "_OBS_DIR_WARNED")
