"""Phase profiler tests: attribution coverage, counter exactness where
the machine has its own ground truth, and — the load-bearing contract —
that attach/detach leaves the machine byte-identical to one that was
never profiled (counters *and* code path).
"""

from __future__ import annotations

import pytest

from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.perf.profiler import STAGE_PHASES, PhaseProfiler
from repro.workloads.registry import get_workload, resolve_warmup

WINDOW = 3_000


def profiled_run(workload: str = "g721-encode"):
    spec = get_workload(workload)
    machine = Machine(spec.build(1), BASELINE)
    profiler = machine.enable_profiling()
    machine.fast_forward(resolve_warmup(spec, 1))
    result = machine.run(max_insts=WINDOW)
    profiler.detach()
    return machine, profiler, result


class TestAttribution:
    def test_every_stage_phase_is_attributed(self):
        _, profiler, _ = profiled_run()
        report = profiler.as_dict()
        for _, phase in STAGE_PHASES:
            assert phase in report["phases"], f"missing {phase}"
            assert report["phases"][phase]["calls"] > 0

    def test_cycle_count_matches_machine_exactly(self):
        machine, profiler, result = profiled_run()
        assert profiler.calls["cycle"] == result.stats.cycles
        # One call per stage per cycle (the machine steps all five
        # stages unconditionally).
        for attr, phase in STAGE_PHASES:
            assert profiler.calls[phase] == result.stats.cycles

    def test_subsystem_phases_cover_paper_instruments(self):
        _, profiler, result = profiled_run()
        phases = profiler.as_dict()["phases"]
        assert phases["subsys.feed"]["calls"] > 0
        # The width histogram records once per issued instruction.
        assert phases["subsys.width_hist"]["calls"] == \
            result.stats.issued
        assert phases["subsys.power"]["calls"] > 0
        assert phases["subsys.memory"]["calls"] > 0

    def test_stage_time_is_bounded_by_cycle_time(self):
        _, profiler, _ = profiled_run()
        cycle = profiler.seconds["cycle"]
        for _, phase in STAGE_PHASES:
            assert profiler.seconds[phase] <= cycle

    def test_targets_ranked_hottest_first_without_cycle(self):
        _, profiler, _ = profiled_run()
        targets = profiler.targets()
        names = [t["name"] for t in targets]
        assert "cycle" not in names
        seconds = [t["seconds"] for t in targets]
        assert seconds == sorted(seconds, reverse=True)

    def test_table_renders_every_phase(self):
        _, profiler, _ = profiled_run()
        table = profiler.table()
        assert "cycle (total)" in table
        assert "stage.issue" in table

    def test_profiling_does_not_perturb_results(self):
        spec = get_workload("g721-encode")
        bare = Machine(spec.build(1), BASELINE)
        bare.fast_forward(resolve_warmup(spec, 1))
        reference = bare.run(max_insts=WINDOW)
        _, _, profiled = profiled_run()
        assert profiled.stats.as_dict() == reference.stats.as_dict()


class TestAttachDetach:
    def test_detach_restores_instance_dicts_exactly(self):
        machine, profiler, _ = profiled_run()
        # Wrapping uses instance attributes; detach must remove every
        # one it added so the class methods resolve again.
        for owner in (machine, machine.feed, machine.widths,
                      machine.fluctuation, machine.accountant,
                      machine.hierarchy):
            for attr in vars(owner):
                assert not hasattr(getattr(owner, attr), "__wrapped__")
        assert "step" not in vars(machine)

    def test_detach_restores_module_globals(self):
        import repro.core.machine as machine_mod
        profiled_run()
        for name in ("try_join", "open_pack", "replay_overflows",
                     "operand_pair_width"):
            assert not hasattr(getattr(machine_mod, name), "__wrapped__")

    def test_unprofiled_machine_is_untouched(self):
        """Zero-cost contract: a machine that never opted in has no
        wrapper anywhere — its hot loop is the pre-perf code path."""
        spec = get_workload("g721-encode")
        machine = Machine(spec.build(1), BASELINE)
        assert "step" not in vars(machine)
        assert "next" not in vars(machine.feed)
        assert machine.step.__func__ is Machine.step

    def test_double_attach_rejected(self):
        spec = get_workload("g721-encode")
        machine = Machine(spec.build(1), BASELINE)
        profiler = machine.enable_profiling()
        with pytest.raises(RuntimeError, match="already attached"):
            profiler.attach(machine)
        profiler.detach()

    def test_detach_twice_is_harmless(self):
        spec = get_workload("g721-encode")
        machine = Machine(spec.build(1), BASELINE)
        profiler = machine.enable_profiling()
        profiler.detach()
        profiler.detach()
        assert "step" not in vars(machine)

    def test_enable_profiling_accepts_external_profiler(self):
        spec = get_workload("g721-encode")
        machine = Machine(spec.build(1), BASELINE)
        mine = PhaseProfiler()
        returned = machine.enable_profiling(mine)
        assert returned is mine
        assert mine.attached
        mine.detach()
        assert not mine.attached
