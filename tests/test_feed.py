"""Unit tests for the functional feed: in-order execution, speculation,
recovery, and width tagging."""

from repro.asm.assembler import Assembler
from repro.core.config import BASELINE
from repro.core.feed import Feed
from repro.isa.opcodes import Opcode
from repro.isa.registers import reg_index

COMBINING = BASELINE
PERFECT = BASELINE.with_predictor("perfect")


def make_feed(asm: Assembler, config=COMBINING) -> Feed:
    return Feed(asm.assemble(), config)


def drain(feed: Feed, limit: int = 100000) -> list:
    out = []
    for _ in range(limit):
        dyn = feed.next()
        if dyn is None:
            break
        out.append(dyn)
    return out


class TestStraightLine:
    def test_halts(self):
        asm = Assembler()
        asm.nop()
        asm.halt()
        feed = make_feed(asm)
        dyns = drain(feed)
        assert [d.inst.opcode for d in dyns] == [Opcode.NOP, Opcode.HALT]
        assert feed.halted
        assert feed.next() is None

    def test_arithmetic_results(self):
        asm = Assembler()
        asm.li("t0", 17)
        asm.li("t1", 2)
        asm.op("addq", "t2", "t0", "t1")
        asm.halt()
        feed = make_feed(asm)
        drain(feed)
        assert feed.reg(reg_index("t2")) == 19

    def test_sequence_numbers_monotonic(self):
        asm = Assembler()
        for _ in range(5):
            asm.nop()
        asm.halt()
        dyns = drain(make_feed(asm))
        seqs = [d.seq for d in dyns]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_operand_tags_for_narrow_add(self):
        asm = Assembler()
        asm.li("t0", 17)
        asm.op("addq", "t1", "t0", 2)
        asm.halt()
        dyns = drain(make_feed(asm))
        add = next(d for d in dyns if d.inst.opcode is Opcode.ADDQ)
        assert add.a_val == 17 and add.b_val == 2
        assert add.pair_narrow16

    def test_memory_operand_pair_is_address_calc(self):
        # Figure 1 counts address calculations: base + displacement.
        asm = Assembler()
        buf = asm.alloc("buf", 64)
        asm.li("s0", buf)
        asm.load("ldq", "t0", "s0", 8)
        asm.halt()
        dyns = drain(make_feed(asm))
        load = next(d for d in dyns if d.inst.opcode is Opcode.LDQ)
        assert load.a_val == buf
        assert load.b_val == 8
        assert load.mem_addr == buf + 8
        assert not load.tag_a.narrow16       # 33-bit base address
        assert load.tag_a.narrow33


class TestMemoryExecution:
    def test_store_load_roundtrip(self):
        asm = Assembler()
        buf = asm.alloc("buf", 16)
        asm.li("s0", buf)
        asm.li("t0", 1234)
        asm.store("stq", "t0", "s0", 0)
        asm.load("ldq", "t1", "s0", 0)
        asm.halt()
        feed = make_feed(asm)
        drain(feed)
        assert feed.reg(reg_index("t1")) == 1234

    def test_ldl_sign_extends(self):
        asm = Assembler()
        buf = asm.alloc("buf", 8)
        asm.data_words(buf, [0xFFFFFFFF], size=4)
        asm.li("s0", buf)
        asm.load("ldl", "t0", "s0", 0)
        asm.halt()
        feed = make_feed(asm)
        drain(feed)
        assert feed.reg(reg_index("t0")) == 0xFFFF_FFFF_FFFF_FFFF

    def test_load_provenance_tracked(self):
        asm = Assembler()
        buf = asm.alloc("buf", 8)
        asm.data_words(buf, [7])
        asm.li("s0", buf)
        asm.load("ldq", "t0", "s0", 0)
        asm.op("addq", "t1", "t0", 1)     # consumes a load result
        asm.halt()
        dyns = drain(make_feed(asm))
        add = next(d for d in dyns if d.inst.opcode is Opcode.ADDQ
                   and d.inst.rd == reg_index("t1"))
        assert add.operand_from_load

    def test_detect_loads_off_yields_unknown_tags(self):
        from dataclasses import replace
        config = BASELINE.with_gating(replace(BASELINE.gating,
                                              detect_loads=False))
        asm = Assembler()
        buf = asm.alloc("buf", 8)
        asm.data_words(buf, [3])          # a narrow value...
        asm.li("s0", buf)
        asm.load("ldq", "t0", "s0", 0)
        asm.op("addq", "t1", "t0", 1)
        asm.halt()
        dyns = drain(make_feed(asm, config))
        add = next(d for d in dyns if d.inst.opcode is Opcode.ADDQ
                   and d.inst.rd == reg_index("t1"))
        # ...but without cache-side zero detect the hardware can't know.
        assert not add.tag_a.narrow16


class TestControlFlow:
    def loop_program(self):
        asm = Assembler()
        asm.li("s0", 3)
        asm.clr("s1")
        asm.label("loop")
        asm.op("addq", "s1", "s1", 2)
        asm.op("subq", "s0", "s0", 1)
        asm.br("bne", "s0", "loop")
        asm.halt()
        return asm

    def test_loop_executes_correctly(self):
        feed = make_feed(self.loop_program(), PERFECT)
        drain(feed)
        assert feed.reg(reg_index("s1")) == 6

    def test_perfect_prediction_never_speculates(self):
        feed = make_feed(self.loop_program(), PERFECT)
        dyns = drain(feed)
        assert all(not d.spec and not d.mispredicted for d in dyns)

    def test_realistic_prediction_flags_mispredicts(self):
        feed = make_feed(self.loop_program(), COMBINING)
        mispredicted = []
        for _ in range(1000):
            dyn = feed.next()
            if dyn is None:
                break
            if dyn.mispredicted:
                mispredicted.append(dyn)
                feed.recover()     # resolve immediately
        assert feed.halted
        assert feed.reg(reg_index("s1")) == 6    # state still correct
        assert mispredicted                       # cold predictor misses

    def test_wrong_path_instructions_marked_spec(self):
        asm = Assembler()
        asm.clr("t0")
        asm.br("bne", "t0", "skip")    # never taken; cold BTB may say taken
        asm.op("addq", "t1", "t1", 1)
        asm.label("skip")
        asm.op("addq", "t2", "t2", 1)
        asm.halt()
        feed = make_feed(asm, COMBINING)
        saw_spec = False
        for _ in range(100):
            dyn = feed.next()
            if dyn is None:
                if feed.spec_mode:
                    feed.recover()
                    continue
                break
            if dyn.spec:
                saw_spec = True
        # Whether speculation happened depends on the cold predictor,
        # but the architected result must be correct either way.
        assert feed.reg(reg_index("t2")) == 1
        assert feed.reg(reg_index("t1")) in (0, 1) if saw_spec else True

    def test_recovery_restores_registers_and_memory(self):
        asm = Assembler()
        buf = asm.alloc("buf", 8)
        asm.li("s0", buf)
        asm.li("t0", 1)                 # t0 = 1 -> branch taken
        asm.br("bne", "t0", "target")
        # wrong path (fall-through): clobbers register and memory
        asm.li("t1", 99)
        asm.store("stq", "t1", "s0", 0)
        asm.halt()
        asm.label("target")
        asm.load("ldq", "t2", "s0", 0)
        asm.halt()
        feed = make_feed(asm, COMBINING)
        while True:
            dyn = feed.next()
            if dyn is None:
                if feed.spec_mode:
                    feed.recover()
                    continue
                break
            if dyn.mispredicted:
                # run a few wrong-path instructions before recovering
                for _ in range(4):
                    feed.next()
                feed.recover()
        assert feed.halted
        assert feed.reg(reg_index("t1")) == 0     # wrong-path write undone
        assert feed.reg(reg_index("t2")) == 0     # memory store undone

    def test_subroutine_call_and_return(self):
        asm = Assembler()
        asm.br("br", "main")
        asm.label("double")
        asm.op("addq", "v0", "a0", "a0")
        asm.ret()
        asm.label("main")
        asm.li("a0", 21)
        asm.bsr("double")
        asm.halt()
        feed = make_feed(asm, COMBINING)
        dyns = drain(feed)
        assert feed.reg(reg_index("v0")) == 42
        ret = next(d for d in dyns if d.inst.opcode is Opcode.RET)
        # RAS predicted the return target: no misprediction.
        assert not ret.mispredicted

    def test_fast_mode_never_speculates(self):
        feed = make_feed(self.loop_program(), COMBINING)
        feed.fast_mode = True
        dyns = drain(feed)
        assert all(not d.spec for d in dyns)
        assert feed.reg(reg_index("s1")) == 6
