#!/usr/bin/env python3
"""Simulator-invariant lint: forbid nondeterminism in core modules.

The simulator's results must be a pure function of (program, config,
seed): the run engine's persistent cache, the differential oracle, and
every cross-session comparison in the experiment suite depend on it.
This tool walks the AST of the timing-critical packages and rejects
constructs that would silently break replayability:

* **ND001** — module-level ``random`` functions (``random.random()``,
  ``from random import randint``, ...).  Seeded ``random.Random(seed)``
  instances are fine: they are explicit about their stream.
* **ND002** — wall-clock reads: ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()``, ``datetime.now()`` and friends.  Timing a
  simulation is the harness's job, never the model's.
* **ND003** — iterating a set display or ``set(...)`` call (``for x in
  {...}``) without ``sorted(...)``: set iteration order depends on the
  hash seed.  Membership tests are fine.
* **ND004** — iterating ``os.listdir``/``glob.glob``/``Path.iterdir``
  results without ``sorted(...)``: filesystem order is arbitrary.

A finding can be suppressed on its line with ``# lint: allow(ND001)``
when the use is genuinely deterministic.

Usage::

    python tools/lint_invariants.py                 # default paths
    python tools/lint_invariants.py src/repro tools # explicit paths

Exit status is 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

#: Packages whose determinism the simulation results depend on.
DEFAULT_PATHS = ("src/repro/core", "src/repro/exec",
                 "src/repro/fastsim", "src/repro/service")

_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "randbytes",
})
_WALL_CLOCK_TIME = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns",
})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
_FS_LISTING = frozenset({"listdir", "glob", "iglob", "iterdir",
                         "scandir", "rglob"})

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([A-Z0-9, ]+)\)")


class Finding:
    __slots__ = ("path", "line", "code", "message")

    def __init__(self, path: Path, line: int, code: str,
                 message: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def _call_name(node: ast.expr) -> tuple[str | None, str | None]:
    """(module-ish name, attribute) of a call target, best effort."""
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            return node.value.id, node.attr
        if isinstance(node.value, ast.Attribute):
            return node.value.attr, node.attr
        return None, node.attr
    if isinstance(node, ast.Name):
        return None, node.id
    return None, None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, allowed: dict[int, set[str]]) -> None:
        self.path = path
        self.allowed = allowed
        self.findings: list[Finding] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self.allowed.get(line, set()):
            return
        self.findings.append(Finding(self.path, line, code, message))

    # -- ND001: module-level random --------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            names = [a.name for a in node.names if a.name != "Random"]
            if names:
                self._report(node, "ND001",
                             f"import of unseeded random function(s) "
                             f"{', '.join(names)}; use a seeded "
                             f"random.Random(seed) instance")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        base, attr = _call_name(node.func)
        if base == "random" and attr in _RANDOM_MODULE_FUNCS:
            self._report(node, "ND001",
                         f"random.{attr}() uses the shared unseeded "
                         f"stream; use a seeded random.Random(seed)")
        elif base == "time" and attr in _WALL_CLOCK_TIME:
            self._report(node, "ND002",
                         f"time.{attr}() reads the wall clock; results "
                         f"must not depend on it")
        elif (attr in _WALL_CLOCK_DATETIME
              and base in ("datetime", "date")):
            self._report(node, "ND002",
                         f"{base}.{attr}() reads the wall clock; "
                         f"results must not depend on it")
        self.generic_visit(node)

    # -- ND003/ND004: order-dependent iteration --------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, ast.Set) or isinstance(
                iter_node, ast.SetComp):
            self._report(iter_node, "ND003",
                         "iteration over a set: order depends on the "
                         "hash seed; wrap in sorted(...)")
            return
        if isinstance(iter_node, ast.Call):
            base, attr = _call_name(iter_node.func)
            if attr == "set" and base is None:
                self._report(iter_node, "ND003",
                             "iteration over set(...): order depends on "
                             "the hash seed; wrap in sorted(...)")
            elif attr in _FS_LISTING:
                self._report(iter_node, "ND004",
                             f"iteration over {attr}(): filesystem "
                             f"order is arbitrary; wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _allowed_lines(source: str) -> dict[int, set[str]]:
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            allowed[lineno] = codes
    return allowed


def lint_file(path: Path) -> list[Finding]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "ND000",
                        f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, _allowed_lines(source))
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        elif path.suffix == ".py":
            findings.extend(lint_file(path))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Forbid nondeterministic constructs in simulator "
                    "core modules.")
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[Path(p) for p in DEFAULT_PATHS],
                        help=f"files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        parser.error(f"path(s) not found: "
                     f"{', '.join(str(p) for p in missing)}")

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} nondeterminism finding(s)")
        return 1
    files = sum(1 for p in args.paths if p.is_file()) + sum(
        len(list(p.rglob("*.py"))) for p in args.paths if p.is_dir())
    print(f"clean: {files} file(s), 0 findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
