#!/usr/bin/env python3
"""Power study: sweep gating policies across the full benchmark suite.

Reproduces the Section 4 analysis interactively: for each benchmark,
compare integer-unit power under

* the paper's full proposal (16- and 33-bit cuts, loads detected),
* 16-bit gating only (no address cut),
* no cache-side zero detect on loads,
* the prior-work opcode-only baseline.

Run:  python examples/power_gating_study.py          (full suite)
      python examples/power_gating_study.py ijpeg go (chosen benchmarks)
"""

import sys

from repro import BASELINE, GatingPolicy
from repro.experiments.base import all_names, format_table, mean, run_workload

POLICIES = {
    "full (16+33)": GatingPolicy(),
    "16-bit only": GatingPolicy(gate33=False),
    "no load detect": GatingPolicy(detect_loads=False),
    "opcode only": GatingPolicy(gate16=False, gate33=False,
                                operand_based=False),
}


def main(argv):
    names = argv or list(all_names())
    headers = ["benchmark"] + list(POLICIES) + ["load-fed gated %"]
    rows = []
    sums = {policy: [] for policy in POLICIES}
    for name in names:
        row = [name]
        load_fed = 0.0
        for policy_name, policy in POLICIES.items():
            result = run_workload(name, BASELINE.with_gating(policy))
            row.append(result.power.reduction_pct)
            sums[policy_name].append(result.power.reduction_pct)
            if policy_name == "full (16+33)":
                load_fed = result.power.load_dependent_pct
        row.append(load_fed)
        rows.append(row)
    rows.append(["mean"] + [mean(sums[p]) for p in POLICIES] + [""])

    print("Integer-unit power reduction (%) by gating policy")
    print(format_table(headers, rows, precision=1))
    print("\nReading the table:")
    print(" * 'full' is the paper's proposal (Figure 7: ~54% SPEC, ~58% "
          "media);")
    print(" * dropping the 33-bit cut hurts address-heavy benchmarks "
          "(go, vortex);")
    print(" * dropping load zero-detect hurts SPEC (13.1% of its gated "
          "ops are load-fed) more than media (1.5%);")
    print(" * opcode-only gating is the baseline itself: 0% extra.")


if __name__ == "__main__":
    main(sys.argv[1:])
