#!/usr/bin/env python3
"""Quickstart: simulate a program, measure narrow-width behaviour, and
try both of the paper's optimizations.

Builds a small image-processing loop in the Alpha-like ISA, runs it on
the Table 1 baseline machine, then re-runs with operand-based clock
gating accounting (Section 4) and with operation packing (Section 5).

Run:  python examples/quickstart.py
"""

from repro import BASELINE, Machine
from repro.asm import Assembler, standard_prologue
from repro.workloads.data import image_block


def build_program():
    """A brightness/contrast loop over 8-bit pixels — the kind of
    narrow-width integer code the paper targets."""
    asm = Assembler("quickstart")
    standard_prologue(asm)
    pixels = asm.alloc("pixels", 4096)
    output = asm.alloc("output", 4096)
    asm.data_bytes(pixels, image_block(64, 64))

    asm.li("s0", pixels)
    asm.li("s1", output)
    asm.li("s2", 4096)          # pixel count
    asm.label("loop")
    asm.load("ldbu", "t0", "s0", 0)      # pixel (8-bit: narrow!)
    asm.op("mull", "t1", "t0", 3)        # contrast: * 3/4
    asm.op("sra", "t1", "t1", 2)
    asm.op("addq", "t1", "t1", 16)       # brightness: + 16
    # saturate to 0..255
    asm.li("at", 255)
    asm.op("cmplt", "t2", "at", "t1")
    asm.op("cmovne", "t1", "t2", "at")
    asm.store("stb", "t1", "s1", 0)
    asm.op("addq", "s0", "s0", 1)
    asm.op("addq", "s1", "s1", 1)
    asm.op("subq", "s2", "s2", 1)
    asm.br("bne", "s2", "loop")
    asm.halt()
    return asm.assemble()


def main():
    program = build_program()

    # --- 1. Baseline run: where are the narrow operands? -----------------
    machine = Machine(program, BASELINE)
    result = machine.run()
    print(f"baseline: {result.stats.committed} instructions in "
          f"{result.stats.cycles} cycles (IPC {result.ipc:.2f})")
    print(f"  operations with both operands <=16 bits: "
          f"{result.widths.cumulative_pct(16):.1f}%")
    print(f"  ... <=33 bits (addresses included):      "
          f"{result.widths.cumulative_pct(33):.1f}%")

    # --- 2. Power: operand-based clock gating (Section 4) ----------------
    power = result.power
    print(f"\nclock gating (Table 4 power model):")
    print(f"  integer-unit power: {power.baseline:.0f} mW/cycle -> "
          f"{power.gated:.0f} mW/cycle "
          f"({power.reduction_pct:.1f}% reduction)")
    print(f"  saved at 16-bit cut: {power.saved16:.1f} mW/cycle, "
          f"at 33-bit cut: {power.saved33:.1f} mW/cycle, "
          f"overhead: {power.overhead:.1f} mW/cycle")

    # --- 3. Performance: operation packing (Section 5) -------------------
    packed_machine = Machine(program, BASELINE.with_packing(replay=True))
    packed = packed_machine.run()
    speedup = 100 * (result.stats.cycles / packed.stats.cycles - 1)
    print(f"\noperation packing (dynamic MMX):")
    print(f"  {packed.stats.cycles} cycles (IPC {packed.ipc:.2f}), "
          f"speedup {speedup:.1f}%")
    print(f"  {packed.stats.pack_groups} packs issued covering "
          f"{packed.stats.packed_ops} instructions; "
          f"{packed.stats.replay_traps} replay traps")

    # Functional results are identical with and without packing.
    assert all(machine.feed.reg(r) == packed_machine.feed.reg(r)
               for r in range(32))
    print("\nfunctional state identical with and without packing ✓")


if __name__ == "__main__":
    main()
