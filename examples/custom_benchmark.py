#!/usr/bin/env python3
"""Write your own workload: a saturating histogram kernel, start to
finish — assemble, verify against a Python model, then evaluate both
paper optimizations on it.

This is the template to copy when adding a benchmark: build a real
computation with the structured assembler, cross-check its architected
result, then measure.

Run:  python examples/custom_benchmark.py
"""

from repro import BASELINE, Machine
from repro.asm import Assembler, standard_prologue
from repro.workloads.data import Xorshift64


def build_histogram(values: list[int]):
    """Count 4-bit symbol frequencies with 8-bit saturation — small
    values everywhere, a natural narrow-width workload."""
    asm = Assembler("histogram")
    standard_prologue(asm)
    data = asm.alloc("data", len(values))
    bins = asm.alloc("bins", 16)
    asm.data_bytes(data, bytes(values))

    asm.li("s0", data)
    asm.li("s1", bins)
    asm.li("s2", len(values))
    asm.label("loop")
    asm.load("ldbu", "t0", "s0", 0)      # symbol
    asm.op("and", "t0", "t0", 15)        # 4-bit bin index
    asm.op("addq", "t1", "t0", "s1")     # &bins[symbol]
    asm.load("ldbu", "t2", "t1", 0)
    asm.op("addq", "t2", "t2", 1)        # count++
    asm.li("at", 255)                    # saturate at 255
    asm.op("cmplt", "t3", "at", "t2")
    asm.op("cmovne", "t2", "t3", "at")
    asm.store("stb", "t2", "t1", 0)
    asm.op("addq", "s0", "s0", 1)
    asm.op("subq", "s2", "s2", 1)
    asm.br("bne", "s2", "loop")
    asm.halt()
    return asm.assemble(), bins


def python_model(values: list[int]) -> list[int]:
    bins = [0] * 16
    for value in values:
        bins[value & 15] = min(255, bins[value & 15] + 1)
    return bins


def main():
    rng = Xorshift64(0xCAFE)
    values = [rng.next_below(16) for _ in range(2000)]
    program, bins_addr = build_histogram(values)

    # --- verify the kernel against the Python model ----------------------
    machine = Machine(program, BASELINE)
    result = machine.run()
    simulated = [machine.feed.memory.load(bins_addr + i, 1)
                 for i in range(16)]
    expected = python_model(values)
    assert simulated == expected, (simulated, expected)
    print(f"histogram verified against the Python model ✓  bins={simulated}")

    # --- evaluate the paper's optimizations on it -------------------------
    print(f"\nbaseline: IPC {result.ipc:.2f}, narrow(<=16b) "
          f"{result.widths.cumulative_pct(16):.1f}%, integer-unit power "
          f"-{result.power.reduction_pct:.1f}% with gating")

    packed = Machine(program, BASELINE.with_packing(replay=True)).run()
    speedup = 100 * (result.stats.cycles / packed.stats.cycles - 1)
    print(f"packing:  IPC {packed.ipc:.2f} ({speedup:+.1f}%), "
          f"{packed.stats.pack_groups} packs, "
          f"{packed.stats.replay_traps} replay traps")


if __name__ == "__main__":
    main()
