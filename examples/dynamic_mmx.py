#!/usr/bin/env python3
"""Operation packing as "dynamic MMX": watch packs form at issue time.

Runs the mpeg2-encode stand-in (motion-estimation SAD — the classic
hand-MMX'd kernel) under four machines and shows how issue-time packing
recovers most of an 8-issue machine's advantage without new ALUs, and
how replay packing (Section 5.3) squeezes out more by speculating on
one-wide-operand adds.

Run:  python examples/dynamic_mmx.py [benchmark] [scale]
"""

import sys

from repro import BASELINE
from repro.experiments.base import format_table, run_workload


def main(argv):
    name = argv[0] if argv else "mpeg2-encode"
    scale = int(argv[1]) if len(argv) > 1 else 1

    machines = {
        "baseline (4-issue, 4 ALU)": BASELINE,
        "+ packing": BASELINE.with_packing(),
        "+ replay packing": BASELINE.with_packing(replay=True),
        "8-issue, 8 ALU": BASELINE.with_issue_width(8, 8),
    }

    base_cycles = None
    rows = []
    for label, config in machines.items():
        result = run_workload(name, config, scale=scale)
        if base_cycles is None:
            base_cycles = result.stats.cycles
        speedup = 100 * (base_cycles / result.stats.cycles - 1)
        rows.append([
            label,
            result.stats.cycles,
            f"{result.ipc:.2f}",
            f"{speedup:+.1f}%",
            result.stats.pack_groups,
            result.stats.packed_ops,
            result.stats.replay_traps,
        ])

    print(f"'{name}' on four machines (identical committed work)")
    print(format_table(
        ["machine", "cycles", "IPC", "speedup", "packs", "packed ops",
         "replay traps"], rows))
    print("\nThe packed 4-issue machine closes most of the gap to the "
          "8-issue machine\nby merging narrow operations into shared "
          "ALUs at issue time (Figure 11).")


if __name__ == "__main__":
    main(sys.argv[1:])
