#!/usr/bin/env python3
"""Thermal management: one hardware base, two uses, switched on the fly.

Section 5 of the paper notes that gating (power) and packing
(performance) "share a common hardware base" so a processor could
"switch between the two techniques, depending on current thermal or
performance concerns", the way the PPC750's thermal assist unit
throttles on temperature.

This example runs the gsm-encode stand-in under three packages —
generous, realistic, and constrained cooling — and shows the controller
trading IPC for temperature as the thermal headroom shrinks.

Run:  python examples/thermal_management.py [benchmark]
"""

import sys

from repro import BASELINE
from repro.experiments.base import format_table
from repro.power.thermal import ThermalConfig, run_managed
from repro.workloads.registry import get_workload

PACKAGES = {
    "generous cooling": ThermalConfig(hot_c=120.0, cool_c=110.0,
                                      alpha=0.3, interval_cycles=128),
    "typical package": ThermalConfig(hot_c=78.0, cool_c=70.0,
                                     alpha=0.3, interval_cycles=128),
    "constrained (fanless)": ThermalConfig(hot_c=62.0, cool_c=58.0,
                                           alpha=0.3,
                                           interval_cycles=128),
}


def main(argv):
    name = argv[0] if argv else "gsm-encode"
    program_builder = get_workload(name)

    rows = []
    for label, package in PACKAGES.items():
        result = run_managed(program_builder.build(), BASELINE, package,
                             max_insts=20_000, warmup=60_000)
        rows.append([
            label,
            f"{result.ipc:.2f}",
            f"{result.mean_power_mw:.0f}",
            f"{result.stats.max_temperature_c:.1f}",
            f"{100 * result.stats.packing_fraction:.0f}%",
            result.stats.switches,
        ])

    print(f"thermally managed '{name}' (packing while cool, gating "
          "while hot)")
    print(format_table(
        ["package", "IPC", "mean mW/cyc", "peak °C", "time packing",
         "mode switches"], rows))
    print("\nTighter thermal envelopes push the controller from the "
          "performance\ntechnique (packing) toward the power technique "
          "(gating) — the paper's\nproposed use of the shared "
          "narrow-width hardware.")


if __name__ == "__main__":
    main(sys.argv[1:])
