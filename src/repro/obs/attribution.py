"""Top-down CPI stall attribution.

Every cycle the machine has ``issue_width`` issue slots.  When stall
attribution is enabled (:meth:`~repro.core.machine.Machine.
enable_stall_attribution`), the issue stage classifies each *unused*
slot into exactly one cause:

* ``frontend``   — the RUU held no unissued work at all: fetch/dispatch
  starved the window (empty-RUU / fetch-stall, including I-cache miss
  stalls);
* ``deps``       — unissued work existed but none of it was ready:
  waiting on producers (including in-flight loads), on same-cycle
  dispatch latency, or on a replay re-issue window;
* ``structural_alu`` / ``structural_mult`` — a ready instruction was
  denied only because the ALUs / the multiplier were exhausted;
* ``recovery``   — no work was available because fetch is serving a
  misprediction-recovery redirect (Table 1's penalty window).

Used slots are counted in ``used``; packed joins ride in a leader's
slot and consume none.  By construction the six buckets partition the
slot supply, so the accountant can *prove* the conservation law

    used + frontend + deps + structural_alu + structural_mult
        + recovery  ==  issue_width × cycles

via :meth:`StallAttribution.check` — the test suite and the run
manifest both assert it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Stall bucket names, in reporting order.
STALL_KINDS = ("frontend", "deps", "structural_alu", "structural_mult",
               "recovery")


@dataclass
class StallAttribution:
    """Per-slot issue accounting accumulated over a run."""

    issue_width: int
    cycles: int = 0
    used: int = 0
    frontend: int = 0
    deps: int = 0
    structural_alu: int = 0
    structural_mult: int = 0
    recovery: int = 0

    # ------------------------------------------------------------ recording

    def account_cycle(self, used: int, unused: int, n_struct_alu: int,
                      n_struct_mult: int, blocked: bool,
                      in_recovery: bool) -> None:
        """Attribute one cycle's issue slots (called by the machine).

        ``n_struct_alu`` / ``n_struct_mult`` count ready instructions
        denied a functional unit this cycle; ``blocked`` is whether any
        unissued-but-not-ready work existed; ``in_recovery`` is whether
        fetch is stalled on a misprediction redirect.
        """
        self.cycles += 1
        self.used += used
        if not unused:
            return
        take = min(unused, n_struct_alu)
        self.structural_alu += take
        unused -= take
        take = min(unused, n_struct_mult)
        self.structural_mult += take
        unused -= take
        if not unused:
            return
        if blocked:
            self.deps += unused
        elif in_recovery:
            self.recovery += unused
        else:
            self.frontend += unused

    # -------------------------------------------------------------- queries

    @property
    def total_slots(self) -> int:
        """All slots accounted for: used plus every stall bucket."""
        return (self.used + self.frontend + self.deps
                + self.structural_alu + self.structural_mult
                + self.recovery)

    def check(self) -> bool:
        """Prove slot conservation; raises ``AssertionError`` if the
        breakdown does not sum to ``issue_width × cycles``."""
        expected = self.issue_width * self.cycles
        if self.total_slots != expected:
            raise AssertionError(
                f"stall attribution leaked slots: {self.total_slots} "
                f"accounted vs {expected} supplied "
                f"({self.issue_width} x {self.cycles})")
        return True

    def fractions(self) -> dict[str, float]:
        """Each bucket (and ``used``) as a fraction of all slots."""
        total = self.total_slots
        if not total:
            return {}
        out = {"used": self.used / total}
        for kind in STALL_KINDS:
            out[kind] = getattr(self, kind) / total
        return out

    def cpi_breakdown(self, committed: int) -> dict[str, float]:
        """Split CPI by slot bucket: each bucket's slot share times the
        run's CPI, so the parts sum to cycles / committed."""
        if not committed or not self.cycles:
            return {}
        cpi = self.cycles / committed
        return {kind: frac * cpi
                for kind, frac in self.fractions().items()}

    def as_dict(self) -> dict:
        """JSON-friendly summary (conservation already checked)."""
        self.check()
        return {
            "issue_width": self.issue_width,
            "cycles": self.cycles,
            "slots_total": self.total_slots,
            "used": self.used,
            "frontend": self.frontend,
            "deps": self.deps,
            "structural_alu": self.structural_alu,
            "structural_mult": self.structural_mult,
            "recovery": self.recovery,
        }
