"""``repro-obs``: run one workload with full observability attached.

Runs a registered benchmark under the paper's methodology (fast-forward
warmup, then detailed simulation), with the interval sampler, stall
attribution, and — optionally — the raw event trace enabled, and writes
the machine-readable artifacts to an output directory::

    repro-obs go --packing --out obs/go-packed
    repro-obs gsm-encode --window 500 --events --out obs/gsm

The console summary — headline counters, the top-down CPI breakdown
(with its slot-conservation proof), wall-clock — prints to **stderr**;
stdout carries only the machine-parseable artifact paths (and the
``--list`` / ``--list-experiments`` listings).  ``--profile`` attaches
the hot-loop phase profiler (:mod:`repro.perf.profiler`) and prints
the wall-clock-per-phase ranking after the run.

The CLI accepts the shared run-engine flag group
(:mod:`repro.exec.cli`).  With ``--cache-dir`` — and no flag that
needs a hand-instrumented machine (``--events``, ``--profile``,
``--window``, ``--max-events``, ``--max-insts``) — the run goes
through the run engine, so a warm cache serves the manifest without
simulating and a cold run stores its result for every other engine
consumer (the same artifacts are written either way).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.exec.cli import (
    add_engine_arguments,
    context_from_args,
    validate_engine_args,
)
from repro.obs.events import EventRecorder
from repro.obs.export import (
    build_manifest,
    read_manifest,
    write_events_jsonl,
    write_jsonl,
    write_manifest,
    write_windows_jsonl,
)
from repro.obs.sampler import IntervalSampler
from repro.workloads.registry import all_workloads, get_workload, resolve_warmup


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Run one benchmark with observability attached and "
                    "export JSONL artifacts.")
    parser.add_argument("workload", nargs="?",
                        help="registered workload name (e.g. go, ijpeg, "
                             "gsm-encode); see --list")
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    parser.add_argument("--list-experiments", action="store_true",
                        help="list registered paper experiments (name, "
                             "description, simulation-job count) and exit")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--packing", action="store_true",
                        help="enable operation packing (paper Section 5)")
    parser.add_argument("--replay", action="store_true",
                        help="enable replay packing (implies --packing)")
    parser.add_argument("--predictor", default=None,
                        help="branch predictor kind (default: Table 1's "
                             "combining predictor)")
    parser.add_argument("--window", type=int, default=None,
                        help="sampler window in cycles (default: the "
                             "config's obs.sampler_window)")
    parser.add_argument("--events", action="store_true",
                        help="also record and export the raw event trace")
    parser.add_argument("--max-events", type=int, default=None,
                        help="cap on recorded events (default: the "
                             "config's obs.max_events)")
    parser.add_argument("--max-insts", type=int, default=None,
                        help="override the workload's detailed-simulation "
                             "window (committed instructions)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="output directory (default: "
                             "obs-out/<workload>)")
    parser.add_argument("--profile", action="store_true",
                        help="attach the hot-loop phase profiler and "
                             "print the per-phase wall-clock ranking "
                             "(stderr) after the run")
    add_engine_arguments(parser)
    return parser


def _engine_eligible(args: argparse.Namespace) -> bool:
    """The engine path serves this invocation iff a cache directory is
    in play and nothing asks for a hand-instrumented machine."""
    return (args.cache_dir is not None and not args.no_cache
            and not (args.events or args.profile or args.window
                     or args.max_events or args.max_insts))


def _run_via_engine(args: argparse.Namespace, workload, config,
                    out_dir: str) -> int:
    """Run (or recall) the workload through the run engine: warm cache
    hits skip simulation yet rematerialize the identical manifest."""
    from repro.exec import Job, RunEngine

    job = Job(workload.name, config, args.scale)
    out = Path(out_dir)
    ctx = context_from_args(args, obs_dir=out)
    start = time.time()
    engine = RunEngine(ctx)
    results, report = engine.run_jobs_report([job])
    elapsed = time.time() - start
    if results.get(job.key) is None:
        outcome = report.outcome_of(job)
        print(f"FAIL: {workload.name}: {outcome.error or 'job failed'}",
              file=sys.stderr)
        return 1
    outcome = report.outcome_of(job)
    source = "cache" if outcome.attempts == 0 else "simulated"

    # Normalize the engine's <stem>.json/.jsonl artifact names to the
    # repro-obs directory layout, then derive windows.jsonl.
    src_json = out / f"{job.stem()}.json"
    manifest = read_manifest(src_json)
    json_path = out / "manifest.json"
    jsonl_path = out / "manifest.jsonl"
    src_json.replace(json_path)
    src_jsonl = src_json.with_suffix(".jsonl")
    if src_jsonl.exists():
        src_jsonl.replace(jsonl_path)
    windows = manifest.get("windows") or []
    windows_path = out / "windows.jsonl"
    write_jsonl(windows_path, windows)

    stats = manifest["stats"]
    ipc = (stats["committed"] / stats["cycles"]
           if stats["cycles"] else 0.0)
    err = sys.stderr
    print(f"{workload.name}: {stats['committed']} committed / "
          f"{stats['cycles']} cycles = {ipc:.3f} IPC "
          f"({elapsed:.1f}s wall, {source} via engine)", file=err)
    slots = manifest.get("attribution")
    if slots:
        print(f"slot conservation: {slots['slots_total']} slots "
              f"== {slots['issue_width']} wide x {slots['cycles']} "
              f"cycles", file=err)
        cpi = stats["cycles"] / stats["committed"] \
            if stats["committed"] else 0.0
        for kind in ("used", "frontend", "deps", "structural_alu",
                     "structural_mult", "recovery"):
            frac = (slots[kind] / slots["slots_total"]
                    if slots["slots_total"] else 0.0)
            print(f"  cpi[{kind:>15s}] = {frac * cpi:.4f}", file=err)
    print(f"windows: {len(windows)} windows", file=err)
    for path in (json_path, jsonl_path, windows_path):
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_engine_args(parser, args)

    if args.list_workloads:
        for workload in sorted(all_workloads(), key=lambda w: w.name):
            print(f"{workload.name:16s} [{workload.suite}] "
                  f"{workload.description}")
        return 0

    if args.list_experiments:
        # Same declarative registry the repro-experiments runner and
        # the run engine consume.
        from repro.experiments.registry import all_experiments
        for exp in all_experiments().values():
            print(f"{exp.name:14s} [{len(exp.jobs(1)):3d} jobs] "
                  f"{exp.description}")
        return 0

    if args.workload is None:
        parser.error("workload is required (use --list to enumerate)")
    if args.window is not None and args.window < 1:
        parser.error("--window must be >= 1 cycle")

    try:
        workload = get_workload(args.workload)
    except KeyError:
        parser.error(f"unknown workload {args.workload!r} "
                     f"(use --list to enumerate)")

    config = BASELINE
    if args.packing or args.replay:
        config = config.with_packing(replay=args.replay)
    if args.predictor:
        config = config.with_predictor(args.predictor)
    window = args.window or config.obs.sampler_window
    max_events = args.max_events or config.obs.max_events
    out_dir = args.out or f"obs-out/{workload.name}"

    if _engine_eligible(args):
        return _run_via_engine(args, workload, config, out_dir)
    if args.cache_dir is not None:
        print("note: --events/--profile/--window/--max-* need the "
              "hand-instrumented machine; running it directly (cache "
              "flags ignored)", file=sys.stderr)

    machine = Machine(workload.build(args.scale), config)
    sampler = IntervalSampler(window=window)
    machine.add_probe(sampler)
    attribution = machine.enable_stall_attribution()
    recorder = None
    if args.events:
        recorder = EventRecorder(limit=max_events)
        machine.subscribe(recorder)
    profiler = machine.enable_profiling() if args.profile else None

    start = time.time()
    machine.fast_forward(resolve_warmup(workload, args.scale))
    result = machine.run(max_insts=args.max_insts or workload.window)
    elapsed = time.time() - start
    if profiler is not None:
        profiler.detach()
    sampler.finish(machine)

    extra: dict = {"wall_seconds": elapsed, "sampler_window": window}
    if profiler is not None:
        extra["profile"] = profiler.as_dict()
    manifest = build_manifest(
        result, attribution=attribution, sampler=sampler,
        workload=workload.name, scale=args.scale, extra=extra)
    paths = write_manifest(out_dir, manifest)
    written = [paths["json"], paths["jsonl"]]
    windows_path = paths["json"].parent / "windows.jsonl"
    write_windows_jsonl(windows_path, sampler.windows)
    written.append(windows_path)
    if recorder is not None:
        events_path = paths["json"].parent / "events.jsonl"
        write_events_jsonl(events_path, recorder.events)
        written.append(events_path)

    stats = result.stats
    err = sys.stderr
    print(f"{workload.name}: {stats.committed} committed / "
          f"{stats.cycles} cycles = {stats.ipc:.3f} IPC "
          f"({elapsed:.1f}s wall)", file=err)
    attribution.check()
    slots = attribution.as_dict()
    print(f"slot conservation: {slots['slots_total']} slots "
          f"== {slots['issue_width']} wide x {slots['cycles']} cycles",
          file=err)
    for kind, cpi in attribution.cpi_breakdown(stats.committed).items():
        print(f"  cpi[{kind:>15s}] = {cpi:.4f}", file=err)
    print(f"windows: {len(sampler.windows)} x {window} cycles", file=err)
    if recorder is not None:
        note = f" (+{recorder.dropped} dropped)" if recorder.dropped else ""
        print(f"events: {len(recorder.events)} recorded{note}", file=err)
    if profiler is not None:
        print(f"\nhot-loop profile ({workload.name}):", file=err)
        print(profiler.table(), file=err)
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
