"""Interval sampling: per-window time series of a running machine.

An :class:`IntervalSampler` is a per-cycle probe (attached with
:meth:`~repro.core.machine.Machine.add_probe`) that slices the run into
fixed-width cycle windows and records, for each window, the quantities
the paper plots over time: IPC, structure occupancies, the narrow-op
and packed-op fractions, and gated integer-unit power.  The resulting
series is the machine-readable backbone of regression tracking — two
runs of the same workload can be diffed window by window.

Windows tile the run exactly: ``sum(w.cycles) == stats.cycles`` and
``sum(w.committed) == stats.committed`` once :meth:`finish` flushes the
final partial window.

The module is duck-typed against the machine (it reads ``stats``,
``ruu``, ``fetch_queue``, ``widths``, ``accountant``) and imports
nothing from :mod:`repro.core`, keeping the obs → core dependency
one-way.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cut point for the "narrow fraction" column (the paper's 16-bit line).
NARROW_CUT = 16


@dataclass(frozen=True, slots=True)
class Window:
    """One sampled interval of the run."""

    index: int
    start_cycle: int
    end_cycle: int          # exclusive
    cycles: int
    committed: int
    issued: int
    ipc: float
    ruu_occupancy: float    # mean entries over the window
    lsq_occupancy: float
    fetchq_occupancy: float
    narrow16_frac: float    # width-tracked ops with both operands <= 16 bits
    packed_frac: float      # issued ops that rode in an ALU pack
    gated_mw: float         # mean gated integer-unit power (mW/cycle)
    mispredicts: int
    replay_traps: int

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "committed": self.committed,
            "issued": self.issued,
            "ipc": self.ipc,
            "ruu_occupancy": self.ruu_occupancy,
            "lsq_occupancy": self.lsq_occupancy,
            "fetchq_occupancy": self.fetchq_occupancy,
            "narrow16_frac": self.narrow16_frac,
            "packed_frac": self.packed_frac,
            "gated_mw": self.gated_mw,
            "mispredicts": self.mispredicts,
            "replay_traps": self.replay_traps,
        }


def window_from_dict(record: dict) -> Window:
    """Rebuild a :class:`Window` from :meth:`Window.as_dict` output."""
    return Window(**{k: record[k] for k in Window.__slots__})


class _Snapshot:
    """Machine counters captured at a window boundary."""

    __slots__ = ("cycles", "committed", "issued", "packed_ops",
                 "mispredicts", "replay_traps", "gated_total",
                 "narrow16", "width_total")

    def __init__(self, machine) -> None:
        stats = machine.stats
        self.cycles = stats.cycles
        self.committed = stats.committed
        self.issued = stats.issued
        self.packed_ops = stats.packed_ops
        self.mispredicts = stats.mispredicts
        self.replay_traps = stats.replay_traps
        self.gated_total = machine.accountant.gated_total
        self.narrow16 = machine.widths.count_at_most(NARROW_CUT)
        self.width_total = machine.widths.total


class IntervalSampler:
    """Per-cycle probe recording fixed-width windows of machine state."""

    def __init__(self, window: int = 1000) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        self.window = window
        self.windows: list[Window] = []
        self._snapshot: _Snapshot | None = None
        self._cycles_in_window = 0
        self._ruu_sum = 0
        self._lsq_sum = 0
        self._fetchq_sum = 0

    # ----------------------------------------------------------- probe hook

    def on_cycle(self, machine) -> None:
        """Called by the machine at the end of every simulated cycle."""
        if self._snapshot is None:
            # First observed cycle: baseline the counters at the state
            # *before* this cycle (stats.cycles already includes it).
            self._snapshot = _Snapshot(machine)
            self._snapshot.cycles -= 1
        self._ruu_sum += len(machine.ruu.entries)
        self._lsq_sum += machine.ruu.lsq_used
        self._fetchq_sum += len(machine.fetch_queue)
        self._cycles_in_window += 1
        if self._cycles_in_window >= self.window:
            self._flush(machine)

    def finish(self, machine) -> list[Window]:
        """Flush the trailing partial window; returns all windows."""
        if self._cycles_in_window:
            self._flush(machine)
        return self.windows

    # -------------------------------------------------------------- flushing

    def _flush(self, machine) -> None:
        prev = self._snapshot
        now = _Snapshot(machine)
        # The snapshot is taken mid-cycle bookkeeping-wise: correct the
        # cycle count to cover exactly the cycles we observed.
        now.cycles = prev.cycles + self._cycles_in_window
        cycles = self._cycles_in_window
        committed = now.committed - prev.committed
        issued = now.issued - prev.issued
        width_delta = now.width_total - prev.width_total
        self.windows.append(Window(
            index=len(self.windows),
            start_cycle=prev.cycles,
            end_cycle=now.cycles,
            cycles=cycles,
            committed=committed,
            issued=issued,
            ipc=committed / cycles,
            ruu_occupancy=self._ruu_sum / cycles,
            lsq_occupancy=self._lsq_sum / cycles,
            fetchq_occupancy=self._fetchq_sum / cycles,
            narrow16_frac=((now.narrow16 - prev.narrow16) / width_delta
                           if width_delta else 0.0),
            packed_frac=((now.packed_ops - prev.packed_ops) / issued
                         if issued else 0.0),
            gated_mw=(now.gated_total - prev.gated_total) / cycles,
            mispredicts=now.mispredicts - prev.mispredicts,
            replay_traps=now.replay_traps - prev.replay_traps,
        ))
        self._snapshot = now
        self._cycles_in_window = 0
        self._ruu_sum = 0
        self._lsq_sum = 0
        self._fetchq_sum = 0

    # --------------------------------------------------------------- queries

    @property
    def total_cycles(self) -> int:
        return sum(w.cycles for w in self.windows)

    @property
    def total_committed(self) -> int:
        return sum(w.committed for w in self.windows)
