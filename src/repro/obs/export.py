"""Machine-readable run artifacts: JSONL writers and the run manifest.

Every observed run can leave behind a directory of artifacts:

* ``manifest.json``  — one JSON object: configuration, end-of-run
  counters, power report, stall attribution, and the sampled windows;
* ``manifest.jsonl`` — the same content as typed records, one JSON
  object per line (``{"record": "config" | "stats" | "power" |
  "attribution" | "window", ...}``), for streaming consumers;
* ``windows.jsonl``  — the interval-sampler series, one window per line;
* ``events.jsonl``   — the raw pipeline event trace, one event per line
  (optional; event traces are large).

:func:`read_jsonl` round-trips any of these files.  The manifest schema
is versioned via the ``schema`` key so downstream regression tooling
can evolve safely.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.obs.attribution import StallAttribution
from repro.obs.events import Event, event_to_dict
from repro.obs.sampler import IntervalSampler, Window

#: Manifest schema identifier (bump on breaking layout changes).
SCHEMA = "repro-obs/1"


# ------------------------------------------------------------------ JSONL

def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write one JSON object per line; returns the record count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL file back into a list of dicts (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_events_jsonl(path: str | Path,
                       events: Iterable[Event]) -> int:
    """Serialize a pipeline event trace, one event per line."""
    return write_jsonl(path, (event_to_dict(e) for e in events))


def write_windows_jsonl(path: str | Path,
                        windows: Iterable[Window]) -> int:
    """Serialize an interval-sampler series, one window per line."""
    return write_jsonl(path, (w.as_dict() for w in windows))


# --------------------------------------------------------------- manifest

def build_manifest(result, *,
                   attribution: StallAttribution | None = None,
                   sampler: IntervalSampler | None = None,
                   workload: str | None = None,
                   scale: int | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble the run manifest from a
    :class:`~repro.core.machine.RunResult` plus optional obs layers."""
    manifest: dict = {
        "schema": SCHEMA,
        "name": result.name,
        "workload": workload if workload is not None else result.name,
        "scale": scale,
        "config": asdict(result.config),
        "stats": result.stats.as_dict(),
        "power": result.power.as_dict() if result.power else None,
        "attribution": attribution.as_dict() if attribution else None,
        "windows": ([w.as_dict() for w in sampler.windows]
                    if sampler else None),
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_records(manifest: dict) -> Iterable[dict]:
    """Flatten a manifest into typed JSONL records (one per line)."""
    head = {k: manifest[k] for k in ("schema", "name", "workload", "scale")}
    yield {"record": "run", **head}
    yield {"record": "config", "config": manifest["config"]}
    yield {"record": "stats", "stats": manifest["stats"]}
    if manifest.get("power") is not None:
        yield {"record": "power", "power": manifest["power"]}
    if manifest.get("attribution") is not None:
        yield {"record": "attribution",
               "attribution": manifest["attribution"]}
    if manifest.get("trace") is not None:
        # Cross-link into the engine trace (--trace-out): names the
        # span that produced this run (execute or cache.hit).
        yield {"record": "trace", **manifest["trace"]}
    for window in manifest.get("windows") or ():
        yield {"record": "window", **window}


def write_manifest(out_dir: str | Path, manifest: dict,
                   stem: str = "manifest") -> dict[str, Path]:
    """Write ``<stem>.json`` and ``<stem>.jsonl`` under ``out_dir``.

    Returns the paths written, keyed ``"json"`` / ``"jsonl"``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{stem}.json"
    json_path.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                         + "\n", encoding="utf-8")
    jsonl_path = out / f"{stem}.jsonl"
    write_jsonl(jsonl_path, manifest_records(manifest))
    return {"json": json_path, "jsonl": jsonl_path}


def read_manifest(path: str | Path) -> dict:
    """Load a ``manifest.json`` produced by :func:`write_manifest`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
