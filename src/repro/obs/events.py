"""Typed pipeline events emitted by the machine's event bus.

The :class:`~repro.core.machine.Machine` owns a plain subscriber list
and emits one event object per pipeline happening — fetch, I-cache
miss, dispatch, issue, pack join, replay trap, misprediction recovery,
completion, commit, squash.  Emission is guarded behind
``if self._subscribers:`` so that with no subscribers attached *no
event object is ever allocated*: the bus costs one truthiness check per
emission site, nothing more.

Every event is a small frozen dataclass carrying only JSON-friendly
scalars (ints, bools, strings), so the export layer can serialize any
event with :func:`event_to_dict` and consumers never need to hold
references into live machine state.

This module deliberately imports nothing from :mod:`repro.core` — the
core imports *us*, and the dependency must stay one-way.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, ClassVar


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every pipeline event happens at one machine cycle."""

    kind: ClassVar[str] = "event"
    cycle: int


@dataclass(frozen=True, slots=True)
class FetchEvent(Event):
    """An instruction arrived from the I-cache into the fetch queue.

    ``cycle`` is the arrival cycle — for an I-cache miss this is the
    fill-completion cycle, not the cycle the request was made.
    """

    kind: ClassVar[str] = "fetch"
    seq: int
    pc: int
    spec: bool      # fetched down a mispredicted (wrong) path
    text: str       # disassembly of the static instruction


@dataclass(frozen=True, slots=True)
class ICacheMissEvent(Event):
    """An instruction fetch missed in the L1 I-cache."""

    kind: ClassVar[str] = "icache_miss"
    pc: int
    latency: int    # total fill latency in cycles


@dataclass(frozen=True, slots=True)
class DispatchEvent(Event):
    """An instruction was renamed into the RUU/LSQ."""

    kind: ClassVar[str] = "dispatch"
    seq: int


@dataclass(frozen=True, slots=True)
class IssueEvent(Event):
    """An instruction began execution on a functional unit."""

    kind: ClassVar[str] = "issue"
    seq: int
    packed: bool = False    # issued inside a multi-op ALU pack
    replay: bool = False    # speculatively packed with one wide operand


@dataclass(frozen=True, slots=True)
class PackJoinEvent(Event):
    """An instruction joined an open ALU pack (paper Section 5)."""

    kind: ClassVar[str] = "pack_join"
    seq: int
    leader_seq: int     # the instruction that opened the pack
    size: int           # pack size after this join


@dataclass(frozen=True, slots=True)
class ReplayTrapEvent(Event):
    """A speculatively packed op overflowed and must re-issue full
    width (paper Section 5.3)."""

    kind: ClassVar[str] = "replay_trap"
    seq: int


@dataclass(frozen=True, slots=True)
class MispredictRecoverEvent(Event):
    """A mispredicted branch resolved: wrong path squashed, fetch
    redirected."""

    kind: ClassVar[str] = "mispredict_recover"
    seq: int            # the mispredicted branch
    resume_cycle: int   # cycle at which fetch restarts


@dataclass(frozen=True, slots=True)
class CompleteEvent(Event):
    """An instruction finished execution (result available)."""

    kind: ClassVar[str] = "complete"
    seq: int


@dataclass(frozen=True, slots=True)
class CommitEvent(Event):
    """An instruction retired in order."""

    kind: ClassVar[str] = "commit"
    seq: int


@dataclass(frozen=True, slots=True)
class SquashEvent(Event):
    """An in-flight instruction was discarded without committing."""

    kind: ClassVar[str] = "squash"
    seq: int


@dataclass(frozen=True, slots=True)
class InvariantViolationEvent(Event):
    """A machine invariant guard fired (:mod:`repro.robust.guards`).

    Emitted on the bus *before* the violation raises (or is collected
    in chaos mode), so observability subscribers see guard firings
    interleaved with the ordinary pipeline events that led up to them.
    ``seq`` is -1 for violations not tied to one instruction (e.g. an
    RUU accounting imbalance).
    """

    kind: ClassVar[str] = "invariant_violation"
    check: str
    seq: int = -1
    detail: str = ""


#: Every concrete event type, keyed by its ``kind`` tag.
EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (FetchEvent, ICacheMissEvent, DispatchEvent, IssueEvent,
                PackJoinEvent, ReplayTrapEvent, MispredictRecoverEvent,
                CompleteEvent, CommitEvent, SquashEvent,
                InvariantViolationEvent)
}

#: Signature of a bus subscriber.
Subscriber = Callable[[Event], None]


def event_to_dict(event: Event) -> dict:
    """Flatten an event to a JSON-serializable dict (``kind`` first)."""
    record: dict = {"kind": event.kind}
    for f in fields(event):
        record[f.name] = getattr(event, f.name)
    return record


def event_from_dict(record: dict) -> Event:
    """Rebuild a typed event from :func:`event_to_dict` output."""
    cls = EVENT_KINDS[record["kind"]]
    kwargs = {f.name: record[f.name] for f in fields(cls)}
    return cls(**kwargs)


class EventRecorder:
    """A bus subscriber that stores events in arrival order.

    ``limit`` bounds memory on long runs: once reached, further events
    are counted in :attr:`dropped` but not stored.
    """

    def __init__(self, limit: int | None = None,
                 kinds: tuple[str, ...] | None = None) -> None:
        self.events: list[Event] = []
        self.limit = limit
        self.kinds = frozenset(kinds) if kinds else None
        self.dropped = 0

    def __call__(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[Event]:
        """Recorded events of one kind, in arrival order."""
        return [e for e in self.events if e.kind == kind]

    def by_seq(self, kind: str) -> dict[int, Event]:
        """First recorded event of ``kind`` per instruction seq."""
        out: dict[int, Event] = {}
        for event in self.events:
            if event.kind == kind and event.seq not in out:
                out[event.seq] = event
        return out
