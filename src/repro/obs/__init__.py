"""Observability: pipeline events, interval sampling, CPI attribution,
and machine-readable run artifacts.

Three layers on top of the timing machine:

* **Event bus** (:mod:`repro.obs.events`) — the machine emits typed
  pipeline events through a subscriber list that costs nothing when
  empty; :class:`EventRecorder` captures traces and
  :class:`~repro.core.trace.PipelineTracer` is a subscriber.
* **Sampling + attribution** (:mod:`repro.obs.sampler`,
  :mod:`repro.obs.attribution`) — per-window time series and a
  top-down CPI accountant whose slot breakdown provably sums to
  ``issue_width × cycles``.
* **Export** (:mod:`repro.obs.export`, :mod:`repro.obs.cli`) — JSONL
  trace/series writers and a versioned run manifest, surfaced as the
  ``repro-obs`` console command and ``repro-experiments --obs-out``.
"""

from repro.obs.attribution import STALL_KINDS, StallAttribution
from repro.obs.events import (
    EVENT_KINDS,
    CommitEvent,
    CompleteEvent,
    DispatchEvent,
    Event,
    EventRecorder,
    FetchEvent,
    ICacheMissEvent,
    IssueEvent,
    MispredictRecoverEvent,
    PackJoinEvent,
    ReplayTrapEvent,
    SquashEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.export import (
    SCHEMA,
    build_manifest,
    read_jsonl,
    read_manifest,
    write_events_jsonl,
    write_jsonl,
    write_manifest,
    write_windows_jsonl,
)
from repro.obs.sampler import IntervalSampler, Window, window_from_dict

__all__ = [
    "EVENT_KINDS",
    "SCHEMA",
    "STALL_KINDS",
    "CommitEvent",
    "CompleteEvent",
    "DispatchEvent",
    "Event",
    "EventRecorder",
    "FetchEvent",
    "ICacheMissEvent",
    "IntervalSampler",
    "IssueEvent",
    "MispredictRecoverEvent",
    "PackJoinEvent",
    "ReplayTrapEvent",
    "SquashEvent",
    "StallAttribution",
    "Window",
    "build_manifest",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "read_manifest",
    "window_from_dict",
    "write_events_jsonl",
    "write_jsonl",
    "write_manifest",
    "write_windows_jsonl",
]
