"""Static width-dataflow analysis and simulator-invariant lint.

This package is the *static* counterpart of the paper's dynamic
narrow-width detection hardware (:mod:`repro.bitwidth`).  A forward
abstract interpretation over the ISA semantics computes, per static
instruction and per register, a conservative signed-value interval;
the interval's width classification (provably-fits-16 /
provably-fits-33 / wide) concretizes to exactly the value sets the
zero/ones-detect circuits of Figure 3 recognize, so every static fact
can be checked against the dynamic detector on a live simulation.

Three consumers build on the analysis:

* :class:`~repro.analysis.oracle.DifferentialOracle` — attaches to a
  running :class:`~repro.core.machine.Machine` and asserts the
  **static ⊆ dynamic** soundness invariant: any result the analyzer
  proves narrow must be tagged narrow by the dynamic detector, and any
  operation that dynamically packs must be statically pack-eligible
  (which makes the static pack-candidate count a true upper bound on
  observed packing).
* :func:`~repro.analysis.linter.lint_program` — rejects malformed
  workloads (writes to the zero register, unreachable blocks, reads of
  never-written registers, bad branch targets) with file/line
  diagnostics from the assembler's source map.
* the ``repro-lint`` CLI (:mod:`repro.analysis.cli`) and the ``lint``
  experiment, which render the static-vs-dynamic report through the
  run engine and its persistent cache.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import InstFacts, WidthAnalysis, analyze
from repro.analysis.effects import (
    EffectsAnalysis,
    MemoProof,
    analyze_effects,
)
from repro.analysis.intervals import BOOL, BYTE, TOP, WORD16, Interval
from repro.analysis.linter import Diagnostic, lint_program
from repro.analysis.liveness import LivenessAnalysis, analyze_liveness
from repro.analysis.oracle import DifferentialOracle, OracleViolation

__all__ = [
    "BOOL",
    "BYTE",
    "TOP",
    "WORD16",
    "Interval",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "InstFacts",
    "WidthAnalysis",
    "analyze",
    "EffectsAnalysis",
    "MemoProof",
    "analyze_effects",
    "LivenessAnalysis",
    "analyze_liveness",
    "Diagnostic",
    "lint_program",
    "DifferentialOracle",
    "OracleViolation",
]
