"""Per-block memory-effect summaries and block-memoization proofs.

This is the bridge between the static analyses and the fast backend's
block memoizer (:mod:`repro.fastsim.blockcache`): for every reachable
basic block it derives

* a **memory-effect summary** — ``pure`` (no memory traffic),
  ``load-only``, or ``stores`` — with the byte ranges each access can
  touch, taken from the signed-interval width fixpoint
  (:mod:`repro.analysis.dataflow`): a load/store's effective address
  interval is ``base + displacement`` in the interval domain, widened
  to the access size;
* a :class:`MemoProof` for the block's *body* (the straight-line run
  excluding a trailing control transfer or HALT, which the memoizer
  always executes live so prediction state never needs replaying).

A body is **memo-safe** — replaying its recorded register delta and
dynamic-instruction template is bit-exact for equal inputs — iff:

* it contains **no stores** (replay must not re-apply memory writes);
* every load's byte range is **disjoint from every reachable store's**
  byte range in the whole program, so the loaded bytes are immutable
  image bytes on every architected execution (width facts describe
  architected instances, and wrong-path stores land in the discarded
  speculative overlay, never main memory);
* it contains **no replay-trap-eligible operations** unless the operand
  intervals prove trap-freedom — i.e. no instruction whose static
  facts admit speculative replay packing
  (``InstFacts.replay_pack_possible``); a proven-impossible replay
  pack can never trap, so the proof is exactly the static packing
  eligibility run in reverse.

The proof also carries the body's upward-exposed reads (the memo key
restricted to the live-in set), its written registers (the recorded
delta's domain), and natural-loop membership from
:mod:`repro.analysis.liveness` (the memoizer's worth-recording hint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import intervals as iv
from repro.analysis.dataflow import WidthAnalysis, analyze
from repro.analysis.liveness import LivenessAnalysis
from repro.isa.instruction import Program
from repro.isa.opcodes import Opcode

#: Effect kinds, ordered from most to least memoization-friendly.
PURE = "pure"
LOAD_ONLY = "load-only"
STORES = "stores"


@dataclass(frozen=True)
class AccessRange:
    """Byte range one memory access can touch: ``[lo, hi]`` inclusive,
    or unbounded when the interval analysis lost the address."""

    index: int              # static instruction index
    is_store: bool
    lo: int = 0
    hi: int = 0
    unbounded: bool = False

    def overlaps(self, other: "AccessRange") -> bool:
        if self.unbounded or other.unbounded:
            return True
        return self.lo <= other.hi and other.lo <= self.hi


@dataclass(frozen=True)
class BlockEffects:
    """Memory-effect summary of one reachable basic block."""

    leader: int
    effect: str                         # PURE | LOAD_ONLY | STORES
    loads: tuple[AccessRange, ...]
    stores: tuple[AccessRange, ...]


@dataclass(frozen=True)
class MemoProof:
    """Whether one block's body may be memoized, and why (not)."""

    leader: int
    start: int
    end: int                            # one past the last instruction
    body_len: int                       # instructions the memoizer replays
    memo_safe: bool
    reasons: tuple[str, ...]            # empty when memo_safe
    trap_free: bool
    has_loads: bool
    #: upward-exposed reads of the body — the memo key's register set
    #: (a subset of the block's live-in set by construction)
    ue_regs: tuple[int, ...]
    #: registers the body writes — the recorded delta's domain
    defs: tuple[int, ...]
    in_loop: bool


def _access_range(analysis: WidthAnalysis, index: int,
                  size: int, is_store: bool) -> AccessRange:
    """Byte range of the memory access at ``index`` from its converged
    operand intervals (base in ``a``, displacement in ``b``)."""
    facts = analysis.facts[index]
    if facts is None:
        return AccessRange(index=index, is_store=is_store, unbounded=True)
    addr = iv.add(facts.a, facts.b)
    # Addresses are unsigned; an interval reaching into the negatives
    # (or TOP) means the analysis lost it — treat as anywhere.
    if addr.lo < 0 or addr == iv.TOP:
        return AccessRange(index=index, is_store=is_store, unbounded=True)
    return AccessRange(index=index, is_store=is_store,
                       lo=addr.lo, hi=addr.hi + size - 1)


class EffectsAnalysis:
    """Effects + memo proofs for one program; run :meth:`run` once."""

    def __init__(self, program: Program,
                 width: WidthAnalysis | None = None,
                 liveness: LivenessAnalysis | None = None) -> None:
        self.program = program
        self.width = width or analyze(program)
        self.cfg = self.width.cfg
        self.liveness = (liveness
                         or LivenessAnalysis(program, self.cfg)).run()
        #: leader -> effect summary (reachable blocks only)
        self.effects: dict[int, BlockEffects] = {}
        #: leader -> memo proof (reachable blocks only)
        self.proofs: dict[int, MemoProof] = {}
        #: every reachable store's byte range, program-wide
        self.store_ranges: tuple[AccessRange, ...] = ()
        #: every reachable load's byte range, program-wide
        self.load_ranges: tuple[AccessRange, ...] = ()
        self._ran = False

    # ----------------------------------------------------------------- run

    def run(self) -> "EffectsAnalysis":
        if self._ran:
            return self
        self._ran = True
        program = self.program
        analysis = self.width
        instructions = program.instructions

        loads: list[AccessRange] = []
        stores: list[AccessRange] = []
        per_block_loads: dict[int, list[AccessRange]] = {}
        per_block_stores: dict[int, list[AccessRange]] = {}
        for block in self.cfg.reachable_blocks():
            bl: list[AccessRange] = []
            bs: list[AccessRange] = []
            for i in range(block.start, block.end):
                inst = instructions[i]
                if inst.is_load:
                    bl.append(_access_range(analysis, i, inst.mem_size,
                                            is_store=False))
                elif inst.is_store:
                    bs.append(_access_range(analysis, i, inst.mem_size,
                                            is_store=True))
            per_block_loads[block.start] = bl
            per_block_stores[block.start] = bs
            loads.extend(bl)
            stores.extend(bs)
            effect = (STORES if bs else LOAD_ONLY if bl else PURE)
            self.effects[block.start] = BlockEffects(
                leader=block.start, effect=effect,
                loads=tuple(bl), stores=tuple(bs))
        self.load_ranges = tuple(loads)
        self.store_ranges = tuple(stores)

        for block in self.cfg.reachable_blocks():
            self.proofs[block.start] = self._prove(block.start,
                                                   block.end)
        return self

    def _prove(self, start: int, end: int) -> MemoProof:
        program = self.program
        instructions = program.instructions
        analysis = self.width

        last = instructions[end - 1]
        body_end = end - 1 if (last.is_branch
                               or last.opcode is Opcode.HALT) else end
        body_len = body_end - start
        reasons: list[str] = []
        has_loads = False
        trap_free = True

        if body_len <= 0:
            reasons.append("empty body (lone control transfer)")

        for i in range(start, body_end):
            inst = instructions[i]
            facts = analysis.facts[i]
            if inst.is_store:
                reasons.append(f"inst#{i} stores to memory")
                continue
            if inst.is_load:
                has_loads = True
                rng = _access_range(analysis, i, inst.mem_size,
                                    is_store=False)
                if rng.unbounded:
                    reasons.append(f"inst#{i} load address is "
                                   f"statically unbounded")
                else:
                    clash = next((s for s in self.store_ranges
                                  if rng.overlaps(s)), None)
                    if clash is not None:
                        where = ("anywhere" if clash.unbounded else
                                 f"[{clash.lo:#x}, {clash.hi:#x}]")
                        reasons.append(
                            f"inst#{i} load [{rng.lo:#x}, {rng.hi:#x}] "
                            f"may alias store inst#{clash.index} "
                            f"({where})")
            if facts is not None and facts.replay_pack_possible:
                trap_free = False

        ue, defs = LivenessAnalysis.block_use_defs(program, start,
                                                   body_end)
        return MemoProof(
            leader=start, start=start, end=end, body_len=body_len,
            memo_safe=not reasons, reasons=tuple(reasons),
            trap_free=trap_free, has_loads=has_loads,
            ue_regs=tuple(sorted(ue)), defs=tuple(sorted(defs)),
            in_loop=start in self.liveness.loop_blocks)

    # ------------------------------------------------------------ summaries

    def summary(self) -> dict:
        """Aggregate statistics for reports and the bench columns."""
        self.run()
        proofs = list(self.proofs.values())
        safe = [p for p in proofs if p.memo_safe]
        effects = list(self.effects.values())
        return {
            "blocks": len(proofs),
            "pure_blocks": sum(e.effect == PURE for e in effects),
            "load_only_blocks": sum(e.effect == LOAD_ONLY
                                    for e in effects),
            "store_blocks": sum(e.effect == STORES for e in effects),
            "memo_safe_blocks": len(safe),
            "memo_safe_insts": sum(p.body_len for p in safe),
            "memo_safe_in_loops": sum(p.in_loop for p in safe),
            "trap_free_blocks": sum(p.trap_free for p in proofs),
            "loop_blocks": len(self.liveness.loop_blocks),
        }

    def report(self) -> str:
        """Per-block text table for ``repro-lint --effects-report``."""
        self.run()
        lines = [f"{'block':>10s} {'len':>4s} {'effect':>9s} "
                 f"{'loop':>4s} {'memo':>5s} {'trapfree':>8s} "
                 f"{'key regs':12s} reason"]
        for lead in sorted(self.proofs):
            p = self.proofs[lead]
            e = self.effects[lead]
            key = ",".join(f"r{r}" for r in p.ue_regs) or "-"
            reason = p.reasons[0] if p.reasons else "-"
            lines.append(
                f"{p.start:>4d}..{p.end - 1:<4d} {p.body_len:>4d} "
                f"{e.effect:>9s} {'yes' if p.in_loop else '-':>4s} "
                f"{'safe' if p.memo_safe else '-':>5s} "
                f"{'yes' if p.trap_free else '-':>8s} "
                f"{key:12s} {reason}")
        return "\n".join(lines)


def analyze_effects(program: Program,
                    width: WidthAnalysis | None = None,
                    liveness: LivenessAnalysis | None = None,
                    ) -> EffectsAnalysis:
    """Run width, liveness, and effects analyses; return the effects."""
    return EffectsAnalysis(program, width, liveness).run()
