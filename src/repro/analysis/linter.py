"""Program linter: structural checks over assembled workloads.

The assembler already rejects malformed *syntax* (bad literals,
undefined labels) at build time; this linter checks the assembled
:class:`~repro.isa.instruction.Program` for the mistakes that survive
assembly and silently distort simulation results:

* **L001 bad-target** — a branch target outside the program (the fetch
  unit turns it into a HALT, which is almost never what was meant);
* **L002 zero-write** — an instruction computes a result into R31,
  i.e. does work the register file discards;
* **L003 unreachable** — a basic block no CFG path from the entry
  reaches (dead code inflates the static footprint and often marks a
  wiring mistake in branch structure);
* **L004 undefined-read** — a register read by reachable code but
  written by none of it (reads architectural zero: legal, but usually
  a forgotten initialization);
* **L005 indirect** — a ``jmp``/``jsr`` whose target set is statically
  unresolvable, so every analysis downstream of the CFG is maximally
  conservative (informational);
* **L006 dead-write** — a register write no CFG path reads before the
  next write of the same register (from the backward liveness fixpoint,
  :mod:`repro.analysis.liveness`; the CFG over-approximates indirect
  flow, so every finding is a provably dead write, never a maybe);
* **L007 dead-store** — a store whose byte range (from the interval
  fixpoint) is provably disjoint from every reachable load's byte
  range: the stored bytes can never be observed by the program.

Diagnostics carry the emitting ``file:line`` when the program has an
assembler source map, so a finding points at the workload-builder
statement rather than a bare instruction index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import WidthAnalysis, analyze
from repro.analysis.effects import EffectsAnalysis
from repro.isa.instruction import Program
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import REG_INDEX, REG_NAMES, ZERO_REG

#: Registers conventionally live-in despite never being written inside
#: a block of interest: none — every workload runs from a zeroed file
#: and must set up its own state (standard_prologue writes sp).
_RESULT_CLASSES = (OpClass.INT_ARITH, OpClass.INT_MULT,
                   OpClass.INT_LOGIC, OpClass.INT_SHIFT, OpClass.LOAD)

#: Registers conventionally live-*out* at every program point: the
#: stack pointer is established by the shared prologue as ABI
#: convention whether or not the kernel touches the stack, so a "dead"
#: sp write is calling-convention setup, not a mistake — L006 skips it.
_ABI_LIVE = frozenset({REG_INDEX["sp"]})


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, anchored to a static instruction."""

    code: str           # "L001".."L007"
    severity: str       # "error" | "warning" | "info"
    index: int          # static instruction index (-1: whole program)
    message: str
    location: str | None = None     # "file:line" when the srcmap knows

    def __str__(self) -> str:
        where = self.location or f"inst#{self.index}"
        return f"{where}: {self.severity} {self.code}: {self.message}"


def _location(program: Program, index: int) -> str | None:
    source = program.source_of(index)
    if source is None:
        return None
    path, line = source
    return f"{path}:{line}"


def lint_program(program: Program,
                 analysis: WidthAnalysis | None = None,
                 effects: EffectsAnalysis | None = None,
                 ) -> list[Diagnostic]:
    """Lint ``program``; reuses ``analysis`` (and ``effects``) when the
    caller already ran them (the CLI does, to render widths, memo
    proofs, and lint from one set of fixpoints)."""
    analysis = analysis or analyze(program)
    effects = (effects
               or EffectsAnalysis(program, width=analysis)).run()
    cfg = analysis.cfg
    n = len(program)
    out: list[Diagnostic] = []

    def emit(code: str, severity: str, index: int, message: str) -> None:
        out.append(Diagnostic(code=code, severity=severity, index=index,
                              message=message,
                              location=_location(program, index)))

    for i, inst in enumerate(program.instructions):
        if inst.target is not None and not 0 <= inst.target < n:
            emit("L001", "error", i,
                 f"{inst}: branch target {inst.target} is outside the "
                 f"program (0..{n - 1})")
        if (inst.rd == ZERO_REG and inst.op_class in _RESULT_CLASSES):
            emit("L002", "warning", i,
                 f"{inst}: result is written to the zero register "
                 f"and discarded")

    for block in sorted(cfg.blocks.values(), key=lambda b: b.start):
        if block.start not in cfg.reachable:
            emit("L003", "warning", block.start,
                 f"unreachable block: instructions "
                 f"{block.start}..{block.end - 1}")

    never_written = analysis.read_regs - analysis.written_regs
    for reg in sorted(never_written):
        if reg == ZERO_REG:
            continue
        # Anchor the diagnostic at the first reachable read.
        index = next(
            (i for i, inst in enumerate(program.instructions)
             if i in cfg.reachable and reg in inst.src_regs()), -1)
        emit("L004", "warning", index,
             f"register {REG_NAMES[reg]} is read but never written "
             f"(reads architectural zero)")

    for index in cfg.unresolved:
        inst = program.instructions[index]
        emit("L005", "info", index,
             f"{inst}: indirect target is statically unresolvable; "
             f"analysis treats every block as a possible successor")

    for index in effects.liveness.dead_writes():
        inst = program.instructions[index]
        dest = inst.dest_reg()
        if dest in _ABI_LIVE:
            continue
        emit("L006", "warning", index,
             f"{inst}: write to {REG_NAMES[dest]} is dead — every CFG "
             f"path rewrites the register (or halts) before reading it")

    # Stores in an exit block (terminated by HALT) are the program's
    # result emission — observable output by convention, exempt even
    # though no instruction loads them back.
    output_stores = {
        store.index
        for block in cfg.reachable_blocks()
        if program.instructions[block.end - 1].opcode is Opcode.HALT
        for store in effects.effects[block.start].stores}
    for store in effects.store_ranges:
        if store.index in output_stores:
            continue
        if any(store.overlaps(load) for load in effects.load_ranges):
            continue
        inst = program.instructions[store.index]
        where = ("anywhere" if store.unbounded
                 else f"[{store.lo:#x}, {store.hi:#x}]")
        emit("L007", "warning", store.index,
             f"{inst}: stored bytes {where} are provably never loaded "
             f"by reachable code")

    return out


def max_severity(diagnostics: list[Diagnostic]) -> str | None:
    """Worst severity present (``error`` > ``warning`` > ``info``)."""
    order = {"error": 2, "warning": 1, "info": 0}
    if not diagnostics:
        return None
    return max(diagnostics, key=lambda d: order[d.severity]).severity
