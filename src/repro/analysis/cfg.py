"""Control-flow graph recovery for assembled programs.

Programs come out of :mod:`repro.asm.assembler` as flat instruction
lists with resolved branch-target *indices* (:mod:`repro.asm.layout`
fixes the address map).  This module splits them into basic blocks and
computes a conservative successor relation:

* conditional branches: taken target + fall-through;
* ``br``/``bsr``: the direct target (a ``bsr``'s fall-through is a
  *return point*, reached via a matching ``ret``, not directly);
* ``ret``: every return point in the program (the instruction after
  each ``bsr``/``jsr``) — return addresses are data, so any call site
  may be the dynamic matcher;
* ``jmp``/``jsr``: statically unresolved — conservatively every block
  leader plus every return point (and the linter flags the program as
  imprecisely analyzable);
* the last instruction of the program falls through to an implicit
  ``HALT`` (matching :meth:`repro.isa.instruction.Program.fetch`), so
  running off the end terminates rather than escapes the CFG.

The successor relation deliberately over-approximates: the dynamic
CFG-edge check in :class:`repro.analysis.oracle.DifferentialOracle`
verifies that every *architected* control transfer the simulator
performs stays on these edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import CALL_OPS, Opcode, OpClass


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int                      # first instruction index
    end: int                        # one past the last instruction
    succs: tuple[int, ...]          # leader indices of successor blocks

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class CFG:
    """Basic blocks plus instruction-level successor sets."""

    program: Program
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    #: leader index of the block containing each instruction
    leader_of: list[int] = field(default_factory=list)
    #: indices reachable from the entry block
    reachable: set[int] = field(default_factory=set)
    #: return points (instruction after each bsr/jsr call site)
    return_points: tuple[int, ...] = ()
    #: statically unresolved indirect transfers (jmp/jsr indices)
    unresolved: tuple[int, ...] = ()

    def successors(self, index: int) -> tuple[int, ...]:
        """Successor instruction indices of instruction ``index``."""
        block = self.blocks[self.leader_of[index]]
        if index < block.end - 1:
            return (index + 1,)
        return block.succs

    def is_edge(self, src: int, dst: int) -> bool:
        """True if ``src -> dst`` is a CFG edge (architected control
        transfers must all satisfy this)."""
        return dst in self.successors(src)

    def reachable_blocks(self) -> list[BasicBlock]:
        return [b for lead, b in sorted(self.blocks.items())
                if lead in self.reachable]


def _terminator_targets(inst: Instruction, index: int, n: int,
                        return_points: tuple[int, ...],
                        leaders_hint: list[int]) -> tuple[int, ...]:
    """Successor indices contributed by a control instruction."""
    op = inst.opcode
    if op is Opcode.HALT:
        return ()
    if inst.is_conditional:
        return tuple(dict.fromkeys(
            t for t in (inst.target, index + 1) if t is not None))
    if op is Opcode.BR or op is Opcode.BSR:
        return (inst.target,) if inst.target is not None else ()
    if op is Opcode.RET:
        return return_points
    if op in (Opcode.JMP, Opcode.JSR):
        # Unresolvable indirect target: every plausible entry point.
        return tuple(sorted(set(leaders_hint) | set(return_points)))
    return (index + 1,) if index + 1 < n else ()


def build_cfg(program: Program) -> CFG:
    """Recover basic blocks and the successor relation of ``program``."""
    instructions = program.instructions
    n = len(instructions)
    cfg = CFG(program=program)
    if n == 0:
        return cfg

    return_points = tuple(
        i + 1 for i, inst in enumerate(instructions)
        if inst.opcode in CALL_OPS and i + 1 < n)
    unresolved = tuple(
        i for i, inst in enumerate(instructions)
        if inst.opcode in (Opcode.JMP, Opcode.JSR))

    # Pass 1: block leaders — the entry, every branch target, and every
    # instruction following a control transfer (including return points).
    leaders = {program.entry if 0 <= program.entry < n else 0}
    for i, inst in enumerate(instructions):
        if inst.target is not None and 0 <= inst.target < n:
            leaders.add(inst.target)
        cls = inst.op_class
        if (cls is OpClass.BRANCH or cls is OpClass.JUMP
                or inst.opcode is Opcode.HALT):
            if i + 1 < n:
                leaders.add(i + 1)
    leaders.update(p for p in return_points if p < n)
    ordered = sorted(leaders)
    leaders_hint = ordered

    # Pass 2: blocks with successor sets.
    boundaries = ordered + [n]
    blocks: dict[int, BasicBlock] = {}
    leader_of = [0] * n
    for start, end in zip(boundaries, boundaries[1:]):
        for i in range(start, end):
            leader_of[i] = start
        last = instructions[end - 1]
        cls = last.op_class
        if (cls is OpClass.BRANCH or cls is OpClass.JUMP
                or last.opcode is Opcode.HALT):
            succs = _terminator_targets(last, end - 1, n, return_points,
                                        leaders_hint)
        else:
            # Fall-through (possibly off the end = implicit HALT).
            succs = (end,) if end < n else ()
        # Clip targets that escape the program (the fetch unit turns
        # them into HALT); the linter reports them separately.
        succs = tuple(s for s in succs if 0 <= s < n)
        blocks[start] = BasicBlock(start=start, end=end, succs=succs)

    cfg.blocks = blocks
    cfg.leader_of = leader_of
    cfg.return_points = return_points
    cfg.unresolved = unresolved

    # Pass 3: reachability from the entry block.
    entry = leader_of[program.entry] if 0 <= program.entry < n else 0
    seen: set[int] = set()
    stack = [entry]
    while stack:
        lead = stack.pop()
        if lead in seen:
            continue
        seen.add(lead)
        stack.extend(s for s in blocks[lead].succs if s not in seen)
    cfg.reachable = {
        i for lead in seen for i in range(blocks[lead].start,
                                         blocks[lead].end)}
    return cfg
