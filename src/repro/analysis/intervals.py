"""Signed-value intervals: the abstract domain of the width analyzer.

An :class:`Interval` ``[lo, hi]`` abstracts the set of *signed* 64-bit
values a register may hold (the machine stores unsigned bit patterns;
:func:`repro.isa.semantics.to_signed` is the bridge).  The key query is
:meth:`Interval.fits`: an interval fits width ``w`` exactly when every
value in it satisfies :func:`repro.bitwidth.detect.is_narrow` at ``w``
— i.e. lies in :func:`repro.bitwidth.detect.narrow_range`.  This makes
"the analyzer proved it narrow" and "the zero/ones-detect hardware will
tag it narrow" the same statement about the same value set, which is
what the differential oracle relies on.

Termination of the fixpoint is guaranteed by *threshold widening*
(:meth:`Interval.widen`): a bound that keeps moving is snapped outward
to the next member of a small fixed set of cut points (powers of two
around the paper's 16/33-bit cuts), so every chain of widenings is
finite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.detect import WORD_WIDTH, narrow_range

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: Widening cut points: the signed bounds that matter to the paper's
#: two hardware cuts (16/33) plus the natural power-of-two landmarks.
_CUTS = (1, 8, 15, 16, 31, 32, 33, 47, 48)
_THRESHOLDS = tuple(sorted(
    {INT64_MIN, INT64_MAX, -1, 0}
    | {-(1 << c) for c in _CUTS}
    | {(1 << c) - 1 for c in _CUTS}
))


def _signed_width(value: int) -> int:
    """Significant bits of a signed value, matching
    :func:`repro.bitwidth.detect.effective_width` on the unsigned
    two's-complement pattern."""
    if value < 0:
        value = ~value
    return max(1, value.bit_length())


@dataclass(frozen=True, slots=True)
class Interval:
    """A non-empty closed interval of signed 64-bit values."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not INT64_MIN <= self.lo <= self.hi <= INT64_MAX:
            raise ValueError(f"bad interval [{self.lo}, {self.hi}]")

    # -- queries -----------------------------------------------------------

    def contains(self, signed_value: int) -> bool:
        return self.lo <= signed_value <= self.hi

    def fits(self, width: int) -> bool:
        """Every value in the interval is narrow at ``width`` (would be
        recognized by the zero/ones detect at that cut)."""
        lo, hi = narrow_range(width)
        return lo <= self.lo and self.hi <= hi

    def excludes(self, width: int) -> bool:
        """No value in the interval is narrow at ``width`` — the
        dynamic detector can *never* tag such an operand narrow."""
        lo, hi = narrow_range(width)
        return self.hi < lo or self.lo > hi

    def may_fit(self, width: int) -> bool:
        """Some value in the interval is narrow at ``width``."""
        return not self.excludes(width)

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    def width_bound(self) -> int:
        """Minimum ``w`` (1..64) such that the whole interval is narrow
        at ``w`` — the static analogue of
        :func:`repro.bitwidth.detect.effective_width`, maximized over
        the interval (which is attained at an endpoint)."""
        return min(WORD_WIDTH,
                   max(_signed_width(self.lo), _signed_width(self.hi)))

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if other.lo >= self.lo and other.hi <= self.hi:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Widen ``self`` (the established state) against ``newer``:
        any bound that moved outward snaps to the next threshold, so
        repeated widening reaches a fixpoint in O(#thresholds) steps."""
        lo, hi = self.lo, self.hi
        if newer.lo < lo:
            lo = max((t for t in _THRESHOLDS if t <= newer.lo),
                     default=INT64_MIN)
        if newer.hi > hi:
            hi = min((t for t in _THRESHOLDS if t >= newer.hi),
                     default=INT64_MAX)
        return Interval(lo, hi)


TOP = Interval(INT64_MIN, INT64_MAX)
ZERO = Interval(0, 0)
BOOL = Interval(0, 1)
BYTE = Interval(0, 255)
WORD16 = Interval(0, 0xFFFF)
INT32 = Interval(-(1 << 31), (1 << 31) - 1)
#: Result range of a logical/arithmetic right shift by at least one.
NONNEG = Interval(0, INT64_MAX)


def const(signed_value: int) -> Interval:
    """Singleton interval of one signed value."""
    return Interval(signed_value, signed_value)


def from_u64(value: int) -> Interval:
    """Singleton interval of one 64-bit unsigned register pattern."""
    if value & (1 << 63):
        value -= 1 << 64
    return Interval(value, value)


def _clamped(lo: int, hi: int) -> Interval:
    """Exact interval if it fits in signed 64 bits, else TOP (the
    operation may wrap around, losing all bound information)."""
    if INT64_MIN <= lo and hi <= INT64_MAX:
        return Interval(lo, hi)
    return TOP


# -- arithmetic ------------------------------------------------------------


def add(a: Interval, b: Interval) -> Interval:
    return _clamped(a.lo + b.lo, a.hi + b.hi)


def sub(a: Interval, b: Interval) -> Interval:
    return _clamped(a.lo - b.hi, a.hi - b.lo)


def scale_add(scale: int, a: Interval, b: Interval) -> Interval:
    """``scale*a + b`` (the s4addq/s8addq addressing idiom)."""
    return _clamped(scale * a.lo + b.lo, scale * a.hi + b.hi)


def mul(a: Interval, b: Interval) -> Interval:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return _clamped(min(products), max(products))


def sext32_of(raw: Interval) -> Interval:
    """Result of sign-extending the low 32 bits of a computation whose
    *true* (unwrapped) result lies in ``raw``: exact when the true
    result already fits in 32 bits, else the full int32 range."""
    if INT32.lo <= raw.lo and raw.hi <= INT32.hi:
        return raw
    return INT32


def add32(a: Interval, b: Interval) -> Interval:
    return sext32_of(_clamped(a.lo + b.lo, a.hi + b.hi))


def sub32(a: Interval, b: Interval) -> Interval:
    return sext32_of(_clamped(a.lo - b.hi, a.hi - b.lo))


def mul32(a: Interval, b: Interval) -> Interval:
    return sext32_of(mul(a, b))


# -- bitwise ---------------------------------------------------------------


def _sign_extension_hull(a: Interval, b: Interval) -> Interval:
    """Sound result range for any bitwise combination of two values.

    If ``x`` sign-extends from ``wa`` bits and ``y`` from ``wb`` bits,
    then above ``W = max(wa, wb)`` every bit of ``x`` (and of ``y``) is
    a copy of its sign bit, so every bit of ``f(x, y)`` above ``W`` is
    the same function of the two sign bits — constant.  The result's
    upper bits are therefore all-zero or all-one: it is narrow at
    ``W``, i.e. lies in ``narrow_range(W)``.
    """
    w = max(a.width_bound(), b.width_bound())
    if w >= WORD_WIDTH:
        return TOP
    lo, hi = narrow_range(w)
    return Interval(lo, hi)


def bit_and(a: Interval, b: Interval) -> Interval:
    if a.is_constant and b.is_constant:
        return const(a.lo & b.lo)
    if a.lo >= 0 and b.lo >= 0:
        # Non-negative: AND can only clear bits.
        return Interval(0, min(a.hi, b.hi))
    if a.lo >= 0:
        return Interval(0, a.hi)    # b's sign is irrelevant: r <= a
    if b.lo >= 0:
        return Interval(0, b.hi)
    return _sign_extension_hull(a, b)


def bit_or(a: Interval, b: Interval) -> Interval:
    if a.is_constant and b.is_constant:
        return const(a.lo | b.lo)
    hull = _sign_extension_hull(a, b)
    if a.lo >= 0 and b.lo >= 0:
        # Non-negative: OR can only set bits below the hull's cut.
        return Interval(max(a.lo, b.lo), hull.hi)
    return hull


def bit_xor(a: Interval, b: Interval) -> Interval:
    if a.is_constant and b.is_constant:
        return const(a.lo ^ b.lo)
    hull = _sign_extension_hull(a, b)
    if a.lo >= 0 and b.lo >= 0:
        return Interval(0, hull.hi)
    return hull


def bit_not(a: Interval) -> Interval:
    return Interval(~a.hi, ~a.lo)


def bit_bic(a: Interval, b: Interval) -> Interval:
    """``a & ~b``."""
    return bit_and(a, bit_not(b))


def bit_ornot(a: Interval, b: Interval) -> Interval:
    """``a | ~b``."""
    return bit_or(a, bit_not(b))


def bit_eqv(a: Interval, b: Interval) -> Interval:
    """``a ^ ~b``."""
    return bit_xor(a, bit_not(b))


# -- shifts ----------------------------------------------------------------


def _shift_amount(b: Interval) -> Interval:
    """The effective shift count ``b & 0x3F``: ``b`` itself when it is
    provably in range, otherwise anything in 0..63."""
    if 0 <= b.lo and b.hi <= 63:
        return b
    return Interval(0, 63)


def shl(a: Interval, b: Interval) -> Interval:
    amount = _shift_amount(b)
    if a.lo >= 0:
        return _clamped(a.lo << amount.lo, a.hi << amount.hi)
    if amount.is_constant:
        return _clamped(a.lo << amount.lo, a.hi << amount.lo)
    return TOP


def shr_logical(a: Interval, b: Interval) -> Interval:
    amount = _shift_amount(b)
    if a.lo >= 0:
        return Interval(a.lo >> amount.hi, a.hi >> amount.lo)
    if amount.lo >= 1:
        # Even a negative pattern becomes a non-negative 64-amount.lo
        # bit value once at least one zero is shifted in.
        return Interval(0, (1 << (64 - amount.lo)) - 1)
    return TOP


def shr_arith(a: Interval, b: Interval) -> Interval:
    amount = _shift_amount(b)
    if amount.is_constant:
        return Interval(a.lo >> amount.lo, a.hi >> amount.lo)
    # Any arithmetic shift moves a value toward 0 (or -1): the result
    # lies between the original and the -1..0 band.
    return Interval(min(a.lo, -1), max(a.hi, 0))


# -- byte selects ----------------------------------------------------------


def zapnot(a: Interval, b: Interval) -> Interval:
    """Keep the bytes of ``a`` selected by ``b``, zero the rest."""
    if b.is_constant:
        mask = b.lo & 0xFF
        if not mask & 0x80:
            # Sign byte cleared: result is a non-negative value built
            # from the kept low bytes.
            top_byte = max((i for i in range(8) if mask & (1 << i)),
                           default=-1)
            return Interval(0, (1 << (8 * (top_byte + 1))) - 1)
    if a.lo >= 0:
        return Interval(0, a.hi)    # zeroing bytes cannot increase it
    return TOP
