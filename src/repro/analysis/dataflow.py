"""Forward width-dataflow analysis over the ISA semantics.

A worklist fixpoint propagates per-register signed-value intervals
(:mod:`repro.analysis.intervals`) through the basic blocks of a
recovered CFG (:mod:`repro.analysis.cfg`).  Transfer functions mirror
:func:`repro.isa.semantics.compute` operation by operation — including
the Alpha details that drive the paper's width statistics: ``lda``
displacement arithmetic, ``ldah``'s 16-bit shift, the 32-bit
sign-extending ``addl``/``subl``/``mull``, sub-word loads, and the
``bsr``/``jsr`` return-address writes (exact code-address constants).

The analysis applies *branch-condition refinement* on CFG edges: the
taken edge of ``bgt t0, loop`` carries ``t0 >= 1`` into the target, the
fall-through carries ``t0 <= 0``.  Without it a down-counted loop
counter abstractly wraps below ``INT64_MIN`` and widens to TOP; with it
the counter stays provably narrow — the heart of the paper's static
narrow-width story.  The facts therefore describe *architected*
(non-speculative) instances, which always follow actual branch
outcomes; the differential oracle checks exactly those.

The product is one :class:`InstFacts` per *reachable* static
instruction: conservative intervals for the ALU operand pair and the
result, the derived narrow-at-16/33 proofs, and the static packing
eligibility used to upper-bound issue-time packing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import intervals as iv
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.intervals import INT64_MAX, INT64_MIN, Interval
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction, Program
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import NUM_INT_REGS, ZERO_REG
from repro.packing.pack import static_pack_candidate

#: Re-visits of a block before widening kicks in (plain joins first, so
#: short chains converge exactly; widening then forces termination).
_WIDEN_AFTER = 4

_ZERO = iv.ZERO

#: Result interval of each load flavour (no memory modeling: the
#: zero-extended sub-word loads and the sign-extending ldl are bounded
#: by their width, a full quadword load is unknown).
_LOAD_RESULT = {
    Opcode.LDQ: iv.TOP,
    Opcode.LDL: iv.INT32,
    Opcode.LDWU: iv.WORD16,
    Opcode.LDBU: iv.BYTE,
}


def _refine_condition(op: Opcode, interval: Interval,
                      taken: bool) -> Interval | None:
    """Intersect ``interval`` with a branch condition's truth set
    (mirroring :func:`repro.isa.semantics.branch_taken`); None when
    the edge is infeasible.  This is what keeps loop counters bounded:
    the back edge of ``bgt t0, loop`` carries ``t0 >= 1``, so the
    counter cannot wrap below its exit bound in the abstract.
    """
    if op is Opcode.BEQ or op is Opcode.BNE:
        want_zero = (op is Opcode.BEQ) == taken
        if want_zero:
            return iv.ZERO if interval.contains(0) else None
        # a != 0: only endpoint-tight refinement is expressible.
        lo, hi = interval.lo, interval.hi
        if lo == 0 == hi:
            return None
        if lo == 0:
            lo = 1
        if hi == 0:
            hi = -1
        return Interval(lo, hi)
    if op is Opcode.BGT:
        bound = Interval(1, INT64_MAX) if taken else Interval(INT64_MIN, 0)
    elif op is Opcode.BGE:
        bound = Interval(0, INT64_MAX) if taken else Interval(INT64_MIN, -1)
    elif op is Opcode.BLT:
        bound = Interval(INT64_MIN, -1) if taken else Interval(0, INT64_MAX)
    elif op is Opcode.BLE:
        bound = Interval(INT64_MIN, 0) if taken else Interval(1, INT64_MAX)
    else:
        return interval    # blbc/blbs: the low bit says nothing in order
    lo = max(interval.lo, bound.lo)
    hi = min(interval.hi, bound.hi)
    if lo > hi:
        return None
    return Interval(lo, hi)


@dataclass(frozen=True)
class InstFacts:
    """Static facts proven for one reachable instruction."""

    index: int
    #: conservative intervals for the ALU operand pair (the same pair
    #: the feed records in ``DynInst.a_val``/``b_val``).
    a: Interval
    b: Interval
    #: conservative interval for the produced result (None when the
    #: instruction produces none: stores, branches, nop/halt).
    result: Interval | None
    #: static packing eligibility (see ``static_pack_candidate``)
    full_pack_possible: bool = False
    replay_pack_possible: bool = False

    @property
    def result_narrow16(self) -> bool:
        return self.result is not None and self.result.fits(16)

    @property
    def result_narrow33(self) -> bool:
        return self.result is not None and self.result.fits(33)

    @property
    def pack_possible(self) -> bool:
        return self.full_pack_possible or self.replay_pack_possible


class WidthAnalysis:
    """Abstract interpretation of one program; run :meth:`run` once."""

    def __init__(self, program: Program, cfg: CFG | None = None) -> None:
        self.program = program
        self.cfg = cfg or build_cfg(program)
        #: block leader -> per-register in-state (list of Interval)
        self.in_states: dict[int, list[Interval]] = {}
        #: per-instruction facts; None for unreachable instructions
        self.facts: list[InstFacts | None] = [None] * len(program)
        #: registers written by at least one reachable instruction
        self.written_regs: set[int] = set()
        #: registers read by at least one reachable instruction
        self.read_regs: set[int] = set()
        self._ran = False

    # -- operand resolution (mirrors Feed._operands / _mem_operands) ------

    def _operand_pair(self, inst: Instruction,
                      state: list[Interval]) -> tuple[Interval, Interval]:
        cls = inst.op_class
        if cls is OpClass.LOAD or cls is OpClass.STORE:
            base = self._read(state, inst.rb)
            disp = iv.const(inst.imm) if inst.imm is not None else _ZERO
            return base, disp
        if cls is OpClass.BRANCH:
            if inst.is_conditional:
                return self._read(state, inst.ra), _ZERO
            return _ZERO, _ZERO         # br/bsr carry no ALU operands
        if cls is OpClass.JUMP:
            return self._read(state, inst.rb), _ZERO
        if cls in (OpClass.NOP, OpClass.HALT):
            return _ZERO, _ZERO
        # Operate format: ra plus register-or-literal rb.
        a = self._read(state, inst.ra)
        if inst.rb is not None:
            b = self._read(state, inst.rb)
        elif inst.imm is not None:
            b = iv.const(inst.imm)
        else:
            b = _ZERO
        return a, b

    @staticmethod
    def _read(state: list[Interval], reg: int | None) -> Interval:
        if reg is None or reg == ZERO_REG:
            return _ZERO
        return state[reg]

    # -- transfer functions ----------------------------------------------

    def _compute(self, op: Opcode, a: Interval, b: Interval,
                 old_dest: Interval) -> Interval:
        """Abstract counterpart of :func:`repro.isa.semantics.compute`."""
        if op is Opcode.ADDQ or op is Opcode.LDA:
            return iv.add(a, b)
        if op is Opcode.SUBQ:
            return iv.sub(a, b)
        if op is Opcode.ADDL:
            return iv.add32(a, b)
        if op is Opcode.SUBL:
            return iv.sub32(a, b)
        if op is Opcode.S4ADDQ:
            return iv.scale_add(4, a, b)
        if op is Opcode.S8ADDQ:
            return iv.scale_add(8, a, b)
        if op is Opcode.LDAH:
            return iv.add(a, iv.mul(b, iv.const(1 << 16)))
        if op is Opcode.CMPEQ:
            if a.is_constant and b.is_constant:
                return iv.const(1 if a.lo == b.lo else 0)
            if a.hi < b.lo or b.hi < a.lo:
                return iv.const(0)
            return iv.BOOL
        if op is Opcode.CMPLT:
            if a.hi < b.lo:
                return iv.const(1)
            if a.lo >= b.hi:
                return iv.const(0)
            return iv.BOOL
        if op is Opcode.CMPLE:
            if a.hi <= b.lo:
                return iv.const(1)
            if a.lo > b.hi:
                return iv.const(0)
            return iv.BOOL
        if op in (Opcode.CMPULT, Opcode.CMPULE):
            # Unsigned compare of signed intervals: only refine when
            # both sides are provably non-negative.
            if a.lo >= 0 and b.lo >= 0:
                if op is Opcode.CMPULT and a.hi < b.lo:
                    return iv.const(1)
                if op is Opcode.CMPULT and a.lo >= b.hi:
                    return iv.const(0)
                if op is Opcode.CMPULE and a.hi <= b.lo:
                    return iv.const(1)
                if op is Opcode.CMPULE and a.lo > b.hi:
                    return iv.const(0)
            return iv.BOOL
        if op is Opcode.MULQ:
            return iv.mul(a, b)
        if op is Opcode.MULL:
            return iv.mul32(a, b)
        if op is Opcode.AND:
            return iv.bit_and(a, b)
        if op is Opcode.BIS:
            return iv.bit_or(a, b)
        if op is Opcode.XOR:
            return iv.bit_xor(a, b)
        if op is Opcode.BIC:
            return iv.bit_bic(a, b)
        if op is Opcode.ORNOT:
            return iv.bit_ornot(a, b)
        if op is Opcode.EQV:
            return iv.bit_eqv(a, b)
        if op is Opcode.CMOVEQ or op is Opcode.CMOVNE:
            return b.join(old_dest)
        if op is Opcode.ZAPNOT:
            return iv.zapnot(a, b)
        if op is Opcode.SLL:
            return iv.shl(a, b)
        if op is Opcode.SRL:
            return iv.shr_logical(a, b)
        if op is Opcode.SRA:
            return iv.shr_arith(a, b)
        if op is Opcode.EXTBL:
            return iv.BYTE
        if op is Opcode.EXTWL:
            return iv.WORD16
        return iv.TOP

    def _transfer(self, index: int, inst: Instruction,
                  state: list[Interval],
                  record: bool) -> None:
        """Apply instruction ``index`` to ``state`` in place; when
        ``record``, also derive and store its :class:`InstFacts`."""
        a, b = self._operand_pair(inst, state)
        cls = inst.op_class
        result: Interval | None = None

        if cls in (OpClass.INT_ARITH, OpClass.INT_MULT,
                   OpClass.INT_LOGIC, OpClass.INT_SHIFT):
            old_dest = self._read(state, inst.rd)
            result = self._compute(inst.opcode, a, b, old_dest)
        elif cls is OpClass.LOAD:
            result = _LOAD_RESULT[inst.opcode]
        elif inst.opcode in (Opcode.BSR, Opcode.JSR):
            # Return address: an exact code constant.
            return_pc = (self.program.base_pc
                         + (index + 1) * INSTRUCTION_BYTES)
            result = iv.const(return_pc)

        if result is not None and inst.rd is not None \
                and inst.rd != ZERO_REG:
            state[inst.rd] = result

        if record:
            a_may16 = a.may_fit(16)
            b_may16 = b.may_fit(16)
            full, replay = static_pack_candidate(
                cls, inst.opcode, a_may16, b_may16)
            self.facts[index] = InstFacts(
                index=index, a=a, b=b, result=result,
                full_pack_possible=full,
                replay_pack_possible=replay)
            for reg in inst.src_regs():
                self.read_regs.add(reg)
            dest = inst.dest_reg()
            if dest is not None:
                self.written_regs.add(dest)

    # -- fixpoint ---------------------------------------------------------

    def _edge_state(self, inst: Instruction, index: int,
                    state: list[Interval],
                    succ: int) -> list[Interval] | None:
        """Out-state pushed along the edge ``index -> succ``, with the
        branch condition folded in when ``inst`` is a conditional; None
        for a provably infeasible edge."""
        if inst.op_class is not OpClass.BRANCH or not inst.is_conditional:
            return state
        ra = inst.ra
        if ra is None or ra == ZERO_REG:
            return state
        if inst.target == index + 1:
            return state        # both edges coincide: nothing to learn
        taken = succ == inst.target
        refined = _refine_condition(inst.opcode, state[ra], taken)
        if refined is None:
            return None
        if refined == state[ra]:
            return state
        out = list(state)
        out[ra] = refined
        return out

    def run(self) -> "WidthAnalysis":
        """Run the worklist fixpoint, then record final facts."""
        if self._ran:
            return self
        self._ran = True
        program = self.program
        cfg = self.cfg
        if not len(program):
            return self

        # Architected entry state: every register starts at zero
        # (RegisterFile and Feed both zero-initialize).
        n_tracked = NUM_INT_REGS - 1    # R31 is hardwired, never stored
        entry_leader = cfg.leader_of[program.entry]
        self.in_states[entry_leader] = [_ZERO] * n_tracked + [_ZERO]
        visits: dict[int, int] = {}
        worklist = [entry_leader]

        while worklist:
            leader = worklist.pop()
            block = cfg.blocks[leader]
            state = list(self.in_states[leader])
            for i in range(block.start, block.end):
                self._transfer(i, program.instructions[i], state,
                               record=False)
            last_index = block.end - 1
            last_inst = program.instructions[last_index]
            for succ in block.succs:
                out = self._edge_state(last_inst, last_index, state, succ)
                if out is None:
                    continue            # provably infeasible edge
                incoming = self.in_states.get(succ)
                if incoming is None:
                    self.in_states[succ] = list(out)
                    worklist.append(succ)
                    continue
                joined = [old.join(new)
                          for old, new in zip(incoming, out)]
                if joined == incoming:
                    continue
                visits[succ] = visits.get(succ, 0) + 1
                if visits[succ] > _WIDEN_AFTER:
                    joined = [old.widen(new) for old, new
                              in zip(incoming, joined)]
                self.in_states[succ] = joined
                worklist.append(succ)

        # Final pass: derive per-instruction facts from the converged
        # in-states (reachable blocks only; the rest stay None).
        for leader, state in self.in_states.items():
            block = cfg.blocks[leader]
            state = list(state)
            for i in range(block.start, block.end):
                self._transfer(i, program.instructions[i], state,
                               record=True)
        return self

    # -- summaries --------------------------------------------------------

    def summary(self) -> dict:
        """Aggregate static statistics for reports."""
        reachable = [f for f in self.facts if f is not None]
        results = [f for f in reachable if f.result is not None]
        return {
            "instructions": len(self.program),
            "reachable": len(reachable),
            "results": len(results),
            "narrow16_results": sum(f.result_narrow16 for f in results),
            "narrow33_results": sum(f.result_narrow33 for f in results),
            "full_pack_candidates": sum(f.full_pack_possible
                                        for f in reachable),
            "replay_pack_candidates": sum(
                f.replay_pack_possible and not f.full_pack_possible
                for f in reachable),
            "unresolved_indirect": len(self.cfg.unresolved),
        }


def analyze(program: Program) -> WidthAnalysis:
    """Build the CFG, run the fixpoint, and return the analysis."""
    return WidthAnalysis(program).run()
