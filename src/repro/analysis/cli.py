"""``repro-lint``: static analysis and soundness checks for workloads.

Modes, combinable::

    repro-lint all                      # lint every registered workload
    repro-lint go ijpeg --summary       # lint + static width summary
    repro-lint all --effects-report     # memory effects & memo proofs
    repro-lint all --packing-report     # verify static/dynamic soundness

The default mode runs the program linter and prints ``file:line``
diagnostics; the exit code is non-zero when any *error*-severity
finding is present (``--strict`` also fails on warnings), so CI can
gate on it.

``--packing-report`` attaches the differential oracle to a short
instrumented simulation of each workload (packing + replay enabled)
and reports the **static ⊆ dynamic** verdict: value/tag/edge/pack
violations (must be zero) and the static upper bound on packed
operations against the observed count (bound must hold).  This is the
executable form of the analyzer's soundness claim.

``--effects-report`` prints the per-block memory-effect summary and
memo proof table from :mod:`repro.analysis.effects` — the static side
of the fast backend's block memoization (which blocks are provably
memo-safe, their live-in key registers, and why the rest are not).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dataflow import analyze
from repro.analysis.effects import EffectsAnalysis
from repro.analysis.linter import lint_program, max_severity
from repro.analysis.oracle import DifferentialOracle
from repro.core.config import BASELINE
from repro.core.machine import Machine
from repro.workloads.registry import all_workloads, get_workload, resolve_warmup


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static width-dataflow analysis, program lint, and "
                    "static/dynamic soundness checks.")
    parser.add_argument("workloads", nargs="*",
                        help="registered workload names, or 'all' "
                             "(see --list)")
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--summary", action="store_true",
                        help="print the per-workload static width summary")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    parser.add_argument("--effects-report", action="store_true",
                        help="print the per-block memory-effect and "
                             "memo-proof table (static side of fast-"
                             "backend block memoization)")
    parser.add_argument("--packing-report", action="store_true",
                        help="run the differential oracle on an "
                             "instrumented simulation and report the "
                             "static packing upper bound vs observed")
    parser.add_argument("--max-insts", type=int, default=6000,
                        help="committed-instruction cap for the "
                             "--packing-report simulation (default 6000)")
    return parser


def _select(names: list[str]) -> list[str]:
    registered = [w.name for w in all_workloads()]
    if not names or names == ["all"]:
        return registered
    unknown = [n for n in names if n not in registered]
    if unknown:
        raise SystemExit(f"unknown workload(s): {', '.join(unknown)} "
                         f"(try --list)")
    return names


def _lint_one(name: str, scale: int, summary: bool,
              effects_report: bool = False) -> str | None:
    """Lint one workload; returns the worst severity found."""
    program = get_workload(name).build(scale)
    analysis = analyze(program)
    # One effects fixpoint serves the lint rules, the report, and the
    # memo-proof summary alike.
    effects = EffectsAnalysis(program, width=analysis).run()
    diagnostics = lint_program(program, analysis, effects)
    stats = analysis.summary()
    if effects_report:
        s = effects.summary()
        print(f"{name}: {s['blocks']} blocks "
              f"({s['pure_blocks']} pure / {s['load_only_blocks']} "
              f"load-only / {s['store_blocks']} storing), "
              f"{s['memo_safe_blocks']} memo-safe covering "
              f"{s['memo_safe_insts']} insts "
              f"({s['memo_safe_in_loops']} in loops), "
              f"{s['trap_free_blocks']} trap-free")
        print(effects.report())
    if summary:
        results = stats["results"] or 1
        print(f"{name}: {stats['instructions']} insts, "
              f"{stats['reachable']} reachable, "
              f"{stats['narrow16_results']}/{results} results "
              f"provably narrow16, "
              f"{stats['narrow33_results']}/{results} narrow33, "
              f"{stats['full_pack_candidates']} full + "
              f"{stats['replay_pack_candidates']} replay pack candidates")
    if diagnostics:
        print(f"{name}:")
        for diag in diagnostics:
            print(f"  {diag}")
    elif not summary:
        print(f"{name}: clean")
    return max_severity(diagnostics)


def _packing_report(names: list[str], scale: int, max_insts: int) -> int:
    """Oracle-instrumented runs; returns the number of failing workloads."""
    config = BASELINE.with_packing(replay=True)
    header = (f"{'benchmark':14s} {'checked':>8s} {'violations':>10s} "
              f"{'static bound':>12s} {'observed':>8s}  verdict")
    print(header)
    print("-" * len(header))
    failures = 0
    for name in names:
        workload = get_workload(name)
        machine = Machine(workload.build(scale), config)
        oracle = DifferentialOracle(machine)
        machine.fast_forward(resolve_warmup(workload, scale))
        machine.run(max_insts=max_insts)
        rep = oracle.report()
        bound_holds = rep["static_pack_bound"] >= rep["observed_packed"]
        ok = oracle.clean and bound_holds
        verdict = "ok" if ok else "FAIL"
        print(f"{name:14s} {rep['checked']:8d} {rep['violations']:10d} "
              f"{rep['static_pack_bound']:12d} {rep['observed_packed']:8d}"
              f"  {verdict}")
        if not oracle.clean:
            for violation in oracle.violations[:10]:
                print(f"    {violation}")
        if not bound_holds:
            print("    static pack bound below observed packing — "
                  "the upper-bound claim is broken")
        failures += not ok
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_workloads:
        for workload in all_workloads():
            print(f"{workload.name:14s} {workload.suite:12s} "
                  f"{workload.description}")
        return 0

    names = _select(args.workloads)

    if args.packing_report:
        failures = _packing_report(names, args.scale, args.max_insts)
        if failures:
            print(f"\n{failures} workload(s) FAILED the soundness check")
            return 1
        print(f"\nall {len(names)} workload(s) sound: zero violations, "
              f"static bound >= observed packing")
        return 0

    worst = None
    order = {None: -1, "info": 0, "warning": 1, "error": 2}
    for name in names:
        severity = _lint_one(name, args.scale, args.summary,
                             args.effects_report)
        if order[severity] > order[worst]:
            worst = severity
    if worst == "error" or (args.strict and worst == "warning"):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
