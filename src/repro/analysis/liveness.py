"""Backward register-liveness fixpoint and natural-loop detection.

Runs over the recovered CFG (:mod:`repro.analysis.cfg`), complementing
the forward width fixpoint (:mod:`repro.analysis.dataflow`) with the
backward facts the block-memoization proof and the dead-code lint rules
need:

* per-block **use/def summaries** — ``use`` is the set of upward-exposed
  register reads (read before any write inside the block), ``defs`` the
  set of registers the block writes;
* the **live-in / live-out fixpoint** —
  ``live_in(B) = use(B) | (live_out(B) - defs(B))`` and
  ``live_out(B) = U live_in(S)`` over B's CFG successors, iterated to
  convergence with a backward worklist.  The CFG's successor relation
  deliberately over-approximates indirect control flow (``ret`` may
  return to any call site, ``jmp`` anywhere), so the computed live sets
  over-approximate true liveness — which makes every *dead* verdict
  ("not live here") sound;
* **dominators and natural loops** — the iterative dominator fixpoint
  over reachable blocks, back edges (``t -> h`` with ``h`` dominating
  ``t``), and the natural loop body of each back edge.  Loop membership
  tells the memoizer which blocks re-execute enough to be worth
  recording and gives reports a "hot by construction" column.

Everything here is a pure function of the program; results are used by
:mod:`repro.analysis.effects` (memo proofs), the linter's L006/L007
rules, and ``repro-lint --effects-report``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, build_cfg
from repro.isa.instruction import Program


@dataclass(frozen=True)
class BlockLiveness:
    """Converged liveness facts for one reachable basic block."""

    leader: int
    #: upward-exposed reads: registers read before any in-block write
    use: frozenset[int]
    #: registers written anywhere in the block
    defs: frozenset[int]
    live_in: frozenset[int]
    live_out: frozenset[int]


class LivenessAnalysis:
    """Backward liveness + loop structure of one program; run once."""

    def __init__(self, program: Program, cfg: CFG | None = None) -> None:
        self.program = program
        self.cfg = cfg or build_cfg(program)
        #: leader -> converged block facts (reachable blocks only)
        self.blocks: dict[int, BlockLiveness] = {}
        #: loop headers -> frozenset of member block leaders
        self.loops: dict[int, frozenset[int]] = {}
        #: leaders of blocks inside at least one natural loop
        self.loop_blocks: frozenset[int] = frozenset()
        self._ran = False

    # ----------------------------------------------------------- summaries

    @staticmethod
    def block_use_defs(program: Program, start: int,
                       end: int) -> tuple[frozenset[int], frozenset[int]]:
        """(upward-exposed reads, written registers) of the instruction
        range ``[start, end)`` — the per-block transfer function's
        constants."""
        use: set[int] = set()
        defs: set[int] = set()
        for i in range(start, end):
            inst = program.instructions[i]
            for reg in inst.src_regs():
                if reg not in defs:
                    use.add(reg)
            dest = inst.dest_reg()
            if dest is not None:
                defs.add(dest)
        return frozenset(use), frozenset(defs)

    # ------------------------------------------------------------ fixpoint

    def run(self) -> "LivenessAnalysis":
        if self._ran:
            return self
        self._ran = True
        cfg = self.cfg
        program = self.program
        reachable = [b for b in cfg.reachable_blocks()]
        if not reachable:
            return self

        leaders = [b.start for b in reachable]
        leader_set = set(leaders)
        use: dict[int, frozenset[int]] = {}
        defs: dict[int, frozenset[int]] = {}
        succs: dict[int, tuple[int, ...]] = {}
        preds: dict[int, list[int]] = {lead: [] for lead in leaders}
        for block in reachable:
            u, d = self.block_use_defs(program, block.start, block.end)
            use[block.start] = u
            defs[block.start] = d
            out = tuple(s for s in block.succs if s in leader_set)
            succs[block.start] = out
            for s in out:
                preds[s].append(block.start)

        live_in: dict[int, frozenset[int]] = {
            lead: frozenset() for lead in leaders}
        live_out: dict[int, frozenset[int]] = {
            lead: frozenset() for lead in leaders}

        # Backward worklist: seed with every block; when a block's
        # live-in grows, re-queue its predecessors.
        worklist = list(reversed(leaders))
        queued = set(worklist)
        while worklist:
            lead = worklist.pop()
            queued.discard(lead)
            out: frozenset[int] = frozenset().union(
                *(live_in[s] for s in succs[lead])) \
                if succs[lead] else frozenset()
            live_out[lead] = out
            new_in = use[lead] | (out - defs[lead])
            if new_in != live_in[lead]:
                live_in[lead] = new_in
                for p in preds[lead]:
                    if p not in queued:
                        queued.add(p)
                        worklist.append(p)

        self.blocks = {
            lead: BlockLiveness(leader=lead, use=use[lead],
                                defs=defs[lead], live_in=live_in[lead],
                                live_out=live_out[lead])
            for lead in leaders}
        self._find_loops(leaders, succs, preds)
        return self

    # ---------------------------------------------------- loops/dominators

    def _find_loops(self, leaders: list[int],
                    succs: dict[int, tuple[int, ...]],
                    preds: dict[int, list[int]]) -> None:
        """Iterative dominator fixpoint, back edges, natural loops."""
        entry = self.cfg.leader_of[self.program.entry] \
            if 0 <= self.program.entry < len(self.program) else leaders[0]
        if entry not in succs:
            entry = leaders[0]
        universe = frozenset(leaders)
        dom: dict[int, frozenset[int]] = {
            lead: universe for lead in leaders}
        dom[entry] = frozenset((entry,))
        changed = True
        while changed:
            changed = False
            for lead in leaders:
                if lead == entry:
                    continue
                ps = preds[lead]
                if ps:
                    new = frozenset.intersection(*(dom[p] for p in ps))
                else:
                    new = frozenset()
                new = new | {lead}
                if new != dom[lead]:
                    dom[lead] = new
                    changed = True

        loops: dict[int, set[int]] = {}
        for tail in leaders:
            for head in succs[tail]:
                if head not in dom[tail]:
                    continue
                # Back edge tail -> head: the natural loop is head plus
                # everything that reaches tail without passing head.
                body = loops.setdefault(head, {head})
                stack = [tail]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(p for p in preds[node] if p not in body)
        self.loops = {head: frozenset(body)
                      for head, body in sorted(loops.items())}
        members: set[int] = set()
        for body in self.loops.values():
            members |= body
        self.loop_blocks = frozenset(members)

    # ----------------------------------------------------------- lint hooks

    def dead_writes(self) -> list[int]:
        """Instruction indices whose register write is provably dead:
        the written register is not live immediately after the write
        (it is rewritten before any read on every CFG path, or no path
        reads it again).  Sound because the live sets over-approximate;
        excludes R31 writes (L002's finding, not a liveness fact)."""
        self.run()
        program = self.program
        dead: list[int] = []
        for lead, facts in self.blocks.items():
            block = self.cfg.blocks[lead]
            live = set(facts.live_out)
            for i in range(block.end - 1, block.start - 1, -1):
                inst = program.instructions[i]
                dest = inst.dest_reg()
                if dest is not None:
                    if dest not in live:
                        dead.append(i)
                    live.discard(dest)
                live.update(inst.src_regs())
        return sorted(dead)


def analyze_liveness(program: Program,
                     cfg: CFG | None = None) -> LivenessAnalysis:
    """Build (or reuse) the CFG, run the backward fixpoint, return it."""
    return LivenessAnalysis(program, cfg).run()
