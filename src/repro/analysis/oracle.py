"""Differential oracle: check the static analysis against a live run.

The analyzer's claims are *refutable*: every interval concretizes to a
set of register values, and the simulator produces the actual values.
This module attaches to a :class:`~repro.core.machine.Machine` and
checks, instruction by instruction, the **static ⊆ dynamic** direction
of the paper's width story:

* every architected operand/result value lies inside its static
  interval (so "provably narrow" facts can never meet a dynamically
  wide value — the zero/ones detector of Figure 3 *must* tag them
  narrow);
* every architected control transfer follows a recovered CFG edge;
* every operation that dynamically joins an ALU pack on the good path
  is statically pack-eligible, which makes the static candidate count
  a true upper bound on the packing the issue stage can ever find.

Wrong-path (speculative) instructions are exempt from value checks:
the feed executes them with mispredicted register state that may lie
outside any architected path the analysis reasons about (a wrong-path
``ret`` can even fall through to unrelated code).  Their *pack
accounting* is still bounded — by instruction class, which is
path-independent.

Checks are per-instance, not per-profile: the oracle intercepts the
feed (shadowing :meth:`Feed.next` on the instance) and subscribes to
the machine's event bus, so no event or value escapes it.  Violations
are collected, not raised, so a report can show all of them; tests
call :meth:`DifferentialOracle.assert_clean`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import WidthAnalysis, analyze
from repro.bitwidth.tags import tag_value
from repro.core.feed import DynInst
from repro.core.machine import Machine
from repro.isa.opcodes import PACKABLE_CLASSES
from repro.isa.semantics import to_signed
from repro.obs.events import Event, IssueEvent, PackJoinEvent
from repro.packing.pack import REPLAY_OPS


@dataclass(frozen=True)
class OracleViolation:
    """One refuted static claim (seq/index pin down the instance)."""

    kind: str           # "operand" | "result" | "tag" | "edge" | "pack"
    seq: int
    index: int
    detail: str

    def __str__(self) -> str:
        return (f"[{self.kind}] seq={self.seq} "
                f"inst#{self.index}: {self.detail}")


@dataclass
class _IssueInfo:
    """What the pack checks need to know about a fetched instruction."""

    index: int
    spec: bool
    packable_class: bool
    pack_possible: bool


class DifferentialOracle:
    """Attach static-analysis checks to one machine's execution."""

    def __init__(self, machine: Machine,
                 analysis: WidthAnalysis | None = None) -> None:
        self.machine = machine
        self.analysis = analysis or analyze(machine.program)
        self.cfg = self.analysis.cfg
        self.violations: list[OracleViolation] = []
        #: instruction instances whose values were checked
        self.checked = 0
        #: static upper bound on packable issues (accumulated per issue)
        self.static_pack_bound = 0
        #: dynamically packed operations, counted exactly as
        #: ``CoreStats.packed_ops`` counts them (a pack "happens" when
        #: its second member joins, paying for leader + follower).
        self.observed_packed = 0
        self._by_seq: dict[int, _IssueInfo] = {}
        self._last_good_index: int | None = None
        self._program_len = len(machine.program)
        self._attach()

    # -- wiring ------------------------------------------------------------

    def _attach(self) -> None:
        feed = self.machine.feed
        original_next = feed.next

        def next_with_oracle() -> DynInst | None:
            dyn = original_next()
            if dyn is not None:
                self._on_dyn(dyn)
            return dyn

        # Instance-attribute shadowing: only *this* feed is observed.
        feed.next = next_with_oracle  # type: ignore[method-assign]
        self.machine.subscribe(self._on_event)

    # -- per-instruction value and edge checks -----------------------------

    def _on_dyn(self, dyn: DynInst) -> None:
        index = dyn.index
        in_program = 0 <= index < self._program_len
        facts = self.analysis.facts[index] if in_program else None
        self._by_seq[dyn.seq] = _IssueInfo(
            index=index,
            spec=dyn.spec,
            packable_class=dyn.op_class in PACKABLE_CLASSES
            or dyn.inst.opcode in REPLAY_OPS,
            pack_possible=facts is not None and facts.pack_possible,
        )
        if dyn.spec:
            return      # wrong-path state is outside the analysis

        # Architected control must stay on recovered CFG edges.  The
        # previous good instruction's successor is this one even across
        # a misprediction: recovery resumes at its actual_next.
        if (self._last_good_index is not None and in_program
                and not self.cfg.is_edge(self._last_good_index, index)):
            self._violate("edge", dyn,
                          f"transfer {self._last_good_index} -> {index} "
                          f"is not a CFG edge")
        self._last_good_index = index if in_program else None
        if not in_program:
            return      # implicit HALT off the end; nothing to check

        if facts is None:
            self._violate("edge", dyn,
                          "architected execution reached an instruction "
                          "the analysis proved unreachable")
            return

        self.checked += 1
        a = to_signed(dyn.a_val)
        b = to_signed(dyn.b_val)
        if not facts.a.contains(a):
            self._violate("operand", dyn,
                          f"a={a} outside static {facts.a}")
        if not facts.b.contains(b):
            self._violate("operand", dyn,
                          f"b={b} outside static {facts.b}")
        if dyn.result is None or facts.result is None:
            return
        signed_result = to_signed(dyn.result)
        if not facts.result.contains(signed_result):
            self._violate("result", dyn,
                          f"result={signed_result} outside "
                          f"static {facts.result}")
            return
        # The headline invariant: statically-proven-narrow results must
        # be tagged narrow by the detect circuit on the produced value.
        tag = tag_value(dyn.result)
        if facts.result_narrow16 and not tag.narrow16:
            self._violate("tag", dyn,
                          f"proven narrow16 but detector tagged "
                          f"wide: result={signed_result}")
        if facts.result_narrow33 and not tag.narrow33:
            self._violate("tag", dyn,
                          f"proven narrow33 but detector tagged "
                          f"wide: result={signed_result}")

    # -- pack accounting via the event bus ---------------------------------

    def _on_event(self, event: Event) -> None:
        if isinstance(event, IssueEvent):
            info = self._by_seq.get(event.seq)
            if info is None:
                return
            # Bound: a good-path issue may pack only if statically
            # eligible; a wrong-path issue only if its class allows
            # packing at all (class membership is path-independent).
            if info.pack_possible if not info.spec \
                    else info.packable_class:
                self.static_pack_bound += 1
        elif isinstance(event, PackJoinEvent):
            # Mirrors Machine._count_pack_member: size==2 pays for
            # leader + follower, each later join pays for itself.
            self.observed_packed += 2 if event.size == 2 else 1
            self._check_packed(event.seq)
            if event.size == 2:
                self._check_packed(event.leader_seq)

    def _check_packed(self, seq: int) -> None:
        info = self._by_seq.get(seq)
        if info is None or info.spec:
            return      # wrong-path packing is outside the static claim
        if not info.pack_possible:
            facts = self.analysis.facts[info.index]
            self.violations.append(OracleViolation(
                kind="pack", seq=seq, index=info.index,
                detail=f"packed at issue but statically ineligible "
                       f"(a={facts.a if facts else None}, "
                       f"b={facts.b if facts else None})"))

    # -- reporting ---------------------------------------------------------

    def _violate(self, kind: str, dyn: DynInst, detail: str) -> None:
        self.violations.append(OracleViolation(
            kind=kind, seq=dyn.seq, index=dyn.index,
            detail=f"{dyn.inst}: {detail}"))

    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        """Raise with every violation listed (test entry point)."""
        if self.violations:
            listing = "\n".join(str(v) for v in self.violations[:20])
            extra = len(self.violations) - 20
            if extra > 0:
                listing += f"\n... and {extra} more"
            raise AssertionError(
                f"{len(self.violations)} static/dynamic soundness "
                f"violation(s) on {self.machine.program.name}:\n"
                f"{listing}")

    def report(self) -> dict:
        """Summary counters for the CLI / experiment rendering."""
        return {
            "checked": self.checked,
            "violations": len(self.violations),
            "static_pack_bound": self.static_pack_bound,
            "observed_packed": self.observed_packed,
        }
