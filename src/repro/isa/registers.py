"""Architected integer register file for the 64-bit Alpha-like ISA.

The paper (Section 3.1) simulates an Alpha target with SimpleScalar:
32 integer registers, with R31 hardwired to zero.  We reproduce that
convention, including the standard Alpha software names (``v0``, ``t0``,
``sp``, ``ra``, ...) so that workloads read like real assembly.
"""

from __future__ import annotations

NUM_INT_REGS = 32
ZERO_REG = 31

#: Alpha calling-convention names for the 32 integer registers.
REG_NAMES = (
    "v0",                                           # r0: return value
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",  # r1-r8: temporaries
    "s0", "s1", "s2", "s3", "s4", "s5",              # r9-r14: saved
    "fp",                                            # r15: frame pointer
    "a0", "a1", "a2", "a3", "a4", "a5",              # r16-r21: arguments
    "t8", "t9", "t10", "t11",                        # r22-r25: temporaries
    "ra",                                            # r26: return address
    "t12",                                           # r27: procedure value
    "at",                                            # r28: assembler temp
    "gp",                                            # r29: global pointer
    "sp",                                            # r30: stack pointer
    "zero",                                          # r31: hardwired zero
)

#: Map from register name (and the raw ``r<n>`` spelling) to index.
REG_INDEX: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
REG_INDEX.update({f"r{i}": i for i in range(NUM_INT_REGS)})


def reg_index(name: str | int) -> int:
    """Resolve a register name or raw index to a register number.

    Accepts Alpha software names (``"sp"``), raw spellings (``"r30"``),
    or plain integers.  Raises ``KeyError``/``ValueError`` on bad input.
    """
    if isinstance(name, int):
        if not 0 <= name < NUM_INT_REGS:
            raise ValueError(f"register index out of range: {name}")
        return name
    return REG_INDEX[name.lower()]


class RegisterFile:
    """The architected integer register file.

    Values are stored as unsigned 64-bit integers (Python ints in
    ``[0, 2**64)``).  Reads of R31 always return zero and writes to it
    are discarded, matching the Alpha architecture.
    """

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_INT_REGS

    def read(self, index: int) -> int:
        """Return the 64-bit unsigned value of register ``index``."""
        if index == ZERO_REG:
            return 0
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write a 64-bit value to register ``index`` (R31 writes ignored)."""
        if index != ZERO_REG:
            self._regs[index] = value & 0xFFFF_FFFF_FFFF_FFFF

    def snapshot(self) -> list[int]:
        """Return a copy of the register contents (for speculation)."""
        return list(self._regs)

    def restore(self, snap: list[int]) -> None:
        """Restore register contents from a previous :meth:`snapshot`."""
        self._regs[:] = snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = {REG_NAMES[i]: v for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({live})"
