"""Instruction representation and program container.

Instructions are stored decoded (there is no binary encoding step —
SimpleScalar likewise interprets a decoded form).  Each instruction
occupies 4 bytes of the simulated address space so that PCs, the BTB,
and the I-cache behave realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    MEM_SIZE,
    OP_CLASS,
    Opcode,
    OpClass,
)
from repro.isa.registers import REG_NAMES, ZERO_REG

#: Size of one instruction in the simulated address space.
INSTRUCTION_BYTES = 4


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Fields follow the Alpha operand conventions used in
    :mod:`repro.isa.opcodes`:

    * ``ra`` — first source register (data for stores, condition for
      branches).
    * ``rb`` — second source register (base for memory ops, target for
      indirect jumps); ``None`` when the second operand is the literal
      ``imm``.
    * ``rd`` — destination register, or ``None``.
    * ``imm`` — literal second operand, memory displacement, or ``None``.
    * ``target`` — branch-target *instruction index* within the program
      for direct branches (``BR``/``BSR``/conditional), else ``None``.
    """

    opcode: Opcode
    ra: int | None = None
    rb: int | None = None
    rd: int | None = None
    imm: int | None = None
    target: int | None = None

    # -- classification helpers -------------------------------------------

    @property
    def op_class(self) -> OpClass:
        """The functional class of this instruction."""
        return OP_CLASS[self.opcode]

    @property
    def is_load(self) -> bool:
        return OP_CLASS[self.opcode] is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return OP_CLASS[self.opcode] is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opcode in MEM_SIZE

    @property
    def is_branch(self) -> bool:
        """Any control transfer, direct or indirect."""
        cls = OP_CLASS[self.opcode]
        return cls is OpClass.BRANCH or cls is OpClass.JUMP

    @property
    def is_conditional(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def mem_size(self) -> int:
        """Access size in bytes for memory instructions."""
        return MEM_SIZE[self.opcode]

    def src_regs(self) -> tuple[int, ...]:
        """Register numbers this instruction reads (excluding R31)."""
        srcs = []
        if self.ra is not None and self.ra != ZERO_REG:
            srcs.append(self.ra)
        if self.rb is not None and self.rb != ZERO_REG:
            srcs.append(self.rb)
        # Conditional moves also read their destination.
        if self.opcode in (Opcode.CMOVEQ, Opcode.CMOVNE):
            if self.rd is not None and self.rd != ZERO_REG:
                srcs.append(self.rd)
        return tuple(srcs)

    def dest_reg(self) -> int | None:
        """Destination register number, or ``None`` (R31 counts as None)."""
        if self.rd is None or self.rd == ZERO_REG:
            return None
        return self.rd

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.rd is not None:
            parts.append(REG_NAMES[self.rd])
        if self.ra is not None:
            parts.append(REG_NAMES[self.ra])
        if self.rb is not None:
            parts.append(REG_NAMES[self.rb])
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"@{self.target}")
        return f"{parts[0]} " + ", ".join(parts[1:])


@dataclass
class Program:
    """A fully assembled program: instructions plus an initial memory image.

    ``base_pc`` is the simulated address of instruction 0.  ``image``
    maps byte addresses to initial data bytes (the ``.data`` section).
    ``entry`` is the starting instruction index.  ``srcmap``, when the
    assembler provides it, maps each instruction index to the
    ``(file, line)`` of the emitting call site, so diagnostics can
    point at workload source rather than instruction numbers.
    """

    instructions: list[Instruction]
    base_pc: int = 0x0001_0000
    image: dict[int, int] = field(default_factory=dict)
    entry: int = 0
    name: str = "program"
    srcmap: list[tuple[str, int] | None] | None = None

    def source_of(self, index: int) -> tuple[str, int] | None:
        """``(file, line)`` that emitted instruction ``index``, if known."""
        if self.srcmap is None or not 0 <= index < len(self.srcmap):
            return None
        return self.srcmap[index]

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of(self, index: int) -> int:
        """Simulated byte address of instruction ``index``."""
        return self.base_pc + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Instruction index for simulated byte address ``pc``."""
        return (pc - self.base_pc) // INSTRUCTION_BYTES

    def fetch(self, index: int) -> Instruction:
        """Instruction at ``index``; out-of-range fetches yield HALT so a
        wrong-path fetch off the end of the program is harmless."""
        if 0 <= index < len(self.instructions):
            return self.instructions[index]
        return Instruction(Opcode.HALT)
