"""Opcode and operation-class definitions for the Alpha-like ISA.

The paper classifies integer-unit work into four device classes for the
power analysis of Section 4 (arithmetic / logical / shift / multiply,
Figure 4) plus memory and control operations whose *address or condition
calculation* also flows through the integer ALUs (Figure 1 "includes
address calculations").  :class:`OpClass` captures that taxonomy;
:class:`Opcode` enumerates the concrete instructions our workloads use.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional class of an instruction, as used by the power model
    and by the packing rule "must perform the same operation"."""

    INT_ARITH = "arith"      # add/sub/compare — uses the adder
    INT_MULT = "mult"        # multiply — uses the Booth multiplier
    INT_LOGIC = "logic"      # bit-wise logic
    INT_SHIFT = "shift"      # shifts and byte extract/insert
    LOAD = "load"            # memory read (address calc uses the adder)
    STORE = "store"          # memory write (address calc uses the adder)
    BRANCH = "branch"        # conditional/unconditional control flow
    JUMP = "jump"            # indirect jumps: jmp/jsr/ret
    NOP = "nop"              # no work
    HALT = "halt"            # simulator stop


#: Classes whose computation runs on an integer ALU (Table 1: the four
#: integer ALUs perform "arithmetic, logical, shift, memory, branch ops").
ALU_CLASSES = frozenset(
    {
        OpClass.INT_ARITH,
        OpClass.INT_LOGIC,
        OpClass.INT_SHIFT,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.BRANCH,
        OpClass.JUMP,
    }
)

#: Classes the *operation packing* optimization may merge (Section 5.1:
#: "the arithmetic, logical, and shift operations", no multiplies).
PACKABLE_CLASSES = frozenset(
    {OpClass.INT_ARITH, OpClass.INT_LOGIC, OpClass.INT_SHIFT}
)


class Opcode(enum.Enum):
    """Concrete instructions.  Mnemonics follow Alpha AXP where one
    exists (``addq`` = add quadword, ``bis`` = bitwise or, ...)."""

    # -- arithmetic (adder) ------------------------------------------------
    ADDQ = "addq"        # rd = ra + rb
    SUBQ = "subq"        # rd = ra - rb
    ADDL = "addl"        # rd = sext32(ra + rb)
    SUBL = "subl"        # rd = sext32(ra - rb)
    S4ADDQ = "s4addq"    # rd = 4*ra + rb (scaled add, addressing idiom)
    S8ADDQ = "s8addq"    # rd = 8*ra + rb
    CMPEQ = "cmpeq"      # rd = (ra == rb)
    CMPLT = "cmplt"      # rd = (ra <s rb)
    CMPLE = "cmple"      # rd = (ra <=s rb)
    CMPULT = "cmpult"    # rd = (ra <u rb)
    CMPULE = "cmpule"    # rd = (ra <=u rb)
    LDA = "lda"          # rd = rb + disp  (address arithmetic, no memory)
    LDAH = "ldah"        # rd = rb + disp*65536

    # -- multiply ----------------------------------------------------------
    MULQ = "mulq"        # rd = ra * rb (low 64 bits)
    MULL = "mull"        # rd = sext32(ra * rb)

    # -- logical -----------------------------------------------------------
    AND = "and"          # rd = ra & rb
    BIS = "bis"          # rd = ra | rb
    XOR = "xor"          # rd = ra ^ rb
    BIC = "bic"          # rd = ra & ~rb
    ORNOT = "ornot"      # rd = ra | ~rb
    EQV = "eqv"          # rd = ra ^ ~rb
    CMOVEQ = "cmoveq"    # rd = (ra == 0) ? rb : rd
    CMOVNE = "cmovne"    # rd = (ra != 0) ? rb : rd
    ZAPNOT = "zapnot"    # rd = ra with bytes not selected by rb zeroed

    # -- shift -------------------------------------------------------------
    SLL = "sll"          # rd = ra << rb[5:0]
    SRL = "srl"          # rd = ra >>u rb[5:0]
    SRA = "sra"          # rd = ra >>s rb[5:0]
    EXTBL = "extbl"      # rd = byte rb[2:0] of ra, zero-extended
    EXTWL = "extwl"      # rd = word at byte offset rb[2:0] of ra

    # -- memory ------------------------------------------------------------
    LDQ = "ldq"          # rd = mem64[rb + disp]
    LDL = "ldl"          # rd = sext32(mem32[rb + disp])
    LDWU = "ldwu"        # rd = zext16(mem16[rb + disp])
    LDBU = "ldbu"        # rd = zext8(mem8[rb + disp])
    STQ = "stq"          # mem64[rb + disp] = ra
    STL = "stl"          # mem32[rb + disp] = ra
    STW = "stw"          # mem16[rb + disp] = ra
    STB = "stb"          # mem8[rb + disp] = ra

    # -- control -----------------------------------------------------------
    BEQ = "beq"          # branch if ra == 0
    BNE = "bne"          # branch if ra != 0
    BLT = "blt"          # branch if ra <s 0
    BLE = "ble"          # branch if ra <=s 0
    BGT = "bgt"          # branch if ra >s 0
    BGE = "bge"          # branch if ra >=s 0
    BLBC = "blbc"        # branch if low bit of ra clear
    BLBS = "blbs"        # branch if low bit of ra set
    BR = "br"            # unconditional branch
    BSR = "bsr"          # branch to subroutine (rd gets return addr)
    JMP = "jmp"          # pc = rb
    JSR = "jsr"          # rd = return addr; pc = rb
    RET = "ret"          # pc = rb (predicted via return-address stack)

    # -- misc ----------------------------------------------------------------
    NOP = "nop"
    HALT = "halt"        # stop simulation (stand-in for syscall exit)


_ARITH = {
    Opcode.ADDQ, Opcode.SUBQ, Opcode.ADDL, Opcode.SUBL, Opcode.S4ADDQ,
    Opcode.S8ADDQ, Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPULT, Opcode.CMPULE, Opcode.LDA, Opcode.LDAH,
}
_MULT = {Opcode.MULQ, Opcode.MULL}
_LOGIC = {
    Opcode.AND, Opcode.BIS, Opcode.XOR, Opcode.BIC, Opcode.ORNOT,
    Opcode.EQV, Opcode.CMOVEQ, Opcode.CMOVNE, Opcode.ZAPNOT,
}
_SHIFT = {Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.EXTBL, Opcode.EXTWL}
_LOAD = {Opcode.LDQ, Opcode.LDL, Opcode.LDWU, Opcode.LDBU}
_STORE = {Opcode.STQ, Opcode.STL, Opcode.STW, Opcode.STB}
_BRANCH = {
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT,
    Opcode.BGE, Opcode.BLBC, Opcode.BLBS, Opcode.BR, Opcode.BSR,
}
_JUMP = {Opcode.JMP, Opcode.JSR, Opcode.RET}

OP_CLASS: dict[Opcode, OpClass] = {}
for _op in Opcode:
    if _op in _ARITH:
        OP_CLASS[_op] = OpClass.INT_ARITH
    elif _op in _MULT:
        OP_CLASS[_op] = OpClass.INT_MULT
    elif _op in _LOGIC:
        OP_CLASS[_op] = OpClass.INT_LOGIC
    elif _op in _SHIFT:
        OP_CLASS[_op] = OpClass.INT_SHIFT
    elif _op in _LOAD:
        OP_CLASS[_op] = OpClass.LOAD
    elif _op in _STORE:
        OP_CLASS[_op] = OpClass.STORE
    elif _op in _BRANCH:
        OP_CLASS[_op] = OpClass.BRANCH
    elif _op in _JUMP:
        OP_CLASS[_op] = OpClass.JUMP
    elif _op is Opcode.NOP:
        OP_CLASS[_op] = OpClass.NOP
    else:
        OP_CLASS[_op] = OpClass.HALT

#: Conditional branches (taken/not-taken depends on a register value).
CONDITIONAL_BRANCHES = frozenset(
    {
        Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE,
        Opcode.BGT, Opcode.BGE, Opcode.BLBC, Opcode.BLBS,
    }
)

#: Control-flow instructions that save a return address.
CALL_OPS = frozenset({Opcode.BSR, Opcode.JSR})

#: Memory-access sizes in bytes for load/store opcodes.
MEM_SIZE: dict[Opcode, int] = {
    Opcode.LDQ: 8, Opcode.LDL: 4, Opcode.LDWU: 2, Opcode.LDBU: 1,
    Opcode.STQ: 8, Opcode.STL: 4, Opcode.STW: 2, Opcode.STB: 1,
}


def op_class(op: Opcode) -> OpClass:
    """Return the :class:`OpClass` of ``op``."""
    return OP_CLASS[op]


def is_control(op: Opcode) -> bool:
    """True if ``op`` redirects the PC (branch or jump class)."""
    cls = OP_CLASS[op]
    return cls is OpClass.BRANCH or cls is OpClass.JUMP
