"""Functional semantics of the Alpha-like ISA.

All values are unsigned 64-bit integers (Python ints in ``[0, 2**64)``);
signed behaviour is obtained through explicit two's-complement
conversion, exactly as the paper assumes ("Numbers are expressed in
two's complement form", Section 4.3).
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode

MASK64 = 0xFFFF_FFFF_FFFF_FFFF
SIGN_BIT = 1 << 63


def mask64(value: int) -> int:
    """Truncate ``value`` to 64 bits (two's-complement wraparound)."""
    return value & MASK64


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as a signed quadword."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Convert a (possibly negative) Python int to its 64-bit pattern."""
    return value & MASK64


def sext(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to 64 bits."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & MASK64


def _sext32(value: int) -> int:
    return sext(value, 32)


def _zapnot(a: int, b: int) -> int:
    """Keep only the bytes of ``a`` whose select bit is set in ``b``."""
    result = 0
    for byte in range(8):
        if b & (1 << byte):
            result |= a & (0xFF << (8 * byte))
    return result


def compute(op: Opcode, a: int, b: int, old_dest: int = 0) -> int:
    """Compute the 64-bit result of a non-memory, non-control operation.

    ``a`` and ``b`` are the resolved source values (register contents or
    literals, already 64-bit unsigned).  ``old_dest`` is the previous
    destination value, read only by conditional moves.
    """
    if op is Opcode.ADDQ or op is Opcode.LDA:
        return mask64(a + b)
    if op is Opcode.SUBQ:
        return mask64(a - b)
    if op is Opcode.ADDL:
        return _sext32(a + b)
    if op is Opcode.SUBL:
        return _sext32(a - b)
    if op is Opcode.S4ADDQ:
        return mask64(4 * a + b)
    if op is Opcode.S8ADDQ:
        return mask64(8 * a + b)
    if op is Opcode.LDAH:
        return mask64(a + mask64(b << 16))
    if op is Opcode.CMPEQ:
        return 1 if a == b else 0
    if op is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Opcode.CMPLE:
        return 1 if to_signed(a) <= to_signed(b) else 0
    if op is Opcode.CMPULT:
        return 1 if a < b else 0
    if op is Opcode.CMPULE:
        return 1 if a <= b else 0
    if op is Opcode.MULQ:
        return mask64(a * b)
    if op is Opcode.MULL:
        return _sext32(a * b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.BIS:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.BIC:
        return a & ~b & MASK64
    if op is Opcode.ORNOT:
        return (a | ~b) & MASK64
    if op is Opcode.EQV:
        return (a ^ ~b) & MASK64
    if op is Opcode.CMOVEQ:
        return b if a == 0 else old_dest
    if op is Opcode.CMOVNE:
        return b if a != 0 else old_dest
    if op is Opcode.ZAPNOT:
        return _zapnot(a, b)
    if op is Opcode.SLL:
        return mask64(a << (b & 0x3F))
    if op is Opcode.SRL:
        return a >> (b & 0x3F)
    if op is Opcode.SRA:
        return to_unsigned(to_signed(a) >> (b & 0x3F))
    if op is Opcode.EXTBL:
        return (a >> (8 * (b & 0x7))) & 0xFF
    if op is Opcode.EXTWL:
        return (a >> (8 * (b & 0x7))) & 0xFFFF
    if op is Opcode.NOP:
        return 0
    raise ValueError(f"compute() does not handle opcode {op}")


# Per-opcode dispatch table for the fast backend's hot loop: one small
# callable per operate opcode, (a, b, old_dest) -> result, equivalent to
# compute() without walking the if-chain.  tests/test_fastsim.py checks
# the two agree on every opcode over randomized operands.
COMPUTE_FNS = {
    Opcode.ADDQ: lambda a, b, o: (a + b) & MASK64,
    Opcode.LDA: lambda a, b, o: (a + b) & MASK64,
    Opcode.SUBQ: lambda a, b, o: (a - b) & MASK64,
    Opcode.ADDL: lambda a, b, o: _sext32(a + b),
    Opcode.SUBL: lambda a, b, o: _sext32(a - b),
    Opcode.S4ADDQ: lambda a, b, o: (4 * a + b) & MASK64,
    Opcode.S8ADDQ: lambda a, b, o: (8 * a + b) & MASK64,
    Opcode.LDAH: lambda a, b, o: (a + ((b << 16) & MASK64)) & MASK64,
    Opcode.CMPEQ: lambda a, b, o: 1 if a == b else 0,
    Opcode.CMPLT: lambda a, b, o: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.CMPLE: lambda a, b, o: 1 if to_signed(a) <= to_signed(b) else 0,
    Opcode.CMPULT: lambda a, b, o: 1 if a < b else 0,
    Opcode.CMPULE: lambda a, b, o: 1 if a <= b else 0,
    Opcode.MULQ: lambda a, b, o: (a * b) & MASK64,
    Opcode.MULL: lambda a, b, o: _sext32(a * b),
    Opcode.AND: lambda a, b, o: a & b,
    Opcode.BIS: lambda a, b, o: a | b,
    Opcode.XOR: lambda a, b, o: a ^ b,
    Opcode.BIC: lambda a, b, o: a & ~b & MASK64,
    Opcode.ORNOT: lambda a, b, o: (a | ~b) & MASK64,
    Opcode.EQV: lambda a, b, o: (a ^ ~b) & MASK64,
    Opcode.CMOVEQ: lambda a, b, o: b if a == 0 else o,
    Opcode.CMOVNE: lambda a, b, o: b if a != 0 else o,
    Opcode.ZAPNOT: lambda a, b, o: _zapnot(a, b),
    Opcode.SLL: lambda a, b, o: (a << (b & 0x3F)) & MASK64,
    Opcode.SRL: lambda a, b, o: a >> (b & 0x3F),
    Opcode.SRA: lambda a, b, o: (to_signed(a) >> (b & 0x3F)) & MASK64,
    Opcode.EXTBL: lambda a, b, o: (a >> (8 * (b & 0x7))) & 0xFF,
    Opcode.EXTWL: lambda a, b, o: (a >> (8 * (b & 0x7))) & 0xFFFF,
    Opcode.NOP: lambda a, b, o: 0,
}


# Branch-condition twin of COMPUTE_FNS: one callable per conditional
# branch opcode, (a) -> taken, avoiding both the if-chain and the
# unconditional to_signed conversion (sign tests reduce to bit tests on
# the unsigned pattern).  Checked against branch_taken() by the same
# differential test.
BRANCH_FNS = {
    Opcode.BEQ: lambda a: a == 0,
    Opcode.BNE: lambda a: a != 0,
    Opcode.BLT: lambda a: a >= SIGN_BIT,
    Opcode.BLE: lambda a: a == 0 or a >= SIGN_BIT,
    Opcode.BGT: lambda a: a != 0 and a < SIGN_BIT,
    Opcode.BGE: lambda a: a < SIGN_BIT,
    Opcode.BLBC: lambda a: (a & 1) == 0,
    Opcode.BLBS: lambda a: (a & 1) == 1,
}


def branch_taken(op: Opcode, a: int) -> bool:
    """Evaluate a conditional branch's condition on register value ``a``."""
    signed = to_signed(a)
    if op is Opcode.BEQ:
        return a == 0
    if op is Opcode.BNE:
        return a != 0
    if op is Opcode.BLT:
        return signed < 0
    if op is Opcode.BLE:
        return signed <= 0
    if op is Opcode.BGT:
        return signed > 0
    if op is Opcode.BGE:
        return signed >= 0
    if op is Opcode.BLBC:
        return (a & 1) == 0
    if op is Opcode.BLBS:
        return (a & 1) == 1
    raise ValueError(f"branch_taken() does not handle opcode {op}")
