"""64-bit Alpha-like instruction set: registers, opcodes, semantics."""

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction, Program
from repro.isa.opcodes import (
    ALU_CLASSES,
    CALL_OPS,
    CONDITIONAL_BRANCHES,
    MEM_SIZE,
    PACKABLE_CLASSES,
    Opcode,
    OpClass,
    is_control,
    op_class,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    REG_INDEX,
    REG_NAMES,
    ZERO_REG,
    RegisterFile,
    reg_index,
)
from repro.isa.semantics import (
    MASK64,
    branch_taken,
    compute,
    mask64,
    sext,
    to_signed,
    to_unsigned,
)

__all__ = [
    "ALU_CLASSES",
    "CALL_OPS",
    "CONDITIONAL_BRANCHES",
    "INSTRUCTION_BYTES",
    "Instruction",
    "MASK64",
    "MEM_SIZE",
    "NUM_INT_REGS",
    "Opcode",
    "OpClass",
    "PACKABLE_CLASSES",
    "Program",
    "REG_INDEX",
    "REG_NAMES",
    "RegisterFile",
    "ZERO_REG",
    "branch_taken",
    "compute",
    "is_control",
    "mask64",
    "op_class",
    "reg_index",
    "sext",
    "to_signed",
    "to_unsigned",
]
