"""Translation lookaside buffers.

Table 1: "TLBs — 128 entry, fully associative, 30-cycle miss latency".
Address translation itself is the identity (the workloads run on
simulated physical addresses); only the timing effect of TLB misses is
modeled, as in SimpleScalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.layout import PAGE_BYTES


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Fully associative TLB with LRU replacement."""

    def __init__(self, name: str, entries: int = 128,
                 page_bytes: int = PAGE_BYTES,
                 miss_latency: int = 30) -> None:
        self.name = name
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_latency = miss_latency
        self.stats = TLBStats()
        self._pages: list[int] = []   # LRU order, index 0 = most recent

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added latency (0 on hit)."""
        page = addr // self.page_bytes
        self.stats.accesses += 1
        try:
            index = self._pages.index(page)
        except ValueError:
            index = -1
        if index >= 0:
            self._pages.insert(0, self._pages.pop(index))
            return 0
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop()
        self._pages.insert(0, page)
        return self.miss_latency

    def flush(self) -> None:
        self._pages = []
