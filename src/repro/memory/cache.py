"""Set-associative caches with LRU replacement (timing model).

Only tags are modeled — data always comes from the backing store — which
is exactly SimpleScalar's approach: the cache model supplies hit/miss
latencies while functional data lives elsewhere.  Configuration defaults
follow Table 1 of the paper (64K 2-way 32B L1s, 8M 4-way unified L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A single level of set-associative cache with true-LRU replacement.

    ``access`` returns True on hit.  Lines are write-allocate /
    write-back; evictions of dirty lines bump the writeback counter.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 block_bytes: int) -> None:
        if size_bytes % (assoc * block_bytes):
            raise ValueError("cache size must be a multiple of assoc*block")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (assoc * block_bytes)
        self.stats = CacheStats()
        # Per set: list of tags in LRU order (index 0 = most recent) and
        # a parallel dirty-bit list.
        self._tags: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: list[list[bool]] = [[] for _ in range(self.num_sets)]

    def _locate(self, addr: int) -> tuple[int, int]:
        block = addr // self.block_bytes
        return block % self.num_sets, block // self.num_sets

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; allocate on miss.  Returns True on hit."""
        set_index, tag = self._locate(addr)
        tags = self._tags[set_index]
        dirty = self._dirty[set_index]
        self.stats.accesses += 1
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            # Hit: move to MRU position.
            tags.insert(0, tags.pop(way))
            dirty.insert(0, dirty.pop(way) or is_write)
            return True
        # Miss: allocate, possibly evicting the LRU way.
        self.stats.misses += 1
        if len(tags) >= self.assoc:
            tags.pop()
            if dirty.pop():
                self.stats.writebacks += 1
        tags.insert(0, tag)
        dirty.insert(0, is_write)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or stats."""
        set_index, tag = self._locate(addr)
        return tag in self._tags[set_index]

    def flush(self) -> None:
        """Invalidate every line (dirty data is dropped, not counted)."""
        self._tags = [[] for _ in range(self.num_sets)]
        self._dirty = [[] for _ in range(self.num_sets)]


@dataclass
class PerfectCache:
    """Always-hit stand-in used when cache modeling is disabled."""

    name: str = "perfect"
    stats: CacheStats = field(default_factory=CacheStats)

    def access(self, addr: int, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        return True

    def probe(self, addr: int) -> bool:
        return True

    def flush(self) -> None:
        pass
