"""Flat backing store for the simulated address space.

The store is sparse (page-granular bytearrays) so workloads can place
data above the 4 GB line — as a real Alpha process image does — without
allocating gigabytes.  All accesses are little-endian, matching Alpha.

:class:`SpeculativeMemory` layers wrong-path store data over a backing
store; the core uses it so that speculatively executed code (paper
Section 2.3 / Figure 2: "uncommon paths ... may be executed (but not
committed)") sees its own stores without corrupting architected memory.
"""

from __future__ import annotations

from repro.asm.layout import PAGE_BYTES

_PAGE_MASK = PAGE_BYTES - 1


class MainMemory:
    """Byte-addressable sparse memory.

    Unwritten locations read as zero, which also makes wrong-path loads
    from wild addresses harmless.
    """

    __slots__ = ("_pages",)

    def __init__(self, image: dict[int, int] | None = None) -> None:
        self._pages: dict[int, bytearray] = {}
        if image:
            for addr, byte in image.items():
                self.store_byte(addr, byte)

    def _page(self, addr: int) -> bytearray:
        page_id = addr // PAGE_BYTES
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(PAGE_BYTES)
            self._pages[page_id] = page
        return page

    def load_byte(self, addr: int) -> int:
        page = self._pages.get(addr // PAGE_BYTES)
        if page is None:
            return 0
        return page[addr & _PAGE_MASK]

    def store_byte(self, addr: int, value: int) -> None:
        self._page(addr)[addr & _PAGE_MASK] = value & 0xFF

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes little-endian, returned zero-extended."""
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            page = self._pages.get(addr // PAGE_BYTES)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + size], "little")
        value = 0
        for i in range(size):
            value |= self.load_byte(addr + i) << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        value &= (1 << (8 * size)) - 1
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_BYTES:
            self._page(addr)[offset:offset + size] = value.to_bytes(
                size, "little")
            return
        for i in range(size):
            self.store_byte(addr + i, (value >> (8 * i)) & 0xFF)


class SpeculativeMemory:
    """Copy-on-write overlay over a :class:`MainMemory`.

    Speculative stores land in the overlay; loads check it byte-by-byte
    before falling through.  :meth:`discard` throws away all wrong-path
    state, and :meth:`empty` reports whether any speculation happened.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: MainMemory) -> None:
        self._base = base
        self._overlay: dict[int, int] = {}

    def load(self, addr: int, size: int) -> int:
        if not self._overlay:
            return self._base.load(addr, size)
        value = 0
        for i in range(size):
            byte = self._overlay.get(addr + i)
            if byte is None:
                byte = self._base.load_byte(addr + i)
            value |= byte << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self._overlay[addr + i] = (value >> (8 * i)) & 0xFF

    def discard(self) -> None:
        """Drop all speculative stores (misprediction recovery)."""
        self._overlay.clear()

    def empty(self) -> bool:
        return not self._overlay
