"""Memory substrate: backing store, caches, TLBs, hierarchy (Table 1)."""

from repro.memory.backing import MainMemory, SpeculativeMemory
from repro.memory.cache import Cache, CacheStats, PerfectCache
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.tlb import TLB, TLBStats

__all__ = [
    "Cache",
    "CacheStats",
    "HierarchyConfig",
    "MainMemory",
    "MemoryHierarchy",
    "PerfectCache",
    "SpeculativeMemory",
    "TLB",
    "TLBStats",
]
