"""The full memory hierarchy of Table 1, glued together.

* L1 data cache: 64K, 2-way, 32B blocks, 1-cycle latency
* L1 instruction cache: 64K, 2-way, 32B blocks, 1-cycle latency
* L2 unified: 8M, 4-way, 32B blocks, 12-cycle latency
* Main memory: 100 cycles
* I/D TLBs: 128-entry fully associative, 30-cycle miss

The hierarchy returns total access latencies; functional data comes from
the :class:`~repro.memory.backing.MainMemory` owned by the core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, PerfectCache
from repro.memory.tlb import TLB


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes and latencies, defaulted to the paper's Table 1."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l2_size: int = 8 * 1024 * 1024
    l2_assoc: int = 4
    block_bytes: int = 32
    l1_latency: int = 1
    l2_latency: int = 12
    memory_latency: int = 100
    tlb_entries: int = 128
    tlb_miss_latency: int = 30
    perfect: bool = False   # all-hit hierarchy (fast functional runs)


class MemoryHierarchy:
    """Two-level cache hierarchy with TLBs, returning access latencies."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        if cfg.perfect:
            self.l1i = PerfectCache("il1")
            self.l1d = PerfectCache("dl1")
            self.l2 = PerfectCache("ul2")
        else:
            self.l1i = Cache("il1", cfg.l1i_size, cfg.l1i_assoc,
                             cfg.block_bytes)
            self.l1d = Cache("dl1", cfg.l1d_size, cfg.l1d_assoc,
                             cfg.block_bytes)
            self.l2 = Cache("ul2", cfg.l2_size, cfg.l2_assoc,
                            cfg.block_bytes)
        self.itlb = TLB("itlb", cfg.tlb_entries, miss_latency=cfg.tlb_miss_latency)
        self.dtlb = TLB("dtlb", cfg.tlb_entries, miss_latency=cfg.tlb_miss_latency)

    def _through(self, l1: Cache | PerfectCache, addr: int,
                 is_write: bool) -> int:
        cfg = self.config
        if l1.access(addr, is_write):
            return cfg.l1_latency
        if self.l2.access(addr, is_write):
            return cfg.l2_latency
        return cfg.l2_latency + cfg.memory_latency

    def fetch_instruction(self, pc: int) -> int:
        """Latency of fetching the instruction block at ``pc``."""
        latency = self._through(self.l1i, pc, is_write=False)
        if self.config.perfect:
            return latency
        return latency + self.itlb.access(pc)

    def access_data(self, addr: int, is_write: bool = False) -> int:
        """Latency of a data access (load at issue, store at commit)."""
        latency = self._through(self.l1d, addr, is_write)
        if self.config.perfect:
            return latency
        return latency + self.dtlb.access(addr)

    def flush(self) -> None:
        """Invalidate caches and TLBs (used between benchmark runs)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.flush()
        self.dtlb.flush()
