"""Structured assembler and address-space layout for workloads."""

from repro.asm.assembler import Assembler, AssemblerError, standard_prologue
from repro.asm.layout import CODE_BASE, DATA_BASE, PAGE_BYTES, STACK_TOP

__all__ = [
    "Assembler",
    "AssemblerError",
    "CODE_BASE",
    "DATA_BASE",
    "PAGE_BYTES",
    "STACK_TOP",
    "standard_prologue",
]
