"""Simulated address-space layout.

The layout mirrors a 64-bit Alpha process image: code low, globals/heap
just above the 4 GB line and the stack a little higher.  Placing data
addresses above ``2**32`` is what produces the paper's Figure 1 "large
jump at 33 bits" for address calculations ("This corresponds to heap
and stack references").
"""

CODE_BASE = 0x0001_0000          # text segment
DATA_BASE = 0x1_0000_0000        # globals + heap: 33-bit addresses
STACK_TOP = 0x1_4000_0000        # stack grows down from here
PAGE_BYTES = 4096
