"""A small structured assembler for writing workloads.

Programs are built by calling emit methods on an :class:`Assembler`;
labels may be referenced before they are defined and are resolved by
:meth:`Assembler.assemble`.  Operand-size rules follow the Alpha:
operate-format literals are unsigned 8-bit (0..255) and memory
displacements are signed 16-bit, so larger constants must be built with
``lda``/``ldah`` sequences — the :meth:`Assembler.li` helper emits them.
This matters for fidelity: immediates are ALU operands and their widths
flow into the paper's bitwidth statistics.
"""

from __future__ import annotations

import sys

from repro.asm.layout import CODE_BASE, DATA_BASE, STACK_TOP
from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import CONDITIONAL_BRANCHES, Opcode, OpClass, op_class
from repro.isa.registers import ZERO_REG, reg_index
from repro.isa.semantics import to_unsigned

_OPERATE_LITERAL_MAX = 255
_DISP_MIN, _DISP_MAX = -32768, 32767


class AssemblerError(Exception):
    """Raised for malformed assembly (bad literals, unknown labels, ...).

    When the emitting call site is known the message is prefixed
    ``file:line:`` and ``mnemonic:``, and both are also available as
    attributes so tools can format their own diagnostics.
    """

    def __init__(self, message: str, *, mnemonic: str | None = None,
                 source: tuple[str, int] | None = None) -> None:
        self.mnemonic = mnemonic
        self.source = source
        prefix = ""
        if source is not None:
            prefix += f"{source[0]}:{source[1]}: "
        if mnemonic is not None:
            prefix += f"{mnemonic}: "
        super().__init__(prefix + message)


def _caller_site() -> tuple[str, int] | None:
    """``(file, line)`` of the nearest caller outside this module —
    the workload-builder statement that asked for the emission."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return None
    return frame.f_code.co_filename, frame.f_lineno


class _Fixup:
    """A branch whose target label is not yet resolved."""

    __slots__ = ("index", "label", "source")

    def __init__(self, index: int, label: str,
                 source: tuple[str, int] | None = None) -> None:
        self.index = index
        self.label = label
        self.source = source


class Assembler:
    """Builds a :class:`~repro.isa.instruction.Program` instruction by
    instruction.

    Typical use::

        asm = Assembler("my-kernel")
        buf = asm.alloc("buf", 1024)
        asm.li("s0", buf)
        asm.label("loop")
        asm.load("ldbu", "t0", "s0", 0)
        asm.op("addq", "t1", "t1", "t0")
        asm.op("addq", "s0", "s0", 1)
        asm.op("subq", "s2", "s2", 1)
        asm.br("bne", "s2", "loop")
        asm.halt()
        program = asm.assemble()
    """

    def __init__(self, name: str = "program", base_pc: int = CODE_BASE) -> None:
        self.name = name
        self.base_pc = base_pc
        self._instructions: list[Instruction] = []
        self._sources: list[tuple[str, int] | None] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []
        self._image: dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._symbols: dict[str, int] = {}

    # -- labels and layout --------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current instruction position."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}",
                                 source=_caller_site())
        self._labels[name] = len(self._instructions)

    def here(self) -> int:
        """Current instruction index (useful for computed targets)."""
        return len(self._instructions)

    def alloc(self, name: str, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` of zero-initialized data space; returns the
        address and records it as symbol ``name``."""
        cursor = -(-self._data_cursor // align) * align
        self._symbols[name] = cursor
        self._data_cursor = cursor + nbytes
        return cursor

    def symbol(self, name: str) -> int:
        """Address of a previously :meth:`alloc`'d symbol."""
        return self._symbols[name]

    def data_bytes(self, addr: int, data: bytes) -> None:
        """Place raw bytes into the initial memory image."""
        for offset, byte in enumerate(data):
            self._image[addr + offset] = byte

    def data_words(self, addr: int, values: list[int], size: int = 8) -> None:
        """Place little-endian integers of ``size`` bytes into the image."""
        for i, value in enumerate(values):
            raw = to_unsigned(value) & ((1 << (8 * size)) - 1)
            self.data_bytes(addr + i * size, raw.to_bytes(size, "little"))

    # -- low-level emit -------------------------------------------------------

    def _emit(self, inst: Instruction) -> None:
        self._instructions.append(inst)
        self._sources.append(_caller_site())

    # -- operate format -------------------------------------------------------

    def op(self, mnemonic: str, rd: str | int, ra: str | int,
           rb: str | int | None = None) -> None:
        """Emit an operate-format instruction ``rd = ra <op> rb``.

        ``rb`` may be a register name or an 8-bit literal (0..255), per
        the Alpha operate format.
        """
        opcode = Opcode(mnemonic)
        cls = op_class(opcode)
        if cls not in (OpClass.INT_ARITH, OpClass.INT_MULT,
                       OpClass.INT_LOGIC, OpClass.INT_SHIFT):
            raise AssemblerError("not an operate-format opcode",
                                 mnemonic=mnemonic, source=_caller_site())
        if opcode in (Opcode.LDA, Opcode.LDAH):
            raise AssemblerError("use lda()/li() for address arithmetic",
                                 mnemonic=mnemonic, source=_caller_site())
        if isinstance(rb, int):
            if not 0 <= rb <= _OPERATE_LITERAL_MAX:
                raise AssemblerError(
                    f"operate literal {rb} outside 0..255; build it with li()",
                    mnemonic=mnemonic, source=_caller_site())
            self._emit(Instruction(opcode, ra=reg_index(ra), rb=None,
                                   rd=reg_index(rd), imm=rb))
        else:
            if rb is None:
                raise AssemblerError("needs a second operand",
                                     mnemonic=mnemonic,
                                     source=_caller_site())
            self._emit(Instruction(opcode, ra=reg_index(ra),
                                   rb=reg_index(rb), rd=reg_index(rd)))

    def lda(self, rd: str | int, ra: str | int, disp: int,
            high: bool = False) -> None:
        """Emit ``lda rd, disp(ra)`` (or ``ldah`` when ``high``)."""
        if not _DISP_MIN <= disp <= _DISP_MAX:
            raise AssemblerError(f"displacement {disp} outside 16-bit range",
                                 mnemonic="ldah" if high else "lda",
                                 source=_caller_site())
        opcode = Opcode.LDAH if high else Opcode.LDA
        self._emit(Instruction(opcode, ra=reg_index(ra), rd=reg_index(rd),
                               imm=disp))

    # -- pseudo-instructions ---------------------------------------------------

    def li(self, rd: str | int, value: int) -> None:
        """Load an arbitrary constant, expanding to the shortest
        ``lda``/``ldah``/shift sequence, as an Alpha compiler would."""
        value = to_unsigned(value)
        signed = value - (1 << 64) if value >> 63 else value
        if _DISP_MIN <= signed <= _DISP_MAX:
            self.lda(rd, "zero", signed)
            return
        if -(1 << 47) <= signed < (1 << 47):
            # Up to 48 bits: build in 16-bit chunks with ldah/lda.  The
            # sign-carry between chunks can push the top chunk past the
            # signed 16-bit ldah range (e.g. 0x7FFF_8000_0000); those
            # rare values take the 64-bit path below instead.
            low = signed & 0xFFFF
            if low >= 0x8000:
                low -= 0x10000
            rest = (signed - low) >> 16
            mid = rest & 0xFFFF
            if mid >= 0x8000:
                mid -= 0x10000
            high = (rest - mid) >> 16
            if _DISP_MIN <= high <= _DISP_MAX:
                started = False
                if high:
                    self.lda(rd, "zero", high, high=True)
                    self.op("sll", rd, rd, 16)
                    started = True
                if mid or high:
                    self.lda(rd, rd if started else "zero", mid, high=True)
                    started = True
                self.lda(rd, rd if started else "zero", low)
                return
        # Full 64-bit constant: two 32-bit halves joined by a shift.
        if reg_index(rd) == reg_index("at"):
            raise AssemblerError("li of a 64-bit constant clobbers 'at'",
                                 mnemonic="li", source=_caller_site())
        self.li(rd, signed >> 32)
        self.op("sll", rd, rd, 32)
        self.li("at", value & 0xFFFF_FFFF)
        self.op("bis", rd, rd, "at")

    def mov(self, rd: str | int, rs: str | int) -> None:
        """Register move (``bis rd, rs, zero``)."""
        self._emit(Instruction(Opcode.BIS, ra=reg_index(rs), rb=ZERO_REG,
                               rd=reg_index(rd)))

    def clr(self, rd: str | int) -> None:
        """Clear a register (``bis rd, zero, zero``)."""
        self.mov(rd, "zero")

    def nop(self) -> None:
        self._emit(Instruction(Opcode.NOP))

    def halt(self) -> None:
        self._emit(Instruction(Opcode.HALT))

    # -- memory ------------------------------------------------------------------

    def load(self, mnemonic: str, rd: str | int, base: str | int,
             disp: int = 0) -> None:
        """Emit a load ``rd = mem[base + disp]``."""
        opcode = Opcode(mnemonic)
        if op_class(opcode) is not OpClass.LOAD:
            raise AssemblerError("not a load", mnemonic=mnemonic,
                                 source=_caller_site())
        self._check_disp(disp, mnemonic)
        self._emit(Instruction(opcode, rb=reg_index(base), rd=reg_index(rd),
                               imm=disp))

    def store(self, mnemonic: str, rs: str | int, base: str | int,
              disp: int = 0) -> None:
        """Emit a store ``mem[base + disp] = rs``."""
        opcode = Opcode(mnemonic)
        if op_class(opcode) is not OpClass.STORE:
            raise AssemblerError("not a store", mnemonic=mnemonic,
                                 source=_caller_site())
        self._check_disp(disp, mnemonic)
        self._emit(Instruction(opcode, ra=reg_index(rs), rb=reg_index(base),
                               imm=disp))

    def _check_disp(self, disp: int, mnemonic: str) -> None:
        if not _DISP_MIN <= disp <= _DISP_MAX:
            raise AssemblerError(f"displacement {disp} outside 16-bit range",
                                 mnemonic=mnemonic, source=_caller_site())

    # -- control flow ----------------------------------------------------------------

    def br(self, mnemonic: str, *args: str) -> None:
        """Emit a direct branch.

        ``br("bne", "t0", "loop")`` for conditional branches;
        ``br("br", "done")`` for the unconditional branch.
        """
        opcode = Opcode(mnemonic)
        if opcode in CONDITIONAL_BRANCHES and opcode is not Opcode.BR:
            if len(args) != 2:
                raise AssemblerError("needs (reg, label)",
                                     mnemonic=mnemonic,
                                     source=_caller_site())
            reg, target = args
            inst = Instruction(opcode, ra=reg_index(reg))
        elif opcode is Opcode.BR:
            if len(args) != 1:
                raise AssemblerError("needs (label,)", mnemonic="br",
                                     source=_caller_site())
            target = args[0]
            inst = Instruction(opcode)
        else:
            raise AssemblerError("not a direct branch", mnemonic=mnemonic,
                                 source=_caller_site())
        self._fixups.append(_Fixup(len(self._instructions), target,
                                   source=_caller_site()))
        self._emit(inst)

    def bsr(self, target: str, rd: str | int = "ra") -> None:
        """Call a label, saving the return address in ``rd``."""
        self._fixups.append(_Fixup(len(self._instructions), target,
                                   source=_caller_site()))
        self._emit(Instruction(Opcode.BSR, rd=reg_index(rd)))

    def jmp(self, rb: str | int) -> None:
        """Indirect jump to the address in ``rb``."""
        self._emit(Instruction(Opcode.JMP, rb=reg_index(rb)))

    def jsr(self, rb: str | int, rd: str | int = "ra") -> None:
        """Indirect call to the address in ``rb``."""
        self._emit(Instruction(Opcode.JSR, rb=reg_index(rb),
                               rd=reg_index(rd)))

    def ret(self, rb: str | int = "ra") -> None:
        """Return through ``rb`` (predicted by the return-address stack)."""
        self._emit(Instruction(Opcode.RET, rb=reg_index(rb)))

    # -- assembly ----------------------------------------------------------------------

    def assemble(self) -> Program:
        """Resolve labels and produce the final :class:`Program`."""
        instructions = list(self._instructions)
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                mnemonic = instructions[fixup.index].opcode.value
                raise AssemblerError(f"undefined label {fixup.label!r}",
                                     mnemonic=mnemonic,
                                     source=fixup.source)
            old = instructions[fixup.index]
            instructions[fixup.index] = Instruction(
                old.opcode, ra=old.ra, rb=old.rb, rd=old.rd, imm=old.imm,
                target=self._labels[fixup.label])
        return Program(instructions=instructions, base_pc=self.base_pc,
                       image=dict(self._image), name=self.name,
                       srcmap=list(self._sources))


def standard_prologue(asm: Assembler) -> None:
    """Set up the conventional stack pointer (shared by all workloads)."""
    asm.li("sp", STACK_TOP)
