"""Branch target buffer and return-address stack (Table 1).

* BTB: 2048-entry, 2-way set associative, LRU within the set.
* Return-address stack: 32 entries, circular (overflow overwrites the
  oldest entry, as in real hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import INSTRUCTION_BYTES


@dataclass
class BTBStats:
    lookups: int = 0
    hits: int = 0
    correct: int = 0


class BranchTargetBuffer:
    """2-way set-associative BTB mapping branch PC -> predicted target."""

    def __init__(self, entries: int = 2048, assoc: int = 2) -> None:
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.stats = BTBStats()
        # Per set: list of (tag, target) in LRU order.
        self._sets: list[list[tuple[int, int]]] = [
            [] for _ in range(self.num_sets)]

    def _locate(self, pc: int) -> tuple[int, int]:
        index = pc // INSTRUCTION_BYTES
        return index % self.num_sets, index // self.num_sets

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc``, or None on miss."""
        set_index, tag = self._locate(pc)
        ways = self._sets[set_index]
        self.stats.lookups += 1
        for i, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                ways.insert(0, ways.pop(i))
                self.stats.hits += 1
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the branch at ``pc``."""
        set_index, tag = self._locate(pc)
        ways = self._sets[set_index]
        for i, (entry_tag, _) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(i)
                break
        else:
            if len(ways) >= self.assoc:
                ways.pop()
        ways.insert(0, (tag, target))


class ReturnAddressStack:
    """Circular return-address stack (32 entries per Table 1)."""

    def __init__(self, entries: int = 32) -> None:
        self.entries = entries
        self._stack: list[int] = [0] * entries
        self._top = 0       # index of next push
        self._depth = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._top] = return_pc
        self._top = (self._top + 1) % self.entries
        if self._depth < self.entries:
            self._depth += 1

    def pop(self) -> int | None:
        if self._depth == 0:
            return None
        self._top = (self._top - 1) % self.entries
        self._depth -= 1
        return self._stack[self._top]

    def __len__(self) -> int:
        return self._depth
