"""Branch direction predictors.

Table 1 specifies a McFarling-style combining predictor:

* selector: 4K 2-bit counters, indexed by 12 bits of global history;
* local: 1K-entry local-history table (10-bit histories) feeding 1K
  3-bit counters;
* global: 4K 2-bit counters indexed by 12 bits of global history.

A simple bimodal predictor is provided for ablations, and
:class:`PerfectPredictor` models the paper's "perfect branch prediction"
configuration (Figures 2 and 10 compare perfect vs the combining
predictor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.counters import CounterTable
from repro.isa.instruction import INSTRUCTION_BYTES


@dataclass
class PredictorStats:
    lookups: int = 0
    mispredicts: int = 0

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class DirectionPredictor:
    """Interface: ``predict(pc, actual)`` then ``update(pc, taken)``.

    ``actual`` is passed to ``predict`` only so the perfect predictor
    can be an oracle; real predictors ignore it.
    """

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int, actual: bool) -> bool:
        raise NotImplementedError

    def lookup(self, pc: int) -> bool:
        """Direction lookup with no stats recording and no training —
        used for wrong-path branches, which never retire."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def record(self, predicted: bool, actual: bool) -> None:
        self.stats.lookups += 1
        if predicted != actual:
            self.stats.mispredicts += 1


def _pc_index(pc: int, entries: int) -> int:
    return (pc // INSTRUCTION_BYTES) & (entries - 1)


class PerfectPredictor(DirectionPredictor):
    """Oracle predictor: always right (paper's 'perfect' configuration)."""

    def predict(self, pc: int, actual: bool) -> bool:
        self.record(actual, actual)
        return actual

    def lookup(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(DirectionPredictor):
    """Classic per-PC 2-bit counter table (ablation baseline)."""

    def __init__(self, entries: int = 2048) -> None:
        super().__init__()
        self._table = CounterTable(entries, bits=2)

    def predict(self, pc: int, actual: bool) -> bool:
        predicted = self.lookup(pc)
        self.record(predicted, actual)
        return predicted

    def lookup(self, pc: int) -> bool:
        return self._table.predict(_pc_index(pc, len(self._table)))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(_pc_index(pc, len(self._table)), taken)


class LocalPredictor(DirectionPredictor):
    """Two-level local predictor: per-PC history feeding a counter table.

    Table 1: "1K 3-bit local predictor, 10-bit history".
    """

    def __init__(self, history_entries: int = 1024, history_bits: int = 10,
                 counters: int = 1024, counter_bits: int = 3) -> None:
        super().__init__()
        self._histories = [0] * history_entries
        self._history_mask = (1 << history_bits) - 1
        self._table = CounterTable(counters, bits=counter_bits)

    def _history_of(self, pc: int) -> int:
        return self._histories[_pc_index(pc, len(self._histories))]

    def predict(self, pc: int, actual: bool) -> bool:
        predicted = self.lookup(pc)
        self.record(predicted, actual)
        return predicted

    def lookup(self, pc: int) -> bool:
        index = self._history_of(pc) & (len(self._table) - 1)
        return self._table.predict(index)

    def update(self, pc: int, taken: bool) -> None:
        slot = _pc_index(pc, len(self._histories))
        history = self._histories[slot]
        self._table.update(history & (len(self._table) - 1), taken)
        self._histories[slot] = (
            (history << 1) | int(taken)) & self._history_mask


class GlobalPredictor(DirectionPredictor):
    """Two-level global predictor indexed by global branch history.

    Table 1: "4K 2-bit global predictor, 12-bit history".
    """

    def __init__(self, counters: int = 4096, counter_bits: int = 2,
                 history_bits: int = 12) -> None:
        super().__init__()
        self._table = CounterTable(counters, bits=counter_bits)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    @property
    def history(self) -> int:
        return self._history

    def predict(self, pc: int, actual: bool) -> bool:
        predicted = self.lookup(pc)
        self.record(predicted, actual)
        return predicted

    def lookup(self, pc: int) -> bool:
        return self._table.predict(self._history & (len(self._table) - 1))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._history & (len(self._table) - 1), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class CombiningPredictor(DirectionPredictor):
    """McFarling combining predictor (Table 1's configuration).

    A 4K 2-bit selector table, indexed by the global history, chooses
    between the local and global components; the selector trains toward
    whichever component was right when they disagree.
    """

    def __init__(self) -> None:
        super().__init__()
        self.local = LocalPredictor()
        self.global_ = GlobalPredictor()
        self._selector = CounterTable(4096, bits=2)

    def predict(self, pc: int, actual: bool) -> bool:
        index = self.global_.history & (len(self._selector) - 1)
        local_pred = self.local.predict(pc, actual)
        global_pred = self.global_.predict(pc, actual)
        use_global = self._selector.predict(index)
        predicted = global_pred if use_global else local_pred
        self.record(predicted, actual)
        # Remember component outcomes for the update step.
        self._last = (index, local_pred, global_pred)
        return predicted

    def lookup(self, pc: int) -> bool:
        index = self.global_.history & (len(self._selector) - 1)
        local_pred = self.local.lookup(pc)
        global_pred = self.global_.lookup(pc)
        return global_pred if self._selector.predict(index) else local_pred

    def update(self, pc: int, taken: bool) -> None:
        index, local_pred, global_pred = self._last
        if local_pred != global_pred:
            self._selector.update(index, global_pred == taken)
        self.local.update(pc, taken)
        self.global_.update(pc, taken)


def make_predictor(kind: str) -> DirectionPredictor:
    """Factory for the predictor configurations used in the paper."""
    if kind == "perfect":
        return PerfectPredictor()
    if kind == "combining":
        return CombiningPredictor()
    if kind == "bimodal":
        return BimodalPredictor()
    if kind == "local":
        return LocalPredictor()
    if kind == "global":
        return GlobalPredictor()
    raise ValueError(f"unknown predictor kind {kind!r}")
