"""Saturating-counter tables shared by all direction predictors."""

from __future__ import annotations


class CounterTable:
    """A table of n-bit saturating counters.

    Counters start at the weakly-taken threshold.  ``predict`` returns
    the taken/not-taken direction; ``update`` trains toward the actual
    outcome.
    """

    __slots__ = ("bits", "max_value", "threshold", "_table")

    def __init__(self, entries: int, bits: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self._table = [self.threshold] * entries

    def __len__(self) -> int:
        return len(self._table)

    def value(self, index: int) -> int:
        return self._table[index]

    def predict(self, index: int) -> bool:
        """True = predict taken."""
        return self._table[index] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        value = self._table[index]
        if taken:
            if value < self.max_value:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1
