"""Branch prediction substrate (Table 1's combining predictor, BTB, RAS)."""

from repro.branch.btb import BranchTargetBuffer, BTBStats, ReturnAddressStack
from repro.branch.counters import CounterTable
from repro.branch.predictors import (
    BimodalPredictor,
    CombiningPredictor,
    DirectionPredictor,
    GlobalPredictor,
    LocalPredictor,
    PerfectPredictor,
    PredictorStats,
    make_predictor,
)

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BTBStats",
    "CombiningPredictor",
    "CounterTable",
    "DirectionPredictor",
    "GlobalPredictor",
    "LocalPredictor",
    "PerfectPredictor",
    "PredictorStats",
    "ReturnAddressStack",
    "make_predictor",
]
