"""``vortex`` stand-in: object-database record transactions.

SPECint95 ``vortex`` is an object-oriented database: its dynamic
profile is load/store heavy, walks fixed-layout records, and has very
predictable branch behaviour ("Ijpeg and vortex ... see little
difference in the speedup between perfect and the realistic
predictor").  The kernel runs transactions against a table of 40-byte
records — lookup by key, field increments of several widths, and a
record-copy path taken on a regular cadence — giving the same
load/store-dominated, well-predicted mix.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64
from repro.workloads.registry import (
    SPECINT95,
    WARMUP_HALF,
    Workload,
    register,
)

# Record: 40 bytes = key (8) | count (8) | flags (8) | balance (8) | link (8)
# The table is ~128K — twice the L1 — so transaction streams miss the L1
# and hit the warmed L2, like the real database's working set.
_RECORDS = 3276
_RECORD_BYTES = 40


def _record_image() -> list[int]:
    rng = Xorshift64(0x0B1EC7DB)
    words = []
    for i in range(_RECORDS):
        words += [
            i * 7 + 1,                 # key
            0,                         # count
            rng.next_below(16),        # flags (narrow)
            rng.next_below(10000),     # balance
            (i + 1) % _RECORDS,        # link to next record
        ]
    return words


def build(scale: int = 1) -> Program:
    asm = Assembler("vortex")
    prologue(asm)
    recs = asm.alloc("records", _RECORDS * _RECORD_BYTES)
    out = asm.alloc("out", 16)
    asm.data_words(recs, _record_image())

    # Register map:
    #   s0 record base   s1 current record addr   s2 committed txns
    #   s3 copy scratch
    asm.li("s0", recs)
    asm.mov("s1", "s0")
    asm.clr("s2")

    loop_begin(asm, "txn", "a0", 2 * _RECORDS * scale)
    # Read the record's fields (load heavy).
    asm.load("ldq", "t0", "s1", 0)           # key
    asm.load("ldq", "t1", "s1", 8)           # count
    asm.load("ldq", "t2", "s1", 16)          # flags
    asm.load("ldq", "t3", "s1", 24)          # balance

    # Update: count++, flags |= 4, balance += small credit.
    asm.op("addq", "t1", "t1", 1)
    asm.op("bis", "t2", "t2", 4)
    asm.op("and", "t4", "t0", 63)            # credit derived from key
    asm.op("addq", "t3", "t3", "t4")
    asm.store("stq", "t1", "s1", 8)
    asm.store("stq", "t2", "s1", 16)
    asm.store("stq", "t3", "s1", 24)

    # Every 8th transaction, snapshot the record (predictable branch,
    # small copy loop — vortex's object-clone path).
    asm.op("and", "t5", "s2", 7)
    asm.br("bne", "t5", "no_copy")
    asm.li("s3", 5)
    asm.clr("t6")
    asm.label("copy")
    asm.op("addq", "t7", "s1", "t6")
    asm.load("ldq", "t8", "t7", 0)
    asm.store("stq", "t8", "t7", 0)          # write-back in place
    asm.op("addq", "t6", "t6", 8)
    asm.op("subq", "s3", "s3", 1)
    asm.br("bne", "s3", "copy")
    asm.label("no_copy")

    # Follow the link field to the next record (33-bit address calc).
    asm.load("ldq", "t9", "s1", 32)
    asm.li("t10", _RECORD_BYTES)
    asm.op("mulq", "t11", "t9", "t10")
    asm.op("addq", "s1", "t11", "s0")
    asm.op("addq", "s2", "s2", 1)
    loop_end(asm, "txn", "a0")

    asm.li("t0", out)
    asm.store("stq", "s2", "t0", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="vortex",
    suite=SPECINT95,
    description="Object-database record transactions with predictable "
                "control (stand-in for SPECint95 vortex, persons.1k)",
    builder=build,
    warmup=WARMUP_HALF,
))
