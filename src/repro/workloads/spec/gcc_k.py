"""``gcc`` stand-in: IR-node walk with tag dispatch and constant folding.

SPECint95 ``gcc`` (compiling cccp.i) walks tree/RTL nodes, switches on
node codes, and folds small constants.  The kernel walks a graph of
synthetic IR nodes — each with an opcode tag, two operand links, and a
value — dispatching on the tag (a small switch with skewed, moderately
predictable cases), folding constants (narrow arithmetic), and
following links (33-bit address calculations).  The mix of moderately
narrow data and irregular-but-learnable branches matches gcc's middling
position in the paper's Figures 4 and 10.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64
from repro.workloads.registry import SPECINT95, Workload, register

# Node: 32 bytes = tag (8) | left index (8) | right index (8) | value (8)
_NODES = 512
_NODE_BYTES = 32
# Skewed tag distribution: mostly PLUS/REG, like real RTL streams.
_TAGS = (0, 0, 0, 1, 1, 2, 3)   # 0=PLUS 1=REG 2=MULT 3=CONST


def _node_image() -> list[int]:
    rng = Xorshift64(0x6CC00000 + 7)
    words: list[int] = []
    for _ in range(_NODES):
        tag = _TAGS[rng.next_below(len(_TAGS))]
        left = rng.next_below(_NODES)
        right = rng.next_below(_NODES)
        value = rng.next_below(4096)       # small constants, mostly
        if rng.next_below(8) == 0:
            value = rng.next64() >> 16     # occasional wide address-like
        words += [tag, left, right, value]
    return words


def build(scale: int = 1) -> Program:
    asm = Assembler("gcc")
    prologue(asm)
    nodes = asm.alloc("nodes", _NODES * _NODE_BYTES)
    out = asm.alloc("out", 16)
    asm.data_words(nodes, _node_image())

    # Register map:
    #   s0 node base   s1 current index   s2 accumulator   s3 fold count
    asm.li("s0", nodes)
    asm.clr("s2")
    asm.clr("s3")
    asm.li("s1", 1)

    loop_begin(asm, "walk", "a0", 900 * scale)
    # addr = base + index*32 (33-bit address calc)
    asm.op("sll", "t0", "s1", 5)
    asm.op("addq", "t0", "t0", "s0")
    asm.load("ldq", "t1", "t0", 0)          # tag
    asm.load("ldq", "t2", "t0", 8)          # left index
    asm.load("ldq", "t3", "t0", 16)         # right index
    asm.load("ldq", "t4", "t0", 24)         # value

    # switch (tag) — skewed dispatch.
    asm.br("bne", "t1", "not_plus")
    asm.op("addq", "s2", "s2", "t4")        # PLUS: fold value in
    asm.op("addq", "s3", "s3", 1)
    asm.br("br", "advance")
    asm.label("not_plus")
    asm.li("t5", 1)
    asm.op("cmpeq", "t6", "t1", "t5")
    asm.br("beq", "t6", "not_reg")
    asm.op("and", "t7", "t4", 31)           # REG: register number (narrow)
    asm.op("addq", "s2", "s2", "t7")
    asm.br("br", "advance")
    asm.label("not_reg")
    asm.li("t5", 2)
    asm.op("cmpeq", "t6", "t1", "t5")
    asm.br("beq", "t6", "is_const")
    asm.op("mull", "t7", "t4", 3)           # MULT: strength-reducible
    asm.op("sra", "t7", "t7", 2)
    asm.op("addq", "s2", "s2", "t7")
    asm.br("br", "advance")
    asm.label("is_const")
    asm.op("xor", "s2", "s2", "t4")         # CONST: mix it in

    asm.label("advance")
    # Per-node attribute bookkeeping (cost estimates, flag summaries):
    # independent narrow operations over the fetched fields, like gcc's
    # rtx attribute recomputation at each node visit.
    asm.op("and", "a2", "t2", 63)
    asm.op("and", "a3", "t3", 63)
    asm.op("addq", "a2", "a2", 7)
    asm.op("addq", "a3", "a3", 9)
    asm.op("xor", "a4", "t2", "t3")
    asm.op("and", "a4", "a4", 255)
    asm.op("addq", "a5", "a2", "a3")
    asm.op("addq", "s3", "s3", "a5")
    asm.op("addq", "s3", "s3", "a4")

    # Alternate left/right child by the low accumulator bit, and mix in
    # the walk phase so the visit sequence never settles into a short
    # cycle the predictor could memorize perfectly.
    asm.op("and", "t8", "s2", 1)
    asm.op("cmovne", "t2", "t8", "t3")      # pick right when odd
    asm.op("and", "t9", "a0", 7)
    asm.op("xor", "t2", "t2", "t9")
    asm.li("t10", _NODES - 1)
    asm.op("and", "t2", "t2", "t10")
    asm.mov("s1", "t2")
    asm.br("bne", "s1", "walk_ok")
    asm.li("s1", 1)                          # restart at node 1 on null
    asm.label("walk_ok")
    loop_end(asm, "walk", "a0")

    asm.li("t9", out)
    asm.store("stq", "s2", "t9", 0)
    asm.store("stq", "s3", "t9", 8)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="gcc",
    suite=SPECINT95,
    description="IR-node walk with skewed tag dispatch and constant "
                "folding (stand-in for SPECint95 gcc, cccp.i)",
    builder=build,
    warmup=600,
))
