"""SPECint95 stand-in kernels (paper Table 2)."""

from repro.workloads.spec import (  # noqa: F401
    compress_k,
    gcc_k,
    go_k,
    ijpeg_k,
    m88ksim_k,
    perl_k,
    vortex_k,
    xlisp_k,
)
