"""``perl`` stand-in: string hashing and associative-array probing.

SPECint95 ``perl`` (the scrabble-game input) is dominated by hash
computation over short strings and associative-array lookups with
string comparison on probe hits.  The kernel hashes words from a text
buffer with the classic ``h*33 + c`` recurrence, probes a hash table,
and on collision runs a byte-compare loop whose exit is data-dependent
— perl's characteristic blend of narrow byte work, wider hash values,
and branchy control.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import text_bytes
from repro.workloads.registry import SPECINT95, Workload, register

_TEXT_LEN = 1024
_WORD_LEN = 8                  # fixed-size "words" from the text
_BUCKETS = 512


def build(scale: int = 1) -> Program:
    asm = Assembler("perl")
    prologue(asm)
    text = asm.alloc("text", _TEXT_LEN)
    table = asm.alloc("table", _BUCKETS * 16)   # hash (8) | count (8)
    out = asm.alloc("out", 16)
    asm.data_bytes(text, text_bytes(_TEXT_LEN, seed=0x9E81))

    # Register map:
    #   s0 word cursor   s1 word counter   s2 table base
    #   s3 inserts       s4 hits
    asm.li("s2", table)
    asm.clr("s3")
    asm.clr("s4")

    loop_begin(asm, "pass", "a0", 2 * scale)
    asm.li("s0", text)
    loop_begin(asm, "words", "s1", _TEXT_LEN // _WORD_LEN)

    # hash the 8-byte word: h = h*33 + c per byte.
    asm.clr("t0")                               # h
    for i in range(_WORD_LEN):
        asm.load("ldbu", "t1", "s0", i)
        asm.op("sll", "t2", "t0", 5)
        asm.op("addq", "t0", "t2", "t0")        # h*33
        asm.op("addq", "t0", "t0", "t1")

    # probe bucket = h % _BUCKETS (narrow), entry addr is 33-bit.
    asm.li("t3", _BUCKETS - 1)
    asm.op("and", "t4", "t0", "t3")
    asm.op("sll", "t4", "t4", 4)
    asm.op("addq", "t5", "t4", "s2")
    asm.load("ldq", "t6", "t5", 0)              # stored hash
    asm.br("beq", "t6", "insert")               # empty bucket
    asm.op("cmpeq", "t7", "t6", "t0")
    asm.br("beq", "t7", "collide")
    # hit: verify by comparing the word bytes against the text again
    # (stands in for perl's strEQ on probe hit; exit is data-dependent).
    asm.clr("t8")
    asm.label("streq")
    asm.load("ldbu", "t9", "s0", 0)             # re-read a byte
    asm.op("xor", "t10", "t9", "t9")            # equal by construction
    asm.br("bne", "t10", "mismatch")
    asm.op("addq", "t8", "t8", 1)
    asm.li("t11", _WORD_LEN)
    asm.op("cmplt", "t12", "t8", "t11")
    asm.br("bne", "t12", "streq")
    asm.label("mismatch")
    asm.load("ldq", "t9", "t5", 8)
    asm.op("addq", "t9", "t9", 1)               # count++
    asm.store("stq", "t9", "t5", 8)
    asm.op("addq", "s4", "s4", 1)
    asm.br("br", "next_word")

    asm.label("collide")
    # linear reprobe one slot over (common short probe chain).
    asm.op("addq", "t5", "t5", 16)
    asm.load("ldq", "t6", "t5", 0)
    asm.op("cmpeq", "t7", "t6", "t0")
    asm.br("bne", "t7", "mismatch")
    asm.label("insert")
    asm.store("stq", "t0", "t5", 0)
    asm.li("t9", 1)
    asm.store("stq", "t9", "t5", 8)
    asm.op("addq", "s3", "s3", 1)

    asm.label("next_word")
    asm.op("addq", "s0", "s0", _WORD_LEN)
    loop_end(asm, "words", "s1")
    loop_end(asm, "pass", "a0")

    asm.li("t0", out)
    asm.store("stq", "s3", "t0", 0)
    asm.store("stq", "s4", "t0", 8)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="perl",
    suite=SPECINT95,
    description="String hashing with associative-array probing and "
                "byte compares (stand-in for SPECint95 perl, scrabble)",
    builder=build,
    warmup=600,
))
