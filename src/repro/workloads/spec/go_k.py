"""``go`` stand-in: board evaluation with data-dependent branches.

SPECint95 ``go`` is the suite's branch-predictor nightmare (the paper:
"go, notorious for its poor branch prediction, is affected the most")
and is "helped the most by adding the extra signal to detect 33-bit
operations" because it is dominated by address calculations into board
arrays.  This kernel walks a 19x19 board of pseudo-random stones,
counting liberties and chain strengths: every stone comparison is a
data-dependent branch on PRNG data, and every neighbour access is a
33-bit address calculation.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64
from repro.workloads.registry import SPECINT95, Workload, register

_SIZE = 19


def _board_bytes() -> bytes:
    rng = Xorshift64(0x60B0A2D0)
    # 0 = empty, 1 = black, 2 = white; roughly mid-game density.
    return bytes(rng.next_below(3) for _ in range(_SIZE * _SIZE))


def build(scale: int = 1) -> Program:
    asm = Assembler("go")
    prologue(asm)
    board = asm.alloc("board", _SIZE * _SIZE)
    score = asm.alloc("score", 16)
    asm.data_bytes(board, _board_bytes())

    # Register map:
    #   s0 board base   s1 row   s2 col   s3 score   s4 cell addr
    #   s5 our stone
    asm.li("s0", board)
    asm.clr("s3")

    loop_begin(asm, "eval", "a0", 2 * scale)
    asm.li("s1", _SIZE - 2)                  # rows 1..17 (skip edges)
    asm.label("row")
    asm.li("s2", _SIZE - 2)                  # cols 1..17
    asm.label("col")

    # addr = board + row*19 + col   (33-bit address arithmetic)
    asm.li("t0", _SIZE)
    asm.op("mulq", "t1", "s1", "t0")
    asm.op("addq", "t1", "t1", "s2")
    asm.op("addq", "s4", "t1", "s0")
    asm.load("ldbu", "s5", "s4", 0)          # the stone here
    asm.br("beq", "s5", "empty")             # data-dependent, ~33% taken

    # Count friendly neighbours (N, S, E, W) — four data-dependent
    # branches per occupied point, essentially random to the predictor.
    asm.load("ldbu", "t2", "s4", -_SIZE)     # north
    asm.op("cmpeq", "t3", "t2", "s5")
    asm.br("beq", "t3", "no_n")
    asm.op("addq", "s3", "s3", 2)
    asm.label("no_n")
    asm.load("ldbu", "t2", "s4", _SIZE)      # south
    asm.op("cmpeq", "t3", "t2", "s5")
    asm.br("beq", "t3", "no_s")
    asm.op("addq", "s3", "s3", 2)
    asm.label("no_s")
    asm.load("ldbu", "t2", "s4", 1)          # east
    asm.op("cmpeq", "t3", "t2", "s5")
    asm.br("beq", "t3", "no_e")
    asm.op("addq", "s3", "s3", 1)
    asm.label("no_e")
    asm.load("ldbu", "t2", "s4", -1)         # west
    asm.op("cmpeq", "t3", "t2", "s5")
    asm.br("beq", "t3", "no_w")
    asm.op("addq", "s3", "s3", 1)
    asm.label("no_w")
    asm.br("br", "cont")

    asm.label("empty")
    # Liberty credit for empty points adjacent to stones.
    asm.load("ldbu", "t2", "s4", 1)
    asm.op("addq", "s3", "s3", "t2")
    asm.label("cont")

    asm.op("subq", "s2", "s2", 1)
    asm.br("bne", "s2", "col")
    asm.op("subq", "s1", "s1", 1)
    asm.br("bne", "s1", "row")
    loop_end(asm, "eval", "a0")

    asm.li("t4", score)
    asm.store("stq", "s3", "t4", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="go",
    suite=SPECINT95,
    description="19x19 board evaluation with data-dependent stone "
                "comparisons (stand-in for SPECint95 go, 9stone21)",
    builder=build,
    warmup=500,
))
