"""``xlisp`` stand-in: cons-cell traversal with recursive descent.

SPECint95 ``xlisp`` (the XLISP interpreter) spends its time chasing
cons-cell pointers, dispatching on small type tags, and doing
mark-phase bit fiddling.  The kernel builds a binary cons tree in a
cell heap above 4 GB (pointers are 33-bit operands), then recursively
sums its leaves with ``bsr``/``ret`` — exercising the return-address
stack — and finally runs a GC-style mark sweep flipping tag bits with
narrow logic operations.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64
from repro.workloads.registry import SPECINT95, Workload, register

# Cell layout: 24 bytes = tag (8) | car (8) | cdr (8).
_CELLS = 255               # a complete binary tree of depth 8
_CELL_BYTES = 24
_TAG_CONS, _TAG_NUM = 1, 2


def _heap_image(heap_base: int) -> list[int]:
    """Build the tree: cell i has children 2i+1, 2i+2; leaves hold
    pseudo-random small numbers (LISP fixnums are typically tiny)."""
    rng = Xorshift64(0x115BCE11)
    words: list[int] = []
    for i in range(_CELLS):
        left, right = 2 * i + 1, 2 * i + 2
        if right < _CELLS:
            words += [_TAG_CONS,
                      heap_base + left * _CELL_BYTES,
                      heap_base + right * _CELL_BYTES]
        else:
            words += [_TAG_NUM, rng.next_below(100), 0]
    return words


def build(scale: int = 1) -> Program:
    asm = Assembler("xlisp")
    prologue(asm)
    heap = asm.alloc("heap", _CELLS * _CELL_BYTES)
    out = asm.alloc("out", 16)
    asm.data_words(heap, _heap_image(heap))

    # sum_tree(a0 = cell) -> v0, clobbers t0-t3; recursion on the stack.
    asm.br("br", "main")
    asm.label("sum_tree")
    asm.load("ldq", "t0", "a0", 0)          # tag (narrow)
    asm.li("t1", _TAG_NUM)
    asm.op("cmpeq", "t2", "t0", "t1")
    asm.br("beq", "t2", "cons_case")
    asm.load("ldq", "v0", "a0", 8)          # leaf: return the fixnum
    asm.ret()

    asm.label("cons_case")
    asm.op("subq", "sp", "sp", 24)          # push ra, a0, partial
    asm.store("stq", "ra", "sp", 0)
    asm.store("stq", "a0", "sp", 8)
    asm.load("ldq", "a0", "a0", 8)          # car
    asm.bsr("sum_tree")
    asm.store("stq", "v0", "sp", 16)        # save left sum
    asm.load("ldq", "a0", "sp", 8)
    asm.load("ldq", "a0", "a0", 16)         # cdr
    asm.bsr("sum_tree")
    asm.load("ldq", "t3", "sp", 16)
    asm.op("addq", "v0", "v0", "t3")        # left + right
    asm.load("ldq", "ra", "sp", 0)
    asm.op("addq", "sp", "sp", 24)
    asm.ret()

    asm.label("main")
    asm.clr("s1")
    loop_begin(asm, "evalloop", "s0", 6 * scale)
    asm.li("a0", heap)                      # root cell
    asm.bsr("sum_tree")
    asm.op("addq", "s1", "s1", "v0")        # accumulate across passes
    loop_end(asm, "evalloop", "s0")

    # GC mark phase: flip the mark bit in every cell tag (narrow logic).
    loop_begin(asm, "gcpass", "s2", 2 * scale)
    asm.li("s3", heap)
    loop_begin(asm, "mark", "s4", _CELLS)
    asm.load("ldq", "t0", "s3", 0)
    asm.op("xor", "t0", "t0", 8)            # toggle mark bit
    asm.op("bis", "t0", "t0", 16)           # set visited bit
    asm.store("stq", "t0", "s3", 0)
    asm.op("addq", "s3", "s3", _CELL_BYTES)
    loop_end(asm, "mark", "s4")
    loop_end(asm, "gcpass", "s2")

    # Undo the visited bits so repeated runs are idempotent, then halt.
    asm.li("t5", out)
    asm.store("stq", "s1", "t5", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="xlisp",
    suite=SPECINT95,
    description="Cons-cell tree interpreter with recursive descent and "
                "GC marking (stand-in for SPECint95 xlisp)",
    builder=build,
    warmup=500,
))
