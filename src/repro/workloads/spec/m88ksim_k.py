"""``m88ksim`` stand-in: an interpreter for a tiny 16-bit guest ISA.

SPECint95 ``m88ksim`` simulates a Motorola 88100: its hot loop fetches
16/32-bit guest instructions, extracts bit fields, dispatches on the
opcode, and operates on an in-memory register file.  The kernel
interprets a synthetic guest program in exactly that style: 16-bit
encodings (narrow loads), field extraction with shifts and masks
(narrow shift/logic), a four-way opcode dispatch, and guest registers
kept in memory (33-bit addressing).  Dispatch branches are skewed but
data-dependent — m88ksim's middling predictability.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64
from repro.workloads.registry import SPECINT95, Workload, register

_GUEST_INSTRS = 384
_GUEST_REGS = 16


def _guest_program() -> list[int]:
    """Encode guest instructions: op[15:12] rd[11:8] ra[7:4] rb/imm[3:0].
    Opcode mix skewed toward ADD (0) like real integer code."""
    rng = Xorshift64(0x88100 + 3)
    ops = (0, 0, 0, 1, 1, 2, 3)   # 0=ADD 1=ADDI 2=XOR 3=SHL
    out = []
    for _ in range(_GUEST_INSTRS):
        op = ops[rng.next_below(len(ops))]
        rd = rng.next_below(_GUEST_REGS)
        ra = rng.next_below(_GUEST_REGS)
        rb = rng.next_below(_GUEST_REGS)
        out.append((op << 12) | (rd << 8) | (ra << 4) | rb)
    return out


def build(scale: int = 1) -> Program:
    asm = Assembler("m88ksim")
    prologue(asm)
    code = asm.alloc("guest_code", _GUEST_INSTRS * 2)
    regs = asm.alloc("guest_regs", _GUEST_REGS * 8)
    out = asm.alloc("out", 16)
    asm.data_words(code, _guest_program(), size=2)
    rng = Xorshift64(0x12345)
    asm.data_words(regs, [rng.next_below(256) for _ in range(_GUEST_REGS)])

    # Register map:
    #   s0 guest code base   s1 guest PC (index)   s2 guest regfile base
    #   s3 retired counter
    asm.li("s0", code)
    asm.li("s2", regs)
    asm.clr("s3")

    loop_begin(asm, "runloop", "a0", 3 * scale)
    asm.clr("s1")
    loop_begin(asm, "fde", "a1", _GUEST_INSTRS)

    # Fetch: 16-bit guest encoding (always narrow).
    asm.op("sll", "t0", "s1", 1)
    asm.op("addq", "t0", "t0", "s0")
    asm.load("ldwu", "t1", "t0", 0)
    # Decode: extract op, rd, ra, rb fields (narrow shifts + masks).
    asm.op("srl", "t2", "t1", 12)           # op
    asm.op("srl", "t3", "t1", 8)
    asm.op("and", "t3", "t3", 15)           # rd
    asm.op("srl", "t4", "t1", 4)
    asm.op("and", "t4", "t4", 15)           # ra
    asm.op("and", "t5", "t1", 15)           # rb / imm

    # Read guest sources from the in-memory register file.
    asm.op("s8addq", "t6", "t4", "s2")
    asm.load("ldq", "t7", "t6", 0)          # R[ra]
    asm.op("s8addq", "t6", "t5", "s2")
    asm.load("ldq", "t8", "t6", 0)          # R[rb]

    # Execute: dispatch on op.
    asm.br("bne", "t2", "not_add")
    asm.op("addq", "t9", "t7", "t8")        # ADD
    asm.br("br", "wb")
    asm.label("not_add")
    asm.li("t10", 1)
    asm.op("cmpeq", "t11", "t2", "t10")
    asm.br("beq", "t11", "not_addi")
    asm.op("addq", "t9", "t7", "t5")        # ADDI (4-bit immediate)
    asm.br("br", "wb")
    asm.label("not_addi")
    asm.li("t10", 2)
    asm.op("cmpeq", "t11", "t2", "t10")
    asm.br("beq", "t11", "is_shl")
    asm.op("xor", "t9", "t7", "t8")         # XOR
    asm.br("br", "wb")
    asm.label("is_shl")
    asm.op("and", "t12", "t5", 7)
    asm.op("sll", "t9", "t7", "t12")        # SHL by small amount

    asm.label("wb")
    # Keep guest registers 16-bit, like a 16-bit guest machine.
    asm.li("at", 0xFFFF)
    asm.op("and", "t9", "t9", "at")
    asm.op("s8addq", "t6", "t3", "s2")
    asm.store("stq", "t9", "t6", 0)         # R[rd] = result
    asm.op("addq", "s3", "s3", 1)
    asm.op("addq", "s1", "s1", 1)
    loop_end(asm, "fde", "a1")
    loop_end(asm, "runloop", "a0")

    asm.li("t0", out)
    asm.store("stq", "s3", "t0", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="m88ksim",
    suite=SPECINT95,
    description="Fetch-decode-execute interpreter over a 16-bit guest "
                "ISA (stand-in for SPECint95 m88ksim, dhrystone input)",
    builder=build,
    warmup=500,
))
