"""``ijpeg`` stand-in: 8-point DCT butterflies and quantization over a
streaming image.

SPECint95 ``ijpeg`` is the narrowest SPEC benchmark in the paper's
Figure 4 ("Ijpeg has a large number of narrow-width arithmetic
operations") and gains the most power; in Figure 11 it nearly matches
the 8-issue machine once packing is enabled.  The kernel streams a
photographic image (image + coefficient planes exceed the 64K L1),
loading eight pixels per ``ldq``, unpacking with ``extbl``, running the
row-DCT add/sub butterflies, quantizing with small-constant multiplies
and arithmetic shifts, and saturating coefficients back to bytes — the
operation mix of the real JPEG forward path, essentially all of it on
<= 16-bit data.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import clamp_byte, loop_begin, loop_end, prologue
from repro.workloads.data import image_block
from repro.workloads.registry import (
    SPECINT95,
    WARMUP_HALF,
    Workload,
    register,
)

_IMAGE_BYTES = 40 * 1024       # image + coeff = 80K resident, > 64K L1
_LINE = 32                     # one 8-pixel group per cache line


def build(scale: int = 1) -> Program:
    asm = Assembler("ijpeg")
    prologue(asm)
    image = asm.alloc("image", _IMAGE_BYTES)
    coeff = asm.alloc("coeff", _IMAGE_BYTES)
    asm.data_bytes(image, image_block(256, _IMAGE_BYTES // 256))

    # Register map: s0 source ptr   s1 dest ptr
    loop_begin(asm, "frame", "a1", 2 * scale)
    asm.li("s0", image)
    asm.li("s1", coeff)
    loop_begin(asm, "groups", "a0", _IMAGE_BYTES // _LINE)

    # Load 8 pixels in one quad and unpack the byte lanes.
    asm.load("ldq", "a2", "s0", 0)
    for i, reg in enumerate(("t0", "t1", "t2", "t3", "t4", "t5", "t6",
                             "t7")):
        asm.op("extbl", reg, "a2", i)

    # Stage 1 butterflies: sums and differences of mirrored pairs.
    asm.op("addq", "t8", "t0", "t7")       # s07
    asm.op("subq", "t9", "t0", "t7")       # d07 (narrow, maybe negative)
    asm.op("addq", "t10", "t1", "t6")      # s16
    asm.op("subq", "t11", "t1", "t6")      # d16
    asm.op("addq", "a3", "t2", "t5")       # s25
    asm.op("subq", "a4", "t2", "t5")       # d25
    asm.op("addq", "a5", "t3", "t4")       # s34
    asm.op("subq", "v0", "t3", "t4")       # d34

    # Stage 2: DC/AC terms with small-constant multiplies (the
    # quantization scale), then arithmetic shifts back down.
    asm.op("addq", "t0", "t8", "a5")       # even part
    asm.op("addq", "t0", "t0", "t10")
    asm.op("addq", "t0", "t0", "a3")       # DC: sum of all 8
    asm.op("mull", "t1", "t9", 13)         # AC terms ~ d * w
    asm.op("mull", "t2", "t11", 17)
    asm.op("mull", "t3", "a4", 21)
    asm.op("mull", "t4", "v0", 25)
    asm.op("sra", "t1", "t1", 4)
    asm.op("sra", "t2", "t2", 4)
    asm.op("sra", "t3", "t3", 4)
    asm.op("sra", "t4", "t4", 4)
    asm.op("sra", "t0", "t0", 3)

    # Saturate and store the quantized coefficients as bytes.
    for i, reg in enumerate(("t0", "t1", "t2", "t3", "t4")):
        clamp_byte(asm, reg, "t12")
        asm.store("stb", reg, "s1", i)
    asm.op("xor", "t5", "t9", "t11")       # parity checksum (narrow logic)
    asm.op("and", "t5", "t5", 255)
    asm.store("stb", "t5", "s1", 5)

    asm.op("addq", "s0", "s0", _LINE)
    asm.op("addq", "s1", "s1", _LINE)
    loop_end(asm, "groups", "a0")
    loop_end(asm, "frame", "a1")
    asm.halt()
    return asm.assemble()


register(Workload(
    name="ijpeg",
    suite=SPECINT95,
    description="Row-DCT butterflies + quantization over a streaming "
                "image (stand-in for SPECint95 ijpeg, vigo.ppm)",
    builder=build,
    warmup=WARMUP_HALF,
))
