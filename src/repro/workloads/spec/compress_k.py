"""``compress`` stand-in: LZW-style hashing over a text buffer.

SPECint95 ``compress`` spends its time computing hash codes over the
input stream and probing/updating a code table.  The profile the paper
reports for it — one of the *least* narrow-width SPEC benchmarks — comes
from the wide rolling hash values and table entries.  This kernel
reproduces that: a multiplicative 64-bit rolling hash (wide operands), a
4K-entry table probed at 33-bit addresses, and narrow byte loads from
the input text.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import text_bytes
from repro.workloads.registry import (
    SPECINT95,
    WARMUP_HALF,
    Workload,
    register,
)

# Text (64K) plus code table (32K) exceed the L1, as bigtest.in's
# working set exceeds real caches; the table is hit pseudo-randomly.
_TEXT_LEN = 64 * 1024
_TABLE_ENTRIES = 4096


def build(scale: int = 1) -> Program:
    asm = Assembler("compress")
    prologue(asm)
    text = asm.alloc("text", _TEXT_LEN)
    table = asm.alloc("table", _TABLE_ENTRIES * 8)
    asm.data_bytes(text, text_bytes(_TEXT_LEN))

    # Register map:
    #   s0 text cursor      s1 byte counter        s2 table base
    #   s3 rolling hash     s4 matches             s5 code counter
    asm.li("s2", table)
    asm.clr("s4")
    asm.clr("s5")

    loop_begin(asm, "pass", "a0", 2 * scale)
    asm.li("s0", text)
    asm.mov("s3", "a0")     # new hash seed per pass: fresh dictionary
    loop_begin(asm, "byte", "s1", _TEXT_LEN // 16)

    asm.load("ldbu", "t0", "s0", 0)            # next input byte (narrow)
    # Rolling hash: h = h * 31 + c  (values go wide quickly).
    asm.op("sll", "t1", "s3", 5)
    asm.op("subq", "t1", "t1", "s3")
    asm.op("addq", "s3", "t1", "t0")
    # Probe the code table at h % 4096 (a 33-bit address calculation).
    asm.li("t2", _TABLE_ENTRIES - 1)
    asm.op("and", "t3", "s3", "t2")            # slot (narrow)
    asm.op("s8addq", "t4", "t3", "s2")         # table + slot*8
    asm.load("ldq", "t5", "t4", 0)             # stored code (wide-ish)
    asm.op("cmpeq", "t6", "t5", "s3")          # hash match?
    asm.br("beq", "t6", "miss")
    asm.op("addq", "s4", "s4", 1)              # hit: count a match
    asm.br("br", "next")
    asm.label("miss")
    asm.store("stq", "s3", "t4", 0)            # install new code
    asm.op("addq", "s5", "s5", 1)
    asm.label("next")
    asm.op("addq", "s0", "s0", 16)

    loop_end(asm, "byte", "s1")
    loop_end(asm, "pass", "a0")

    # Publish results for verification.
    out = asm.alloc("out", 16)
    asm.li("t7", out)
    asm.store("stq", "s4", "t7", 0)            # matches
    asm.store("stq", "s5", "t7", 8)            # new codes
    asm.halt()
    return asm.assemble()


register(Workload(
    name="compress",
    suite=SPECINT95,
    description="LZW-style rolling hash and code-table probing "
                "(stand-in for SPECint95 compress, bigtest.in)",
    builder=build,
    warmup=WARMUP_HALF,
))
