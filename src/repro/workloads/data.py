"""Deterministic input-data generation for the workload stand-ins.

The paper runs SPECint95 with reference inputs and MediaBench with its
shipped audio/video samples; we cannot run Alpha binaries, so each
stand-in kernel consumes synthetic data drawn from this deterministic
PRNG.  Determinism matters twice over: results are reproducible, and
the *baseline vs optimized* comparisons of Figures 10/11 see identical
dynamic instruction streams.
"""

from __future__ import annotations

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class Xorshift64:
    """xorshift64* PRNG — tiny, fast, and stable across platforms."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        if seed == 0:
            raise ValueError("seed must be nonzero")
        self._state = seed & _MASK64

    def next64(self) -> int:
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next64() % bound

    def bytes(self, count: int) -> bytes:
        """``count`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < count:
            out += self.next64().to_bytes(8, "little")
        return bytes(out[:count])

    def words(self, count: int, bits: int = 16, signed: bool = False) -> list[int]:
        """``count`` values of ``bits`` bits (two's-complement when
        ``signed``, so audio-like samples are centred on zero)."""
        values = []
        span = 1 << bits
        for _ in range(count):
            value = self.next64() % span
            if signed:
                value -= span // 2
            values.append(value)
        return values


def audio_samples(count: int, seed: int = 0xACED_5EED) -> list[int]:
    """16-bit signed samples with a smooth (speech-like) component so
    GSM/ADPCM stand-ins see realistic small sample-to-sample deltas."""
    rng = Xorshift64(seed)
    samples = []
    level = 0
    for _ in range(count):
        # Random walk with mean reversion: mostly small values, the
        # occasional wider excursion — like a speech envelope.
        level += rng.next_below(257) - 128
        level -= level // 8
        level = max(-32768, min(32767, level))
        samples.append(level)
    return samples


def image_block(width: int, height: int, seed: int = 0x1234_5678) -> bytes:
    """8-bit pixels with local smoothness (photographic-ish), for the
    ijpeg / mpeg2 stand-ins."""
    rng = Xorshift64(seed)
    pixels = bytearray(width * height)
    value = 128
    for y in range(height):
        for x in range(width):
            value += rng.next_below(33) - 16
            value = max(0, min(255, value))
            pixels[y * width + x] = value
    return bytes(pixels)


def text_bytes(count: int, seed: int = 0x7E57_DA7A) -> bytes:
    """ASCII-ish text with realistic letter skew, for compress/perl."""
    rng = Xorshift64(seed)
    alphabet = b"etaoinshrdlucmfwypvbgkjqxz     \n"
    return bytes(alphabet[rng.next_below(len(alphabet))]
                 for _ in range(count))
