"""Shared assembly idioms for the benchmark kernels."""

from __future__ import annotations

from repro.asm.assembler import Assembler, standard_prologue


def prologue(asm: Assembler) -> None:
    """Standard entry sequence (stack pointer setup)."""
    standard_prologue(asm)


def loop_begin(asm: Assembler, name: str, counter: str, count: int) -> None:
    """Initialize ``counter`` and open a counted loop labelled ``name``."""
    asm.li(counter, count)
    asm.label(name)


def loop_end(asm: Assembler, name: str, counter: str) -> None:
    """Decrement ``counter`` and branch back to ``name`` while nonzero."""
    asm.op("subq", counter, counter, 1)
    asm.br("bne", counter, name)


def clamp_byte(asm: Assembler, reg: str, tmp: str) -> None:
    """Clamp ``reg`` to 0..255 using branch-free conditional moves
    (the saturation idiom of image codecs)."""
    # if reg < 0: reg = 0
    asm.op("cmplt", tmp, reg, "zero")      # tmp = reg < 0
    asm.op("cmovne", reg, tmp, "zero")     # if tmp != 0: reg = 0
    # if reg > 255: reg = 255
    asm.li("at", 255)
    asm.op("cmplt", tmp, "at", reg)        # tmp = 255 < reg
    asm.op("cmovne", reg, tmp, "at")       # if tmp != 0: reg = 255
