"""Benchmark stand-ins for SPECint95 and MediaBench (Tables 2-3)."""

from repro.workloads.registry import (
    MEDIABENCH,
    SPECINT95,
    Workload,
    all_workloads,
    get_workload,
    register,
    suite_workloads,
)

__all__ = [
    "MEDIABENCH",
    "SPECINT95",
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "suite_workloads",
]
