"""``g721-encode`` / ``g721-decode`` stand-ins: G.721 ADPCM.

G.721 voice compression quantizes the difference between each 16-bit
sample and an adaptive prediction into a 4-bit code.  Virtually every
value in flight — samples, differences, step sizes, codes — fits in 16
bits, which is why the paper's media benchmarks gate so well.  The
encoder kernel runs the compare-ladder quantizer and predictor update;
the decoder reconstructs samples from 4-bit codes with the inverse
quantizer.  Control is a short data-dependent compare ladder per
sample, mostly well predicted.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import Xorshift64, audio_samples
from repro.workloads.registry import (
    MEDIABENCH,
    WARMUP_HALF,
    Workload,
    register,
)

_BUF_BYTES = 72 * 1024        # sample buffer, > 64K L1 (streams)
_LINE = 32                    # one sample quantized per cache line
_SAMPLES = _BUF_BYTES // _LINE


def _encode(scale: int) -> Program:
    asm = Assembler("g721-encode")
    prologue(asm)
    pcm = asm.alloc("pcm", _BUF_BYTES)
    codes = asm.alloc("codes", _SAMPLES)
    out = asm.alloc("out", 16)
    asm.data_words(pcm, audio_samples(_BUF_BYTES // 2, seed=0x6721), size=2)

    # Register map: s0 pcm base  s1 codes base  s2 index
    #   s3 predictor  s4 step size  s5 code checksum
    asm.li("s0", pcm)
    asm.li("s1", codes)

    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.clr("s3")
    asm.li("s4", 16)
    asm.clr("s2")
    asm.label("sample")
    # d = sample - predictor; one sample per cache line streams the
    # buffer through the L1.
    asm.li("t0", _LINE)
    asm.op("mulq", "t1", "s2", "t0")
    asm.op("addq", "t1", "t1", "s0")
    asm.load("ldwu", "t2", "t1", 0)
    asm.op("sll", "t2", "t2", 48)
    asm.op("sra", "t2", "t2", 48)
    asm.op("subq", "t3", "t2", "s3")

    # |d| and the sign bit.
    asm.op("cmplt", "t4", "t3", "zero")         # sign
    asm.op("subq", "t5", "zero", "t3")          # t5 = -d ...
    asm.op("cmoveq", "t5", "t4", "t3")          # ... or d when d >= 0

    # Compare-ladder quantizer: code bits from |d| vs step multiples.
    asm.clr("t6")                               # code
    asm.op("cmple", "t7", "s4", "t5")           # |d| >= step ?
    asm.br("beq", "t7", "q1")
    asm.op("bis", "t6", "t6", 4)
    asm.op("subq", "t5", "t5", "s4")
    asm.label("q1")
    asm.op("srl", "t8", "s4", 1)
    asm.op("cmple", "t7", "t8", "t5")           # |d| >= step/2 ?
    asm.br("beq", "t7", "q2")
    asm.op("bis", "t6", "t6", 2)
    asm.op("subq", "t5", "t5", "t8")
    asm.label("q2")
    asm.op("srl", "t8", "s4", 2)
    asm.op("cmple", "t7", "t8", "t5")           # |d| >= step/4 ?
    asm.br("beq", "t7", "q3")
    asm.op("bis", "t6", "t6", 1)
    asm.label("q3")
    asm.op("sll", "t9", "t4", 3)
    asm.op("bis", "t6", "t6", "t9")             # sign into bit 3

    # Predictor update: pred += (code centred) * step / 4.
    asm.op("and", "t10", "t6", 7)
    asm.op("mull", "t11", "t10", "s4")
    asm.op("sra", "t11", "t11", 2)
    asm.op("subq", "t12", "zero", "t11")
    asm.op("cmovne", "t11", "t4", "t12")        # apply sign
    asm.op("addq", "s3", "s3", "t11")
    # Step adaptation: bigger codes grow the step, small ones shrink it.
    asm.li("at", 3)
    asm.op("cmple", "t7", "at", "t10")
    asm.br("beq", "t7", "shrink")
    asm.op("sll", "s4", "s4", 1)                # grow
    asm.br("br", "clampstep")
    asm.label("shrink")
    asm.op("srl", "s4", "s4", 1)
    asm.label("clampstep")
    asm.li("at", 8)
    asm.op("cmplt", "t7", "s4", "at")
    asm.op("cmovne", "s4", "t7", "at")          # step >= 8
    asm.li("at", 2048)
    asm.op("cmplt", "t7", "at", "s4")
    asm.op("cmovne", "s4", "t7", "at")          # step <= 2048

    asm.op("addq", "a1", "s2", "s1")
    asm.store("stb", "t6", "a1", 0)            # emit the 4-bit code
    asm.op("xor", "s5", "s5", "t6")
    asm.op("addq", "s2", "s2", 1)
    asm.li("a2", _SAMPLES)
    asm.op("cmplt", "t7", "s2", "a2")
    asm.br("bne", "t7", "sample")
    loop_end(asm, "frames", "a0")

    asm.li("t0", out)
    asm.store("stq", "s5", "t0", 0)
    asm.halt()
    return asm.assemble()


def _decode(scale: int) -> Program:
    asm = Assembler("g721-decode")
    prologue(asm)
    codes = asm.alloc("codes", _BUF_BYTES)
    pcm = asm.alloc("pcm_out", _SAMPLES * 2)
    out = asm.alloc("out", 16)
    rng = Xorshift64(0xDEC721)
    asm.data_bytes(codes, bytes(rng.next_below(16)
                                for _ in range(_BUF_BYTES)))

    # Register map: s0 codes  s1 pcm out  s2 index  s3 predictor
    #   s4 step  s5 checksum
    asm.li("s0", codes)
    asm.li("s1", pcm)
    asm.clr("s5")

    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.clr("s3")
    asm.li("s4", 16)
    asm.clr("s2")
    asm.label("sample")
    asm.li("t0", _LINE)
    asm.op("mulq", "t0", "s2", "t0")
    asm.op("addq", "t0", "t0", "s0")
    asm.load("ldbu", "t1", "t0", 0)             # 4-bit code (one/line)
    asm.op("and", "t2", "t1", 7)                # magnitude
    asm.op("srl", "t3", "t1", 3)                # sign
    # dq = (2*mag + 1) * step / 8
    asm.op("sll", "t4", "t2", 1)
    asm.op("addq", "t4", "t4", 1)
    asm.op("mull", "t5", "t4", "s4")
    asm.op("sra", "t5", "t5", 3)
    asm.op("subq", "t6", "zero", "t5")
    asm.op("cmovne", "t5", "t3", "t6")
    asm.op("addq", "s3", "s3", "t5")            # reconstruct
    # clamp predictor to 16-bit audio range with compares + cmov.
    asm.li("at", 32767)
    asm.op("cmplt", "t7", "at", "s3")
    asm.op("cmovne", "s3", "t7", "at")
    asm.li("at", -32768)
    asm.op("cmplt", "t7", "s3", "at")
    asm.op("cmovne", "s3", "t7", "at")
    # step adaptation identical to the encoder.
    asm.li("at", 3)
    asm.op("cmple", "t7", "at", "t2")
    asm.br("beq", "t7", "shrink")
    asm.op("sll", "s4", "s4", 1)
    asm.br("br", "clampstep")
    asm.label("shrink")
    asm.op("srl", "s4", "s4", 1)
    asm.label("clampstep")
    asm.li("at", 8)
    asm.op("cmplt", "t7", "s4", "at")
    asm.op("cmovne", "s4", "t7", "at")
    asm.li("at", 2048)
    asm.op("cmplt", "t7", "at", "s4")
    asm.op("cmovne", "s4", "t7", "at")

    asm.op("sll", "t8", "s2", 1)
    asm.op("addq", "t8", "t8", "s1")
    asm.store("stw", "s3", "t8", 0)
    asm.op("xor", "s5", "s5", "s3")
    asm.op("addq", "s2", "s2", 1)
    asm.li("t9", _SAMPLES)
    asm.op("cmplt", "t7", "s2", "t9")
    asm.br("bne", "t7", "sample")
    loop_end(asm, "frames", "a0")

    asm.li("t0", out)
    asm.store("stq", "s5", "t0", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="g721-encode",
    suite=MEDIABENCH,
    description="G.721 ADPCM compare-ladder quantizer and predictor "
                "update (stand-in for MediaBench g721-encode)",
    builder=_encode,
    warmup=WARMUP_HALF,
))

register(Workload(
    name="g721-decode",
    suite=MEDIABENCH,
    description="G.721 ADPCM inverse quantizer and reconstruction "
                "(stand-in for MediaBench g721-decode)",
    builder=_decode,
    warmup=WARMUP_HALF,
))
