"""MediaBench stand-in kernels (paper Table 3)."""

from repro.workloads.media import g721_k, gsm_k, mpeg2_k  # noqa: F401
