"""``gsm-encode`` / ``gsm-decode`` stand-ins: GSM 06.10 style long-term
prediction over streaming 16-bit speech.

The paper singles out *gsm* for its "relatively large number of narrow
bitwidth multiply operations" (6% of its narrow ops are multiplies).
The encoder kernel streams several seconds of 16-bit samples, loading
four per quadword (``ldq`` + ``extwl`` unpacking, the classic pre-BWX
Alpha sequence), computing the lag-4 LTP cross-correlation — every
multiply operand a narrow sign-extended sample — and writing the LTP
residual.  The decoder reconstructs samples from residuals with the
inverse predictor.  Input and output buffers together exceed the L1,
so the loops alternate between L1-miss stalls and bursts of narrow
multiply-accumulate work, as the real codec does on frame data.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import audio_samples
from repro.workloads.registry import (
    MEDIABENCH,
    WARMUP_HALF,
    Workload,
    register,
)

_BUF_BYTES = 40 * 1024         # in + out = 80K resident, > 64K L1
_LINE = 32                     # one quad (4 samples) per cache line


def _unpack_lane(asm: Assembler, dst: str, src: str, lane: int) -> None:
    """Sign-extend 16-bit sample ``lane`` of quad ``src`` into ``dst``."""
    asm.op("extwl", dst, src, 2 * lane)
    asm.op("sll", dst, dst, 48)
    asm.op("sra", dst, dst, 48)


def _encode(scale: int) -> Program:
    asm = Assembler("gsm-encode")
    prologue(asm)
    pcm = asm.alloc("pcm", _BUF_BYTES)
    resid = asm.alloc("residual", _BUF_BYTES)
    out = asm.alloc("out", 32)
    asm.data_words(pcm, audio_samples(_BUF_BYTES // 2), size=2)

    # Register map: s0 pcm ptr  s1 residual ptr  s2..s5 lag accumulators
    #   a2..a5 previous quad's samples (the lag-4 taps)
    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.li("s0", pcm)
    asm.li("s1", resid)
    for reg in ("s2", "s3", "s4", "s5", "a2", "a3", "a4", "a5"):
        asm.clr(reg)
    loop_begin(asm, "quads", "a1", _BUF_BYTES // _LINE)

    asm.load("ldq", "t0", "s0", 0)               # 4 samples
    for lane, (cur, prev, acc) in enumerate(
            zip(("t1", "t2", "t3", "t4"),
                ("a2", "a3", "a4", "a5"),
                ("s2", "s3", "s4", "s5"))):
        _unpack_lane(asm, cur, "t0", lane)
        asm.op("mulq", "t5", cur, prev)          # narrow x narrow MAC
        asm.op("sra", "t5", "t5", 6)
        asm.op("addq", acc, acc, "t5")
        # LTP residual: e = s[i] - 3/4 * s[i-4]
        asm.op("mull", "t6", prev, 3)
        asm.op("sra", "t6", "t6", 2)
        asm.op("subq", "t7", cur, "t6")
        asm.store("stw", "t7", "s1", 2 * lane)
        asm.mov(prev, cur)                        # slide the lag window
    asm.op("addq", "s0", "s0", _LINE)
    asm.op("addq", "s1", "s1", _LINE)
    loop_end(asm, "quads", "a1")
    loop_end(asm, "frames", "a0")

    asm.op("addq", "s2", "s2", "s3")              # fold accumulators
    asm.op("addq", "s4", "s4", "s5")
    asm.op("addq", "s2", "s2", "s4")
    asm.li("t0", out)
    asm.store("stq", "s2", "t0", 0)               # total correlation
    asm.halt()
    return asm.assemble()


def _decode(scale: int) -> Program:
    asm = Assembler("gsm-decode")
    prologue(asm)
    resid = asm.alloc("residual", _BUF_BYTES)
    recon = asm.alloc("recon", _BUF_BYTES)
    out = asm.alloc("out", 16)
    asm.data_words(resid, audio_samples(_BUF_BYTES // 2, seed=0xDEC0DE),
                   size=2)

    # Register map: s0 resid ptr  s1 recon ptr  s2 checksum
    #   a2..a5 previous reconstructed quad (LTP taps)
    asm.clr("s2")
    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.li("s0", resid)
    asm.li("s1", recon)
    for reg in ("a2", "a3", "a4", "a5"):
        asm.clr(reg)
    loop_begin(asm, "quads", "a1", _BUF_BYTES // _LINE)

    # Two quads (8 samples) per iteration: the eight per-lane LTP
    # chains are independent, giving the issue stage a wide pool of
    # narrow operations, like the real decoder's unrolled synthesis.
    for half, quad in ((0, "t0"), (1, "v0")):
        asm.load("ldq", quad, "s0", 8 * half)
        for lane, (cur, prev) in enumerate(
                zip(("t1", "t2", "t3", "t4"), ("a2", "a3", "a4", "a5"))):
            _unpack_lane(asm, cur, quad, lane)
            asm.op("sll", cur, cur, 1)            # inverse APCM gain
            asm.op("mull", "t5", prev, 3)         # LTP tap: 3/4 * prev
            asm.op("sra", "t5", "t5", 2)
            asm.op("addq", "t6", cur, "t5")       # reconstruct
            asm.store("stw", "t6", "s1", 8 * half + 2 * lane)
            asm.op("xor", "s2", "s2", "t6")       # checksum
            asm.mov(prev, "t6")
    asm.op("addq", "s0", "s0", _LINE)
    asm.op("addq", "s1", "s1", _LINE)
    loop_end(asm, "quads", "a1")
    loop_end(asm, "frames", "a0")

    asm.li("t0", out)
    asm.store("stq", "s2", "t0", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="gsm-encode",
    suite=MEDIABENCH,
    description="GSM 06.10-style LTP correlation and residual over "
                "streaming 16-bit speech (stand-in for gsm-encode)",
    builder=_encode,
    warmup=WARMUP_HALF,
))

register(Workload(
    name="gsm-decode",
    suite=MEDIABENCH,
    description="GSM 06.10-style LTP synthesis from streaming residuals "
                "(stand-in for MediaBench gsm-decode)",
    builder=_decode,
    warmup=WARMUP_HALF,
))
