"""``mpeg2-encode`` / ``mpeg2-decode`` stand-ins: motion estimation and
block reconstruction over streaming 8-bit video frames.

MPEG-2 encoding is dominated by motion-estimation SAD (sum of absolute
differences) over 8-bit pixel data; decoding by motion-compensated
reconstruction with saturation.  Both stream through frame buffers whose
combined footprint exceeds the 64K L1 data cache — as real video does —
so the pipeline alternates between L1-miss stalls and bursts of narrow
arithmetic; those bursts are where the paper's packing optimization
recovers issue bandwidth.  Pixels are fetched eight at a time with
``ldq`` and unpacked with ``extbl``, the idiomatic Alpha byte-access
sequence (the encoder samples one quad per 32-byte line, i.e. 2:1
decimated search, a standard motion-estimation shortcut).

The first pass over the buffers warms the unified L2; the registry's
``WARMUP_HALF`` places it inside the warmup window, matching the
paper's cache-warming protocol.
"""

from __future__ import annotations

from repro.asm.assembler import Assembler
from repro.isa.instruction import Program
from repro.workloads.common import loop_begin, loop_end, prologue
from repro.workloads.data import image_block
from repro.workloads.registry import (
    MEDIABENCH,
    WARMUP_HALF,
    Workload,
    register,
)

_ENC_FRAME = 40 * 1024         # cur + ref = 80K resident, > 64K L1
_DEC_FRAME = 32 * 1024         # pred + resid + recon = 96K resident
_LINE = 32                     # one quad sampled per cache line


def _encode(scale: int) -> Program:
    """Decimated SAD between a current and a reference frame."""
    asm = Assembler("mpeg2-encode")
    prologue(asm)
    cur = asm.alloc("cur", _ENC_FRAME)
    ref = asm.alloc("ref", _ENC_FRAME)
    out = asm.alloc("out", 16)
    asm.data_bytes(cur, image_block(256, _ENC_FRAME // 256, seed=0xC0DEC))
    asm.data_bytes(ref, image_block(256, _ENC_FRAME // 256, seed=0xF1E1D))

    # Register map: s0 cur ptr  s1 ref ptr  s2/s3 SAD halves
    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.li("s0", cur)
    asm.li("s1", ref)
    asm.clr("s2")
    asm.clr("s3")
    loop_begin(asm, "groups", "a1", _ENC_FRAME // _LINE)

    asm.load("ldq", "t0", "s0", 0)           # 8 current pixels
    asm.load("ldq", "t1", "s1", 0)           # 8 reference pixels
    # Absolute-difference four byte lanes; two independent accumulators
    # keep the narrow adds parallel.
    for lane in range(4):
        acc = "s2" if lane < 2 else "s3"
        asm.op("extbl", "t2", "t0", lane)
        asm.op("extbl", "t3", "t1", lane)
        asm.op("subq", "t4", "t2", "t3")     # 9-bit signed diff
        asm.op("subq", "t5", "zero", "t4")
        asm.op("cmplt", "t6", "t4", "zero")
        asm.op("cmovne", "t4", "t6", "t5")   # |diff|
        asm.op("addq", acc, acc, "t4")
    asm.op("addq", "s0", "s0", _LINE)
    asm.op("addq", "s1", "s1", _LINE)
    loop_end(asm, "groups", "a1")
    asm.op("addq", "s2", "s2", "s3")
    loop_end(asm, "frames", "a0")

    asm.li("t0", out)
    asm.store("stq", "s2", "t0", 0)
    asm.halt()
    return asm.assemble()


def _decode(scale: int) -> Program:
    """Motion-compensated reconstruction: recon = sat(pred + residual)."""
    asm = Assembler("mpeg2-decode")
    prologue(asm)
    pred = asm.alloc("pred", _DEC_FRAME)
    resid = asm.alloc("resid", _DEC_FRAME)
    recon = asm.alloc("recon", _DEC_FRAME)
    out = asm.alloc("out", 16)
    asm.data_bytes(pred, image_block(256, _DEC_FRAME // 256, seed=0x9EC0))
    asm.data_bytes(resid, image_block(256, _DEC_FRAME // 256, seed=0x4E51D))

    # Register map: s0 pred  s1 resid  s2 recon  s3 checksum
    asm.clr("s3")
    loop_begin(asm, "frames", "a0", 2 * scale)
    asm.li("s0", pred)
    asm.li("s1", resid)
    asm.li("s2", recon)
    loop_begin(asm, "groups", "a1", _DEC_FRAME // _LINE)

    asm.load("ldq", "t0", "s0", 0)           # 8 predicted pixels
    asm.load("ldq", "t1", "s1", 0)           # 8 residual bytes
    for lane in range(4):
        asm.op("extbl", "t2", "t0", lane)
        asm.op("extbl", "t3", "t1", lane)
        asm.op("subq", "t3", "t3", 128)      # centre the residual
        asm.op("sra", "t3", "t3", 1)
        asm.op("addq", "t4", "t2", "t3")     # reconstruct
        # saturate to 0..255 branch-free
        asm.op("cmplt", "t5", "t4", "zero")
        asm.op("cmovne", "t4", "t5", "zero")
        asm.li("at", 255)
        asm.op("cmplt", "t5", "at", "t4")
        asm.op("cmovne", "t4", "t5", "at")
        asm.store("stb", "t4", "s2", lane)
        asm.op("addq", "s3", "s3", "t4")     # luma checksum
    asm.op("addq", "s0", "s0", _LINE)
    asm.op("addq", "s1", "s1", _LINE)
    asm.op("addq", "s2", "s2", _LINE)
    loop_end(asm, "groups", "a1")
    loop_end(asm, "frames", "a0")

    asm.li("t0", out)
    asm.store("stq", "s3", "t0", 0)
    asm.halt()
    return asm.assemble()


register(Workload(
    name="mpeg2-encode",
    suite=MEDIABENCH,
    description="Decimated motion-estimation SAD over streaming 8-bit "
                "frames (stand-in for MediaBench mpeg2-encode)",
    builder=_encode,
    warmup=WARMUP_HALF,
))

register(Workload(
    name="mpeg2-decode",
    suite=MEDIABENCH,
    description="Motion-compensated reconstruction with saturation over "
                "streaming frames (stand-in for MediaBench mpeg2-decode)",
    builder=_decode,
    warmup=WARMUP_HALF,
))
