"""Workload registry: the benchmark stand-ins of Tables 2 and 3.

Each workload names a builder that assembles a complete program plus the
warmup fraction the paper's methodology skips ("The warmup period also
avoids the effects of smaller operand sizes that are prevalent within
program initialization", Section 3.2).  ``scale`` stretches the main
loop counts so experiments can trade runtime for statistical weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.instruction import Program

#: Suite identifiers matching the paper's Tables 2 and 3.
SPECINT95 = "specint95"
MEDIABENCH = "mediabench"


#: Sentinel for :attr:`Workload.warmup`: warm up through the first half
#: of the run (used by streaming kernels whose first pass over their
#: buffers warms the L2, mirroring the paper's cache-warming protocol).
WARMUP_HALF = -1


@dataclass(frozen=True)
class Workload:
    """A registered benchmark stand-in."""

    name: str
    suite: str
    description: str
    builder: Callable[[int], Program]
    #: instructions of fast-mode warmup before detailed simulation
    #: (:data:`WARMUP_HALF` = half of the full dynamic length)
    warmup: int = 0
    #: detailed-simulation window in committed instructions (the analog
    #: of the paper's 100M-instruction representative window); None =
    #: run to completion
    window: int | None = 30_000

    def build(self, scale: int = 1) -> Program:
        """Assemble the program at the given scale factor (>= 1)."""
        if scale < 1:
            raise ValueError("scale must be >= 1")
        return self.builder(scale)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a workload by name (e.g. ``"ijpeg"``, ``"gsm-encode"``)."""
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def suite_workloads(suite: str) -> list[Workload]:
    """All workloads in a suite (:data:`SPECINT95` or :data:`MEDIABENCH`)."""
    _ensure_loaded()
    return [w for w in _REGISTRY.values() if w.suite == suite]


_LENGTH_CACHE: dict[tuple[str, int], int] = {}


def dynamic_length(workload: Workload, scale: int = 1) -> int:
    """Total dynamic instruction count of a workload (functional run,
    cached per scale)."""
    key = (workload.name, scale)
    if key not in _LENGTH_CACHE:
        from repro.core.config import BASELINE
        from repro.core.feed import Feed

        feed = Feed(workload.build(scale), BASELINE)
        feed.fast_mode = True
        count = 0
        while feed.next() is not None:
            count += 1
        _LENGTH_CACHE[key] = count
    return _LENGTH_CACHE[key]


def resolve_warmup(workload: Workload, scale: int = 1) -> int:
    """Concrete warmup instruction count (resolves :data:`WARMUP_HALF`)."""
    if workload.warmup == WARMUP_HALF:
        return dynamic_length(workload, scale) // 2
    return workload.warmup


def _ensure_loaded() -> None:
    """Import the benchmark modules, which register themselves."""
    # Imported lazily so `import repro.workloads` stays cheap.
    from repro.workloads import media, spec  # noqa: F401
