"""Width tags carried through the machine alongside operand values.

Section 4.2: "This signal, called zero48 ..., denotes that the upper
48-bits are all zeros and is created by zero detection logic when the
result was computed."  Section 5.2: "Each entry in the reservation
update unit (RUU) stores an extra bit for each operand indicating that
the size of the operand is 16-bits or less."

A :class:`WidthTag` bundles the two per-value signals the proposed
hardware maintains (narrow-at-16, narrow-at-33).  Tags are created by
:func:`tag_value` when a result is produced (writeback, or the
cache-side zero detect for loads) and stored in RUU entries for use at
issue time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW, is_narrow


@dataclass(frozen=True, slots=True)
class WidthTag:
    """The per-value narrow-width signals of the proposed hardware.

    ``narrow16`` corresponds to Figure 3's ``zero48`` (extended with the
    parallel ones-detect for negative values); ``narrow33`` is the
    second cut point added for address arithmetic (Section 4.3).
    """

    narrow16: bool
    narrow33: bool

    @property
    def gate_width(self) -> int:
        """The narrowest functional-unit slice this value permits
        (16, 33, or 64)."""
        if self.narrow16:
            return CUT_NARROW
        if self.narrow33:
            return CUT_ADDRESS
        return 64

    def combine(self, other: "WidthTag") -> "WidthTag":
        """Tag of an operand *pair*: narrow only if both values are."""
        return WidthTag(
            self.narrow16 and other.narrow16,
            self.narrow33 and other.narrow33,
        )


#: Tag for a value about which nothing is known (e.g. a load result when
#: the cache-side zero detect is omitted — Section 4.2 discusses this).
UNKNOWN_TAG = WidthTag(narrow16=False, narrow33=False)

#: Tag for a known-zero value (e.g. reads of R31).
ZERO_TAG = WidthTag(narrow16=True, narrow33=True)


def tag_value(value: int) -> WidthTag:
    """Create the width tag the zero/ones-detect hardware would attach
    to ``value`` when it is produced."""
    if value == 0:
        return ZERO_TAG
    narrow16 = is_narrow(value, CUT_NARROW)
    # narrow16 implies narrow33; skip the second detect when possible.
    narrow33 = narrow16 or is_narrow(value, CUT_ADDRESS)
    return WidthTag(narrow16, narrow33)
