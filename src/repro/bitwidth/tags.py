"""Width tags carried through the machine alongside operand values.

Section 4.2: "This signal, called zero48 ..., denotes that the upper
48-bits are all zeros and is created by zero detection logic when the
result was computed."  Section 5.2: "Each entry in the reservation
update unit (RUU) stores an extra bit for each operand indicating that
the size of the operand is 16-bits or less."

A :class:`WidthTag` bundles the two per-value signals the proposed
hardware maintains (narrow-at-16, narrow-at-33).  Tags are created by
:func:`tag_value` when a result is produced (writeback, or the
cache-side zero detect for loads) and stored in RUU entries for use at
issue time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW, is_narrow


@dataclass(frozen=True, slots=True)
class WidthTag:
    """The per-value narrow-width signals of the proposed hardware.

    ``narrow16`` corresponds to Figure 3's ``zero48`` (extended with the
    parallel ones-detect for negative values); ``narrow33`` is the
    second cut point added for address arithmetic (Section 4.3).
    """

    narrow16: bool
    narrow33: bool

    @property
    def gate_width(self) -> int:
        """The narrowest functional-unit slice this value permits
        (16, 33, or 64)."""
        if self.narrow16:
            return CUT_NARROW
        if self.narrow33:
            return CUT_ADDRESS
        return 64

    def combine(self, other: "WidthTag") -> "WidthTag":
        """Tag of an operand *pair*: narrow only if both values are."""
        return WidthTag(
            self.narrow16 and other.narrow16,
            self.narrow33 and other.narrow33,
        )


#: Tag for a value about which nothing is known (e.g. a load result when
#: the cache-side zero detect is omitted — Section 4.2 discusses this).
UNKNOWN_TAG = WidthTag(narrow16=False, narrow33=False)

#: Tag for a known-zero value (e.g. reads of R31).
ZERO_TAG = WidthTag(narrow16=True, narrow33=True)


def tag_value(value: int) -> WidthTag:
    """Create the width tag the zero/ones-detect hardware would attach
    to ``value`` when it is produced."""
    if value == 0:
        return ZERO_TAG
    narrow16 = is_narrow(value, CUT_NARROW)
    # narrow16 implies narrow33; skip the second detect when possible.
    narrow33 = narrow16 or is_narrow(value, CUT_ADDRESS)
    return WidthTag(narrow16, narrow33)


# --------------------------------------------------------------- tag codes
#
# The fast backend carries tags as small integers instead of WidthTag
# objects.  Only three tag states are reachable from tag_value (narrow16
# implies narrow33), so a single code in {0, 1, 2} is lossless:

#: nothing known about the value — WidthTag(False, False).
TAG_WIDE = 0
#: narrow at the 33-bit cut only — WidthTag(False, True).
TAG_NARROW33 = 1
#: narrow at the 16-bit cut (implies 33) — WidthTag(True, True).
TAG_NARROW16 = 2

#: code -> WidthTag, indexable by the codes above.
TAG_OF_CODE = (
    UNKNOWN_TAG,
    WidthTag(narrow16=False, narrow33=True),
    ZERO_TAG,
)


def tag_code(tag: WidthTag) -> int:
    """Encode a (reachable) :class:`WidthTag` as its integer code."""
    if tag.narrow16:
        return TAG_NARROW16
    if tag.narrow33:
        return TAG_NARROW33
    return TAG_WIDE


def tag_code_of_value(value: int) -> int:
    """Integer-only twin of :func:`tag_value` (fast-backend hot path)."""
    high = value >> CUT_NARROW
    if high == 0 or high == 0xFFFFFFFFFFFF:
        return TAG_NARROW16
    high = value >> CUT_ADDRESS
    if high == 0 or high == 0x7FFFFFFF:
        return TAG_NARROW33
    return TAG_WIDE
