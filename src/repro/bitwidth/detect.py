"""Narrow-width operand detection (the paper's core mechanism).

Section 4.2/4.3: a value is *narrow at width w* when its upper
``64 - w`` bits carry no information.  For non-negative two's-complement
values this is a **zero detect** on the high bits; for negative values
leading **ones** are equally redundant, so a ones detect runs in
parallel.  The hardware exposes two cut points:

* ``w = 16`` — the ``zero48`` signal of Figure 3 (upper 48 bits gated);
* ``w = 33`` — added after Figure 5 showed the address-calculation peak
  at 33 bits (upper 31 bits gated).

This module implements the detection as pure functions on 64-bit
unsigned values.
"""

from __future__ import annotations

from repro.isa.semantics import MASK64, SIGN_BIT

#: The two hardware cut points of the paper's gating architecture.
CUT_NARROW = 16
CUT_ADDRESS = 33
WORD_WIDTH = 64

_HIGH48 = MASK64 ^ 0xFFFF               # bits [63:16]
_HIGH31 = MASK64 ^ 0x1_FFFF_FFFF        # bits [63:33]


def zero_detect(value: int, width: int) -> bool:
    """True if bits ``[63:width]`` of ``value`` are all zero.

    This is the literal zero-detect circuit of Figure 3 (for
    ``width == 16`` it computes the ``zero48`` signal for non-negative
    operands).
    """
    if width >= WORD_WIDTH:
        return True
    return (value >> width) == 0


def ones_detect(value: int, width: int) -> bool:
    """True if bits ``[63:width]`` of ``value`` are all one.

    Run in parallel with :func:`zero_detect` to recognize narrow
    *negative* two's-complement values (Section 4.3: "a ones detect must
    be performed in parallel with the zero detect").
    """
    if width >= WORD_WIDTH:
        return True
    high = value >> width
    return high == (MASK64 >> width)


def is_narrow(value: int, width: int) -> bool:
    """True if ``value`` carries no information above bit ``width - 1``.

    Equivalent to "upper bits all zero OR all one" — i.e. the value
    sign-extends from ``width`` bits.  Matches the paper's usage where a
    positive ``w``-bit pattern (like 17 = ``10001``, "a 5-bit number")
    counts as ``w`` bits even though a signed representation would need
    ``w + 1``.
    """
    return zero_detect(value, width) or ones_detect(value, width)


def effective_width(value: int) -> int:
    """Minimum ``w`` (1..64) such that ``value`` is narrow at ``w``.

    * ``effective_width(0) == 1`` and ``effective_width(2**64 - 1) == 1``
      (zero and minus one need a single bit's worth of information);
    * ``effective_width(17) == 5`` (the paper's "17, a 5-bit number");
    * addresses just above 4 GB report 33, producing Figure 1's jump.
    """
    if value & SIGN_BIT:
        # Negative: leading ones are redundant; count significant bits of
        # the complement.
        return max(1, (value ^ MASK64).bit_length())
    return max(1, value.bit_length())


def narrow_range(width: int) -> tuple[int, int]:
    """Signed bounds ``(lo, hi)`` of the values that are narrow at
    ``width``.

    :func:`is_narrow` accepts exactly the two's-complement values whose
    upper bits are all zero or all one — as *signed* quadwords those are
    ``[-2**width, 2**width - 1]``.  The static width analyzer
    (:mod:`repro.analysis`) uses these bounds as the concretization of
    its "provably narrow at ``width``" facts, so the static and dynamic
    detectors agree by construction.
    """
    if width >= WORD_WIDTH:
        return -(1 << 63), (1 << 63) - 1
    return -(1 << width), (1 << width) - 1


def operand_pair_width(a: int, b: int) -> int:
    """Effective width of an operand *pair* — the larger of the two.

    The paper's "narrow-width operation" requires **both** operands to be
    narrow ("Both operands must be small in order for the clock gating
    to be allowed", Figure 4 caption), so the pair is characterized by
    its maximum.
    """
    return max(effective_width(a), effective_width(b))
