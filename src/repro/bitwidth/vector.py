"""Vectorized twins of the width-detection primitives.

The trace-replay backend (:mod:`repro.fastsim`) measures widths over
whole numpy columns at once instead of per instruction.  Every function
here is an element-wise twin of a scalar path in
:mod:`repro.bitwidth.detect` / :mod:`repro.bitwidth.tags` /
:mod:`repro.power.gating`, and the round-trip property tests assert
equality against the scalar versions value-for-value.
"""

from __future__ import annotations

import numpy as np

from repro.bitwidth.detect import CUT_ADDRESS, CUT_NARROW
from repro.bitwidth.tags import TAG_NARROW16, TAG_NARROW33, TAG_WIDE
from repro.power.gating import GatingPolicy

_U64 = np.uint64
_ONES16 = _U64(0xFFFFFFFFFFFF)   # MASK64 >> 16
_ONES33 = _U64(0x7FFFFFFF)       # MASK64 >> 33


def effective_widths(values: np.ndarray) -> np.ndarray:
    """Element-wise :func:`repro.bitwidth.detect.effective_width`.

    ``values`` must be uint64.  Returns int64 widths in [1, 64]:
    negative values (sign bit set) measure the bit length of their
    complement, exactly like the scalar path.
    """
    v = np.asarray(values, dtype=_U64)
    negative = (v >> _U64(63)) != 0
    v = np.where(negative, ~v, v)
    # Branchless bit_length via conditional shifts (binary search).
    widths = np.zeros(v.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        high = (v >> _U64(shift)) != 0
        widths += np.where(high, shift, 0)
        v = np.where(high, v >> _U64(shift), v)
    widths += (v != 0).astype(np.int64)
    return np.maximum(widths, 1)


def pair_widths(a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
    """Element-wise :func:`repro.bitwidth.detect.operand_pair_width`."""
    return np.maximum(effective_widths(a_values), effective_widths(b_values))


def tag_codes_of_values(values: np.ndarray) -> np.ndarray:
    """Element-wise :func:`repro.bitwidth.tags.tag_code_of_value`."""
    v = np.asarray(values, dtype=_U64)
    high16 = v >> _U64(CUT_NARROW)
    high33 = v >> _U64(CUT_ADDRESS)
    narrow16 = (high16 == 0) | (high16 == _ONES16)
    narrow33 = (high33 == 0) | (high33 == _ONES33)
    codes = np.full(v.shape, TAG_WIDE, dtype=np.int8)
    codes[narrow33] = TAG_NARROW33
    codes[narrow16] = TAG_NARROW16
    return codes


def gate_widths(policy: GatingPolicy, tag_a_codes: np.ndarray,
                tag_b_codes: np.ndarray) -> np.ndarray:
    """Element-wise :func:`repro.power.gating.gate_width` over tag-code
    columns.  Returns int64 widths drawn from {16, 33, 64}."""
    ta = np.asarray(tag_a_codes)
    tb = np.asarray(tag_b_codes)
    widths = np.full(ta.shape, 64, dtype=np.int64)
    if not policy.enabled:
        return widths
    pair = np.minimum(ta, tb)   # combine(): both signals AND together
    if policy.gate33:
        widths[pair >= TAG_NARROW33] = CUT_ADDRESS
    if policy.gate16:
        widths[pair == TAG_NARROW16] = CUT_NARROW
    return widths
