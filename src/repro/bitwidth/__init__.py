"""Narrow-width operand detection and tagging (paper Sections 4.2-4.3)."""

from repro.bitwidth.detect import (
    CUT_ADDRESS,
    CUT_NARROW,
    WORD_WIDTH,
    effective_width,
    is_narrow,
    ones_detect,
    operand_pair_width,
    zero_detect,
)
from repro.bitwidth.tags import UNKNOWN_TAG, ZERO_TAG, WidthTag, tag_value

__all__ = [
    "CUT_ADDRESS",
    "CUT_NARROW",
    "UNKNOWN_TAG",
    "WORD_WIDTH",
    "WidthTag",
    "ZERO_TAG",
    "effective_width",
    "is_narrow",
    "ones_detect",
    "operand_pair_width",
    "tag_value",
    "zero_detect",
]
