"""Table 4 — estimated power consumption of functional units.

Renders the device power model at the paper's three column widths,
verifying that the linear width scaling reproduces the published
values (mW at 3.3 V and 500 MHz).
"""

from __future__ import annotations

from repro.exec.jobs import Job
from repro.experiments.base import format_table
from repro.experiments.registry import Experiment, register
from repro.power.devices import (
    MUX_OVERHEAD_MW,
    ZERO_DETECT_MW,
    Device,
    device_power,
)

#: (device, paper row name) in Table 4's order.
DEVICE_ROWS = (
    (Device.ADDER, "Adder (CLA)"),
    (Device.MULTIPLIER, "Booth Multiplier"),
    (Device.LOGIC, "Bit-Wise Logic"),
    (Device.SHIFTER, "Shifter"),
)

#: The paper's published values for cross-checking.
PAPER_VALUES = {
    Device.ADDER: (105.0, 158.0, 210.0),
    Device.MULTIPLIER: (1050.0, 1580.0, 2100.0),
    Device.LOGIC: (5.8, 8.7, 11.7),
    Device.SHIFTER: (4.4, 6.6, 8.8),
}


def rows() -> list[list[object]]:
    out: list[list[object]] = []
    for device, label in DEVICE_ROWS:
        out.append([label] + [device_power(device, w) for w in (32, 48, 64)])
    out.append(["Zero-Detect", "", ZERO_DETECT_MW, ""])
    out.append(["Additional Muxes", "", MUX_OVERHEAD_MW, ""])
    return out


def report() -> str:
    headers = ["Device", "32-bit", "48-bit", "64-bit"]
    return ("Table 4 — estimated power of functional units at 3.3V / "
            "500MHz (mW)\n" + format_table(headers, rows(), precision=1))


def jobs(scale: int = 1) -> list[Job]:
    """Pure device-model rendering: no simulations needed."""
    return []


register(Experiment(
    name="table4",
    description="Table 4 — estimated power of the functional units",
    jobs=jobs,
    render=lambda scale: report(),
))


if __name__ == "__main__":
    print(report())
