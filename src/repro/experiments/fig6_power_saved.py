"""Figure 6 — net power saved by clock gating at 16 and 33 bits.

"Total extra used is the amount used by zero detection and muxing.
Net savings denotes the amount saved at 16 bits plus the amount saved
at 33 bits minus the amount used.  Numbers are per cycle."

The paper's headline observations, all checked by the benchmark suite:
the media benchmarks save more than SPECint95; ijpeg and go save the
most among SPEC (go thanks to the 33-bit signal); the zero-detect
overhead is small, nearly constant, and never exceeds the savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.base import all_names, format_table, run_workload
from repro.experiments.registry import Experiment, register


@dataclass
class Fig6Row:
    benchmark: str
    saved16: float      # mW/cycle saved by the 16-bit cut
    saved33: float      # mW/cycle saved by the 33-bit cut
    overhead: float     # mW/cycle spent on zero-detect + muxes
    net: float          # saved16 + saved33 - overhead


@dataclass
class Fig6Result:
    rows: list[Fig6Row]


def run(config: MachineConfig = BASELINE, scale: int = 1) -> Fig6Result:
    rows = []
    for name in all_names():
        result = run_workload(name, config, scale)
        power = result.power
        rows.append(Fig6Row(
            benchmark=name,
            saved16=power.saved16,
            saved33=power.saved33,
            overhead=power.overhead,
            net=power.net_saved,
        ))
    return Fig6Result(rows=rows)


def report(result: Fig6Result) -> str:
    headers = ["benchmark", "saved@16 mW", "saved@33 mW", "extra used mW",
               "net mW"]
    rows = [[r.benchmark, r.saved16, r.saved33, r.overhead, r.net]
            for r in result.rows]
    return ("Figure 6 — per-cycle power saved by operand gating "
            "(Table 4 device model)\n"
            + format_table(headers, rows, precision=1))


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """The baseline suite (shared verbatim with Figure 7)."""
    return [Job(name, config, scale) for name in all_names()]


register(Experiment(
    name="fig6",
    description="Figure 6 — net per-cycle power saved by clock gating",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
