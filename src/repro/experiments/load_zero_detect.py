"""Section 4.2's load-operand statistic.

"For the SPECint95 suite, 13.1% of power saving instructions have one
or more operands that come directly from a load instruction; these are
the instructions that would be missed if zero-detect were omitted on
loads.  The percentages for the media benchmarks are much lower at
1.5%."

We report the per-benchmark and per-suite percentage of *gated* (power
saving) operations whose source operand was produced directly by a
load, and — as the ablation — the power reduction lost when the
cache-side zero detect is omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.registry import Experiment, register
from repro.experiments.base import (
    all_names,
    format_table,
    mean,
    media_names,
    run_workload,
    spec_names,
)


@dataclass
class LoadDetectRow:
    benchmark: str
    load_dependent_pct: float      # % of gated ops with a load operand
    reduction_with_pct: float      # power reduction, loads detected
    reduction_without_pct: float   # power reduction, loads undetected


@dataclass
class LoadDetectResult:
    rows: list[LoadDetectRow]

    def _suite_mean(self, names: tuple[str, ...]) -> float:
        return mean([r.load_dependent_pct for r in self.rows
                     if r.benchmark in names])

    @property
    def spec_pct(self) -> float:
        """The paper's 13.1% statistic."""
        return self._suite_mean(spec_names())

    @property
    def media_pct(self) -> float:
        """The paper's 1.5% statistic."""
        return self._suite_mean(media_names())


def run(config: MachineConfig = BASELINE,
        scale: int = 1) -> LoadDetectResult:
    no_loads = config.with_gating(
        replace(config.gating, detect_loads=False))
    rows = []
    for name in all_names():
        with_detect = run_workload(name, config, scale)
        without = run_workload(name, no_loads, scale)
        rows.append(LoadDetectRow(
            benchmark=name,
            load_dependent_pct=with_detect.power.load_dependent_pct,
            reduction_with_pct=with_detect.power.reduction_pct,
            reduction_without_pct=without.power.reduction_pct,
        ))
    return LoadDetectResult(rows=rows)


def report(result: LoadDetectResult) -> str:
    headers = ["benchmark", "load-fed gated %", "red. w/ detect %",
               "red. w/o detect %"]
    rows = [[r.benchmark, r.load_dependent_pct, r.reduction_with_pct,
             r.reduction_without_pct] for r in result.rows]
    rows.append(["SPECint95 avg", result.spec_pct, "", ""])
    rows.append(["MediaBench avg", result.media_pct, "", ""])
    return ("Section 4.2 — gated operations fed directly by loads "
            "(paper: 13.1% SPEC / 1.5% media)\n"
            + format_table(headers, rows, precision=1))


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """The full suite with and without the cache-side zero detect (the
    detect-on runs are the shared baseline suite)."""
    no_loads = config.with_gating(
        replace(config.gating, detect_loads=False))
    out = []
    for name in all_names():
        out.append(Job(name, config, scale))
        out.append(Job(name, no_loads, scale))
    return out


register(Experiment(
    name="loaddetect",
    description="Section 4.2 — gated operations fed directly by loads, "
                "and the cost of omitting load zero-detect",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
