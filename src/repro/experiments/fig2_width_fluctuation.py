"""Figure 2 — operand-width fluctuation per PC, perfect vs realistic
branch prediction.

"Figure 2 shows the percentage of PC values where operand width changes
as the instruction is executed repeatedly within a single run ... With
perfect branch prediction, the instruction operand sizes are far more
predictable than with realistic branch prediction ... With imperfect
branch prediction, uncommon paths, like error conditions, may be
executed (but not committed) if the branch predictor points that way."

The tracker samples *executed* operations (wrong path included), so the
combining-predictor series picks up exactly the wrong-path width noise
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.base import format_table, mean, run_workload, spec_names
from repro.experiments.registry import Experiment, register


@dataclass
class Fig2Row:
    benchmark: str
    perfect_pct: float       # % of PCs crossing the 16-bit line, oracle BP
    realistic_pct: float     # same with the Table 1 combining predictor


@dataclass
class Fig2Result:
    rows: list[Fig2Row]

    @property
    def mean_perfect(self) -> float:
        return mean([r.perfect_pct for r in self.rows])

    @property
    def mean_realistic(self) -> float:
        return mean([r.realistic_pct for r in self.rows])


def run(config: MachineConfig = BASELINE, scale: int = 1) -> Fig2Result:
    rows = []
    perfect_cfg = config.with_predictor("perfect")
    realistic_cfg = config.with_predictor("combining")
    for name in spec_names():
        perfect = run_workload(name, perfect_cfg, scale)
        realistic = run_workload(name, realistic_cfg, scale)
        rows.append(Fig2Row(
            benchmark=name,
            perfect_pct=perfect.fluctuation.fluctuation_pct,
            realistic_pct=realistic.fluctuation.fluctuation_pct,
        ))
    return Fig2Result(rows=rows)


def report(result: Fig2Result) -> str:
    headers = ["benchmark", "perfect BP %", "combining BP %"]
    rows = [[r.benchmark, r.perfect_pct, r.realistic_pct]
            for r in result.rows]
    rows.append(["mean", result.mean_perfect, result.mean_realistic])
    return ("Figure 2 — % of PCs whose operand precision crosses the "
            "16-bit line during a run\n"
            + format_table(headers, rows, precision=1))


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """SPECint95 under oracle and combining branch prediction."""
    out = []
    for name in spec_names():
        out.append(Job(name, config.with_predictor("perfect"), scale))
        out.append(Job(name, config.with_predictor("combining"), scale))
    return out


register(Experiment(
    name="fig2",
    description="Figure 2 — per-PC operand-width fluctuation, perfect "
                "vs combining branch prediction",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
