"""Figure 7 — integer-unit power per cycle, baseline vs gated.

"For the baseline system, we assume that all operations use the amount
of power that a 64-bit device would use.  (We assume basic clock gating
in which, for example, multipliers are turned off for add instructions
and vice versa.)  For the SPECint95 benchmark suite, the average power
consumption of the integer unit was reduced by 54.1%.  For the media
benchmarks, the reduction was 57.9%."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.registry import Experiment, register
from repro.experiments.base import (
    all_names,
    format_table,
    mean,
    media_names,
    run_workload,
    spec_names,
)


@dataclass
class Fig7Row:
    benchmark: str
    baseline_mw: float
    gated_mw: float

    @property
    def reduction_pct(self) -> float:
        if self.baseline_mw == 0:
            return 0.0
        return 100.0 * (self.baseline_mw - self.gated_mw) / self.baseline_mw


@dataclass
class Fig7Result:
    rows: list[Fig7Row]

    def _suite_mean(self, names: tuple[str, ...]) -> float:
        return mean([r.reduction_pct for r in self.rows
                     if r.benchmark in names])

    @property
    def spec_reduction_pct(self) -> float:
        """The paper's 54.1% headline number."""
        return self._suite_mean(spec_names())

    @property
    def media_reduction_pct(self) -> float:
        """The paper's 57.9% headline number."""
        return self._suite_mean(media_names())


def run(config: MachineConfig = BASELINE, scale: int = 1) -> Fig7Result:
    rows = []
    for name in all_names():
        result = run_workload(name, config, scale)
        rows.append(Fig7Row(
            benchmark=name,
            baseline_mw=result.power.baseline,
            gated_mw=result.power.gated,
        ))
    return Fig7Result(rows=rows)


def report(result: Fig7Result) -> str:
    headers = ["benchmark", "baseline mW/cyc", "gated mW/cyc",
               "reduction %"]
    rows = [[r.benchmark, r.baseline_mw, r.gated_mw, r.reduction_pct]
            for r in result.rows]
    rows.append(["SPECint95 avg", "", "", result.spec_reduction_pct])
    rows.append(["MediaBench avg", "", "", result.media_reduction_pct])
    return ("Figure 7 — integer-unit power per cycle (paper: 54.1% SPEC "
            "/ 57.9% media reduction)\n"
            + format_table(headers, rows, precision=1))


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """The baseline suite (shared verbatim with Figure 6)."""
    return [Job(name, config, scale) for name in all_names()]


register(Experiment(
    name="fig7",
    description="Figure 7 — integer-unit power, baseline vs gated",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
