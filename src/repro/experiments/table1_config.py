"""Table 1 — baseline configuration of the simulated processor.

This module renders the live :data:`~repro.core.config.BASELINE`
configuration in the paper's Table 1 layout, so the benchmark harness
can assert that the machine under test is the machine the paper
describes.
"""

from __future__ import annotations

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.registry import Experiment, register


def rows(config: MachineConfig = BASELINE) -> list[tuple[str, str]]:
    """(parameter, value) pairs in Table 1's order."""
    h = config.hierarchy
    return [
        ("RUU size", f"{config.ruu_size} instructions"),
        ("LSQ (ld/store queue) size", str(config.lsq_size)),
        ("Fetch queue size", f"{config.fetch_queue_size} instructions"),
        ("Fetch width", f"{config.fetch_width} instructions/cycle"),
        ("Decode width", f"{config.decode_width} instructions/cycle"),
        ("Issue width",
         f"{config.issue_width} instructions/cycle (out-of-order)"),
        ("Commit width",
         f"{config.commit_width} instructions/cycle (in-order)"),
        ("Functional units",
         f"{config.int_alus} integer ALUs, "
         f"{config.int_mult_div} integer multiply/divide"),
        ("Branch predictor", config.predictor),
        ("BTB", f"{config.btb_entries}-entry, {config.btb_assoc}-way"),
        ("Return-address stack", f"{config.ras_entries}-entry"),
        ("Mispredict penalty", f"{config.mispredict_penalty} cycles"),
        ("L1 data-cache",
         f"{h.l1d_size // 1024}K, {h.l1d_assoc}-way (LRU), "
         f"{h.block_bytes}B blocks, {h.l1_latency} cycle latency"),
        ("L1 instruction-cache",
         f"{h.l1i_size // 1024}K, {h.l1i_assoc}-way (LRU), "
         f"{h.block_bytes}B blocks, {h.l1_latency} cycle latency"),
        ("L2",
         f"Unified, {h.l2_size // (1024 * 1024)}M, {h.l2_assoc}-way (LRU), "
         f"{h.block_bytes}B blocks, {h.l2_latency}-cycle latency"),
        ("Memory", f"{h.memory_latency} cycles"),
        ("TLBs",
         f"{h.tlb_entries} entry, fully associative, "
         f"{h.tlb_miss_latency}-cycle miss latency"),
    ]


def report(config: MachineConfig = BASELINE) -> str:
    lines = ["Table 1 — baseline configuration of simulated processor"]
    for parameter, value in rows(config):
        lines.append(f"  {parameter:28s} {value}")
    return "\n".join(lines)


def jobs(scale: int = 1) -> list[Job]:
    """Pure configuration rendering: no simulations needed."""
    return []


register(Experiment(
    name="table1",
    description="Table 1 — baseline configuration of the simulated "
                "processor",
    jobs=jobs,
    render=lambda scale: report(),
))


if __name__ == "__main__":
    print(report())
