"""Figure 4 — operations with both operands <= 16 bits, by class.

"Figure 4 shows, for each benchmark, the percentage and type of
operations whose input operands are both less than or equal to 16-bits.
(Both operands must be small in order for the clock gating to be
allowed.)  ... for most benchmarks arithmetic and logical operations
dominate the number of narrow-width operations.  In most of the
benchmarks multiplies are rather infrequent although they do account
for 6% of the narrow-width operations in gsm."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.base import all_names, format_table, run_workload
from repro.experiments.registry import Experiment, register
from repro.isa.opcodes import OpClass

#: The classes Figure 4 breaks bars into.
BAR_CLASSES = (OpClass.INT_ARITH, OpClass.INT_LOGIC, OpClass.INT_SHIFT,
               OpClass.INT_MULT)

CUT = 16


@dataclass
class NarrowByClassRow:
    benchmark: str
    by_class: dict[OpClass, float]   # % of all tracked ops, per class

    @property
    def total(self) -> float:
        return sum(self.by_class.get(c, 0.0) for c in BAR_CLASSES)


@dataclass
class NarrowByClassResult:
    cut: int
    rows: list[NarrowByClassRow]


def run(config: MachineConfig = BASELINE, scale: int = 1,
        cut: int = CUT) -> NarrowByClassResult:
    rows = []
    for name in all_names():
        result = run_workload(name, config, scale)
        by_class = result.widths.narrow_pct_by_class(cut)
        rows.append(NarrowByClassRow(benchmark=name, by_class=by_class))
    return NarrowByClassResult(cut=cut, rows=rows)


def report(result: NarrowByClassResult, figure: str = "Figure 4") -> str:
    headers = ["benchmark", "arith%", "logic%", "shift%", "mult%",
               "total%"]
    rows = []
    for row in result.rows:
        rows.append([row.benchmark]
                    + [row.by_class.get(c, 0.0) for c in BAR_CLASSES]
                    + [row.total])
    return (f"{figure} — % of integer operations with both operands "
            f"<= {result.cut} bits, by class\n"
            + format_table(headers, rows, precision=1))


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """The full 14-benchmark suite on the Table 1 baseline (the same
    runs serve Figures 5, 6, 7, and 11's baseline column)."""
    return [Job(name, config, scale) for name in all_names()]


register(Experiment(
    name="fig4",
    description="Figure 4 — operations with both operands <= 16 bits, "
                "by class",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
