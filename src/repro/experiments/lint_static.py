"""``lint`` experiment — static width analysis vs dynamic measurement.

Not a paper figure: a repro-quality report.  For every benchmark the
static analyzer (:mod:`repro.analysis`) computes which results are
*provably* narrow and which operations could *ever* pack; the dynamic
side of each column comes from the same packed simulations Figure 10
renders, through the run engine's memo/disk cache — so after a
``repro-experiments fig10`` pass this report performs no fresh
simulation at all.

The static and dynamic columns weight differently — static counts each
instruction once, dynamic weights by execution frequency (and measures
operand *pairs*, Figure 1's metric) — so they compare qualitatively,
not as a per-column inequality.  The actual soundness relation (every
statically-proven-narrow result is dynamically tagged narrow; every
good-path packed issue is statically pack-eligible) is per-instance
and is enforced by the differential oracle in the test suite and in
``repro-lint --packing-report``.
"""

from __future__ import annotations

from repro.analysis.dataflow import analyze
from repro.analysis.linter import lint_program
from repro.core.config import BASELINE
from repro.exec.jobs import Job
from repro.experiments.base import all_names, format_table, run_workload
from repro.experiments.registry import Experiment, register
from repro.workloads.registry import get_workload

#: The packed, realistic-predictor configuration — byte-identical to
#: the Figure 10 combining-predictor packed job, so both experiments
#: resolve to one cached simulation per benchmark.
_PACKED = BASELINE.with_predictor("combining").with_packing(replay=False)


def jobs(scale: int = 1) -> list[Job]:
    return [Job(name, _PACKED, scale) for name in all_names()]


def report(scale: int = 1) -> str:
    headers = ["benchmark", "insts", "stat n16%", "dyn n16%",
               "stat n33%", "dyn n33%", "stat pack%", "dyn pack%",
               "lint"]
    rows: list[list[object]] = []
    for name in all_names():
        program = get_workload(name).build(scale)
        analysis = analyze(program)
        diags = lint_program(program, analysis)
        summary = analysis.summary()
        results = summary["results"] or 1
        reachable = summary["reachable"] or 1

        result = run_workload(name, _PACKED, scale)
        issued = result.stats.issued or 1
        rows.append([
            name,
            summary["instructions"],
            100.0 * summary["narrow16_results"] / results,
            result.widths.cumulative_pct(16),
            100.0 * summary["narrow33_results"] / results,
            result.widths.cumulative_pct(33),
            100.0 * (summary["full_pack_candidates"]
                     + summary["replay_pack_candidates"]) / reachable,
            100.0 * result.stats.packed_ops / issued,
            len(diags),
        ])
    title = ("Static width analysis vs dynamic measurement "
             "(packed, combining predictor)")
    note = ("static%: unweighted share of static results proven narrow / "
            "static instructions that may pack;\n"
            "dyn%: execution-weighted share of dynamic operand pairs "
            "measured narrow (Figure 1) / issues packed.\n"
            "The per-instance soundness bound (static ⊆ dynamic) is "
            "checked by `repro-lint --packing-report`.")
    return title + "\n" + format_table(headers, rows, precision=1) \
        + "\n" + note


register(Experiment(
    name="lint",
    description="Static width-dataflow analysis vs dynamic widths "
                "and packing",
    jobs=jobs,
    render=report,
))


if __name__ == "__main__":
    print(report())
