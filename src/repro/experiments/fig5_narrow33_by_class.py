"""Figure 5 — operations with both operands <= 33 bits, by class.

"Figure 5 emphasizes this point [that] address calculations result in
many operations with bitwidths of 33.  From this data it makes sense to
include a second control signal for clock gating of operands that are
33-bits or less."

This is the same measurement as Figure 4 at the second hardware cut
point; load/store address arithmetic joins the eligible set here.
"""

from __future__ import annotations

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.fig4_narrow16_by_class import (
    NarrowByClassResult,
    jobs as _jobs,
    report as _report,
    run as _run,
)
from repro.experiments.registry import Experiment, register

CUT = 33


def run(config: MachineConfig = BASELINE,
        scale: int = 1) -> NarrowByClassResult:
    return _run(config, scale, cut=CUT)


def report(result: NarrowByClassResult) -> str:
    return _report(result, figure="Figure 5")


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """Identical runs to Figure 4 — only the cut point differs, so the
    engine deduplicates the whole job set."""
    return _jobs(scale, config)


register(Experiment(
    name="fig5",
    description="Figure 5 — operations with both operands <= 33 bits, "
                "by class",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
