"""Figure 5 — operations with both operands <= 33 bits, by class.

"Figure 5 emphasizes this point [that] address calculations result in
many operations with bitwidths of 33.  From this data it makes sense to
include a second control signal for clock gating of operands that are
33-bits or less."

This is the same measurement as Figure 4 at the second hardware cut
point; load/store address arithmetic joins the eligible set here.
"""

from __future__ import annotations

from repro.core.config import BASELINE, MachineConfig
from repro.experiments.fig4_narrow16_by_class import (
    NarrowByClassResult,
    report as _report,
    run as _run,
)

CUT = 33


def run(config: MachineConfig = BASELINE,
        scale: int = 1) -> NarrowByClassResult:
    return _run(config, scale, cut=CUT)


def report(result: NarrowByClassResult) -> str:
    return _report(result, figure="Figure 5")


if __name__ == "__main__":
    print(report(run()))
