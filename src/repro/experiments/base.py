"""Shared experiment infrastructure.

Every figure/table module builds on :func:`run_workload`, which applies
the paper's methodology: assemble the benchmark, fast-forward through
its initialization (Section 3.2's warmup), then run the detailed
simulator to completion.  Results are memoized per (workload, config,
scale) within the process so that e.g. Figure 6 and Figure 7 — which
share the same baseline runs — do not pay for simulation twice.

When an observability directory is set (:func:`set_obs_dir`, surfaced
as ``repro-experiments --obs-out DIR``), every *fresh* simulation also
runs with the interval sampler and stall attribution attached and
leaves a JSON run manifest in that directory — so regenerating a figure
doubles as producing a machine-readable regression artifact.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import Machine, RunResult
from repro.obs.export import build_manifest, write_manifest
from repro.obs.sampler import IntervalSampler
from repro.workloads.registry import (
    MEDIABENCH,
    SPECINT95,
    get_workload,
    resolve_warmup,
    suite_workloads,
)

#: Benchmark display order, following the paper's figures.
SPEC_ORDER = ("ijpeg", "m88ksim", "go", "xlisp", "compress", "gcc",
              "vortex", "perl")
MEDIA_ORDER = ("gsm-encode", "gsm-decode", "mpeg2-encode", "mpeg2-decode",
               "g721-encode", "g721-decode")
ALL_ORDER = SPEC_ORDER + MEDIA_ORDER

_CACHE: dict[tuple, RunResult] = {}

_OBS_DIR: Path | None = None


def set_obs_dir(path: str | Path | None) -> None:
    """Direct every fresh :func:`run_workload` simulation to leave an
    obs run manifest under ``path`` (None disables)."""
    global _OBS_DIR
    _OBS_DIR = Path(path) if path is not None else None


def _config_tag(config: MachineConfig) -> str:
    """Short stable tag distinguishing configurations in filenames."""
    return hashlib.sha1(repr(config).encode()).hexdigest()[:10]


def run_workload(name: str, config: MachineConfig = BASELINE,
                 scale: int = 1, use_cache: bool = True) -> RunResult:
    """Run one benchmark under ``config`` with the paper's warmup
    methodology; memoized within the process."""
    key = (name, config, scale)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    workload = get_workload(name)
    machine = Machine(workload.build(scale), config)
    sampler = None
    if _OBS_DIR is not None:
        sampler = IntervalSampler(window=config.obs.sampler_window)
        machine.add_probe(sampler)
        machine.enable_stall_attribution()
    machine.fast_forward(resolve_warmup(workload, scale))
    result = machine.run(max_insts=workload.window)
    if sampler is not None:
        sampler.finish(machine)
        manifest = build_manifest(
            result, attribution=machine.attribution, sampler=sampler,
            workload=name, scale=scale)
        write_manifest(_OBS_DIR, manifest,
                       stem=f"{name}-{_config_tag(config)}-x{scale}")
    if use_cache:
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()


def spec_names() -> tuple[str, ...]:
    registered = {w.name for w in suite_workloads(SPECINT95)}
    return tuple(n for n in SPEC_ORDER if n in registered)


def media_names() -> tuple[str, ...]:
    registered = {w.name for w in suite_workloads(MEDIABENCH)}
    return tuple(n for n in MEDIA_ORDER if n in registered)


def all_names() -> tuple[str, ...]:
    return spec_names() + media_names()


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def format_table(headers: list[str], rows: list[list[object]],
                 precision: int = 2) -> str:
    """Render a simple aligned text table (the harness's output format)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    grid = [headers] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(grid):
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
