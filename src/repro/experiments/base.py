"""Shared experiment infrastructure.

Every figure/table module builds on :func:`run_workload`, which applies
the paper's methodology: assemble the benchmark, fast-forward through
its initialization (Section 3.2's warmup), then run the detailed
simulator to completion.  Execution is delegated to the run engine
(:mod:`repro.exec`): results are memoized process-wide — e.g. Figure 6
and Figure 7 share their baseline runs — and, when a
:class:`~repro.exec.context.RunContext` carries a cache directory,
persisted on disk so later sessions skip the simulation entirely.

Obs directory, cache policy, and parallelism travel explicitly on the
context — there is no module-global obs setter.  When the
context names an obs directory, every *fresh* simulation runs with the
interval sampler and stall attribution attached and leaves a JSON run
manifest there — so regenerating a figure doubles as producing a
machine-readable regression artifact.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import RunResult
from repro.exec import Job, RunContext, RunEngine, clear_memo
from repro.workloads.registry import (
    MEDIABENCH,
    SPECINT95,
    suite_workloads,
)

#: Benchmark display order, following the paper's figures.
SPEC_ORDER = ("ijpeg", "m88ksim", "go", "xlisp", "compress", "gcc",
              "vortex", "perl")
MEDIA_ORDER = ("gsm-encode", "gsm-decode", "mpeg2-encode", "mpeg2-decode",
               "g721-encode", "g721-decode")
ALL_ORDER = SPEC_ORDER + MEDIA_ORDER

#: Fallback context used when a caller passes no explicit one.
_DEFAULT_CONTEXT = RunContext()


def run_workload(name: str, config: MachineConfig = BASELINE,
                 scale: int = 1, use_cache: bool = True,
                 ctx: RunContext | None = None) -> RunResult:
    """Run one benchmark under ``config`` with the paper's warmup
    methodology, through the run engine's result tiers (process-wide
    memo, optional disk cache, fresh simulation).

    ``ctx`` controls obs output, cache directories, and parallelism;
    ``use_cache=False`` bypasses every cache tier for this call.
    """
    if ctx is None:
        ctx = _DEFAULT_CONTEXT
    if not use_cache and ctx.use_cache:
        ctx = replace(ctx, use_cache=False)
    return RunEngine(ctx).run(Job(name, config, scale))


def clear_cache() -> None:
    """Drop the process-wide result memo (disk caches are untouched)."""
    clear_memo()


def spec_names() -> tuple[str, ...]:
    registered = {w.name for w in suite_workloads(SPECINT95)}
    return tuple(n for n in SPEC_ORDER if n in registered)


def media_names() -> tuple[str, ...]:
    registered = {w.name for w in suite_workloads(MEDIABENCH)}
    return tuple(n for n in MEDIA_ORDER if n in registered)


def all_names() -> tuple[str, ...]:
    return spec_names() + media_names()


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def format_table(headers: list[str], rows: list[list[object]],
                 precision: int = 2) -> str:
    """Render a simple aligned text table (the harness's output format)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    grid = [headers] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(grid):
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
