"""Figure 1 — cumulative operand bitwidths for SPECint95.

"Figure 1 illustrates ... the cumulative percentage of integer
instructions in SPECint95 in which both operands are less than or equal
to the specified bitwidth.  Roughly 50% of the instructions had both
operands less than or equal to 16-bits.  Since this chart includes
address calculations, there is a large jump at 33 bits."

The experiment reruns each SPEC stand-in on the Table 1 baseline and
reports the per-benchmark cumulative curves plus the suite aggregate at
the paper's landmark abscissas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.base import format_table, run_workload, spec_names
from repro.experiments.registry import Experiment, register

#: Bit positions highlighted when printing the curve.
LANDMARKS = (8, 16, 24, 32, 33, 48, 64)


@dataclass
class Fig1Result:
    """Per-benchmark cumulative width curves (index i = width i+1)."""

    curves: dict[str, list[float]]
    aggregate: list[float]

    def at(self, name: str, bits: int) -> float:
        return self.curves[name][bits - 1]

    def aggregate_at(self, bits: int) -> float:
        return self.aggregate[bits - 1]


def run(config: MachineConfig = BASELINE, scale: int = 1) -> Fig1Result:
    curves: dict[str, list[float]] = {}
    totals = [0.0] * 64
    weights = 0
    for name in spec_names():
        result = run_workload(name, config, scale)
        curve = result.widths.cumulative_curve()
        curves[name] = curve
        ops = result.widths.total
        for i, value in enumerate(curve):
            totals[i] += value * ops
        weights += ops
    aggregate = [t / weights for t in totals] if weights else totals
    return Fig1Result(curves=curves, aggregate=aggregate)


def report(result: Fig1Result) -> str:
    headers = ["benchmark"] + [f"<={b}b" for b in LANDMARKS]
    rows = []
    for name, curve in result.curves.items():
        rows.append([name] + [curve[b - 1] for b in LANDMARKS])
    rows.append(["SPECint95"] + [result.aggregate[b - 1] for b in LANDMARKS])
    table = format_table(headers, rows, precision=1)
    return ("Figure 1 — cumulative % of integer operations with both "
            "operands <= N bits\n" + table)


def jobs(scale: int = 1,
         config: MachineConfig = BASELINE) -> list[Job]:
    """The SPECint95 suite on the Table 1 baseline."""
    return [Job(name, config, scale) for name in spec_names()]


register(Experiment(
    name="fig1",
    description="Figure 1 — cumulative operand bitwidths (SPECint95)",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
