"""Command-line runner: regenerate every table and figure.

``repro-experiments`` (or ``python -m repro.experiments.runner``) prints
the paper's tables and figures one after another.  Individual
experiments can be selected by name::

    repro-experiments fig7 fig10
    repro-experiments --scale 2 all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import base
from repro.experiments import (
    fig1_cumulative_widths,
    fig2_width_fluctuation,
    fig4_narrow16_by_class,
    fig5_narrow33_by_class,
    fig6_power_saved,
    fig7_power_total,
    fig10_packing_speedup,
    fig11_ipc,
    load_zero_detect,
    table1_config,
    table4_devices,
)


def _fig10_wide(scale: int) -> str:
    result = fig10_packing_speedup.run(scale=scale, decode_width=8)
    return fig10_packing_speedup.report(result)


def _fig10_replay(scale: int) -> str:
    result = fig10_packing_speedup.run(scale=scale, replay=True)
    return fig10_packing_speedup.report(result)


EXPERIMENTS: dict[str, object] = {
    "table1": lambda scale: table1_config.report(),
    "table4": lambda scale: table4_devices.report(),
    "fig1": lambda scale: fig1_cumulative_widths.report(
        fig1_cumulative_widths.run(scale=scale)),
    "fig2": lambda scale: fig2_width_fluctuation.report(
        fig2_width_fluctuation.run(scale=scale)),
    "fig4": lambda scale: fig4_narrow16_by_class.report(
        fig4_narrow16_by_class.run(scale=scale)),
    "fig5": lambda scale: fig5_narrow33_by_class.report(
        fig5_narrow33_by_class.run(scale=scale)),
    "fig6": lambda scale: fig6_power_saved.report(
        fig6_power_saved.run(scale=scale)),
    "fig7": lambda scale: fig7_power_total.report(
        fig7_power_total.run(scale=scale)),
    "loaddetect": lambda scale: load_zero_detect.report(
        load_zero_detect.run(scale=scale)),
    "fig10": lambda scale: fig10_packing_speedup.report(
        fig10_packing_speedup.run(scale=scale)),
    "fig10-replay": _fig10_replay,
    "fig10-8wide": _fig10_wide,
    "fig11": lambda scale: fig11_ipc.report(fig11_ipc.run(scale=scale)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="experiment names (default: all); one of "
                             + ", ".join(EXPERIMENTS))
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--obs-out", default=None, metavar="DIR",
                        help="write an observability run manifest "
                             "(sampler windows + stall attribution) for "
                             "every fresh simulation into DIR")
    args = parser.parse_args(argv)
    base.set_obs_dir(args.obs_out)

    names = list(args.experiments) or ["all"]
    if names == ["all"] or names == []:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    suite_start = time.time()
    for name in names:
        start = time.time()
        print(EXPERIMENTS[name](args.scale))
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    print(f"[{len(names)} experiment(s) in "
          f"{time.time() - suite_start:.1f}s total]")
    if args.obs_out:
        print(f"[obs manifests in {args.obs_out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
