"""Command-line runner: regenerate every table and figure.

``repro-experiments`` (or ``python -m repro.experiments.runner``) prints
the paper's tables and figures one after another.  Individual
experiments can be selected by name::

    repro-experiments fig7 fig10
    repro-experiments --scale 2 all
    repro-experiments --jobs 4 --cache-dir ~/.cache/repro all

Execution goes through the run engine (:mod:`repro.exec`): the union of
every selected experiment's declared job set is deduplicated (figures
share runs — 6/7 the baseline suite, 10/11 the packed runs), fanned out
across ``--jobs`` worker processes, and backed by the persistent result
cache under ``--cache-dir``, after which each report renders from the
warm in-process memo.  A warm-cache rerun of the full suite performs
zero fresh simulations.

Stream contract: **stdout carries only the rendered tables and
figures** (machine-parseable, diffable against committed goldens);
every human-facing progress line — banners, per-experiment wall-clock,
the engine summary — goes to stderr.  ``--trace-out`` records the
engine span tree and writes it as Chrome trace JSON (open in
``chrome://tracing`` or Perfetto), then cross-checks the span counts
against the engine's own job/attempt accounting — a mismatch is a
tracer bug and fails the run.  ``--metrics-out`` writes the unified
process-wide metrics snapshot.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import GLOBAL_STATS, RunEngine
from repro.exec.cli import (
    add_engine_arguments,
    context_from_args,
    validate_engine_args,
)
from repro.perf.metrics import get_registry
from repro.robust.faults import parse_token
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    experiment_names,
)

#: Back-compat view of the registry (the old module-level lambda table;
#: :class:`Experiment` is callable with a scale, like the lambdas were).
EXPERIMENTS: dict[str, Experiment] = all_experiments()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="experiment names (default: all); any of: "
                             + ", ".join(experiment_names()))
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    add_engine_arguments(parser)
    parser.add_argument("--obs-out", default=None, metavar="DIR",
                        help="write an observability run manifest "
                             "(sampler windows + stall attribution) for "
                             "every simulation into DIR")
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="WORKLOAD=TOKEN",
                        help="chaos harness: make the worker simulating "
                             "WORKLOAD apply fault TOKEN (crash | hang "
                             "| die, optionally :sentinel_path for "
                             "fire-once); repeatable")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="record the engine span tree and write it "
                             "as Chrome trace JSON (chrome://tracing / "
                             "Perfetto); span counts are verified "
                             "against the engine's job accounting")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the unified metrics snapshot "
                             "(engine, simulation, guards) as JSON")
    return parser


def _check_trace_accounting(tracer, report) -> list[str]:
    """Spans versus the engine's own books; returns mismatch messages.

    Exactness is the contract: one ``execute`` span per charged
    attempt (plus one per success), one ``cache.hit`` span per
    cache-tier outcome.
    """
    acc = tracer.accounting()
    problems = []
    attempts = sum(o.attempts for o in report.outcomes)
    if acc.get("execute", 0) != attempts:
        problems.append(f"execute spans {acc.get('execute', 0)} != "
                        f"total attempts {attempts}")
    served = sum(1 for o in report.outcomes if o.ok and o.attempts == 0)
    if acc.get("cache.hit", 0) != served:
        problems.append(f"cache.hit spans {acc.get('cache.hit', 0)} != "
                        f"cache-tier outcomes {served}")
    return problems


def _parse_faults(specs: list[str],
                  parser: argparse.ArgumentParser) -> tuple:
    faults = []
    for spec in specs:
        workload, sep, token = spec.partition("=")
        if not sep or not workload or not token:
            parser.error(f"--inject-fault expects WORKLOAD=TOKEN, "
                         f"got {spec!r}")
        try:
            parse_token(token)
        except ValueError as err:
            parser.error(f"--inject-fault {spec!r}: {err}")
        faults.append((workload, token))
    return tuple(faults)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_engine_args(parser, args)

    valid = experiment_names()
    names = list(args.experiments)
    if "all" in names:
        names = list(valid)
    unknown = [n for n in names if n not in valid]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} "
                     f"(valid: {', '.join(valid)}, all)")

    registry = all_experiments()
    selected = [registry[name] for name in names]
    ctx = context_from_args(
        args, obs_dir=args.obs_out,
        faults=_parse_faults(args.inject_fault, parser))
    tracer = None
    if args.trace_out:
        from repro.perf.trace import SpanTracer
        tracer = SpanTracer()
    engine = RunEngine(ctx, tracer=tracer)

    suite_start = time.time()
    # Phase 1: execute the union of every selected experiment's job set
    # (deduplicated, parallel, cached).  Renderers then hit the memo.
    jobs = [job for exp in selected for job in exp.jobs(args.scale)]
    _, report = engine.run_jobs_report(jobs)
    banner = report.banner()
    if banner is not None:
        print(banner + "\n", file=sys.stderr)

    # Phase 2: render, in the order the experiments were requested.
    # A renderer whose jobs failed degrades to a note, never a crash.
    render_failures = 0
    for exp in selected:
        start = time.time()
        try:
            print(exp.render(args.scale))
        except Exception as err:  # noqa: BLE001 — degrade, don't crash
            render_failures += 1
            print(f"[{exp.name} NOT rendered: "
                  f"{type(err).__name__}: {err}]\n", file=sys.stderr)
            continue
        print(f"[{exp.name} done in {time.time() - start:.1f}s]",
              file=sys.stderr)

    print(f"[{len(selected)} experiment(s) in "
          f"{time.time() - suite_start:.1f}s total; "
          f"engine: {GLOBAL_STATS.summary()}]", file=sys.stderr)
    if args.obs_out:
        print(f"[obs manifests in {args.obs_out}]", file=sys.stderr)

    trace_problems: list[str] = []
    if tracer is not None:
        from repro.perf.trace import write_chrome_trace
        path = write_chrome_trace(
            args.trace_out, tracer,
            metadata={"tool": "repro-experiments",
                      "experiments": names, "scale": args.scale,
                      "jobs": args.jobs})
        trace_problems = _check_trace_accounting(tracer, report)
        print(f"[trace: {len(tracer)} spans -> {path}]", file=sys.stderr)
    if args.metrics_out:
        path = get_registry().write(args.metrics_out)
        print(f"[metrics -> {path}]", file=sys.stderr)

    if not report.ok:
        print(f"\n{banner}", file=sys.stderr)
        print(report.summary_table(), file=sys.stderr)
        return 1
    if render_failures:
        print(f"\n{render_failures} experiment(s) failed to render",
              file=sys.stderr)
        return 1
    if trace_problems:
        print("\ntrace accounting mismatch (tracer bug):",
              file=sys.stderr)
        for problem in trace_problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
