"""Experiment harness: one module per paper table/figure.

See DESIGN.md's experiment index for the mapping from paper figures to
modules, and ``repro.experiments.runner`` for the CLI that regenerates
everything.
"""

from repro.experiments import (  # noqa: F401
    base,
    fig1_cumulative_widths,
    fig2_width_fluctuation,
    fig4_narrow16_by_class,
    fig5_narrow33_by_class,
    fig6_power_saved,
    fig7_power_total,
    fig10_packing_speedup,
    fig11_ipc,
    load_zero_detect,
    table1_config,
    table4_devices,
)
