"""Experiment harness: one module per paper table/figure.

Each module registers a declarative
:class:`~repro.experiments.registry.Experiment` (name, description,
job spec, render fn); the CLI runner, the run engine, and ``repro-obs``
all discover experiments from that registry.  Import order below is the
paper's presentation order — it defines the registry order and
therefore what ``repro-experiments all`` prints first.

See DESIGN.md's experiment index for the mapping from paper figures to
modules, and ``repro.experiments.runner`` for the CLI that regenerates
everything.
"""

from repro.experiments import (  # noqa: F401
    base,
    registry,
    table1_config,
    table4_devices,
    fig1_cumulative_widths,
    fig2_width_fluctuation,
    fig4_narrow16_by_class,
    fig5_narrow33_by_class,
    fig6_power_saved,
    fig7_power_total,
    load_zero_detect,
    fig10_packing_speedup,
    fig11_ipc,
)
