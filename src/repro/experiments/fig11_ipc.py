"""Figure 11 — IPC: baseline vs packing vs an 8-issue/8-ALU machine.

"Figure 11 compares instructions per cycle (IPC) for three different
configurations, all with combining branch prediction and decode and
commit width of four.  The first is the baseline machine with issue
width of 4 and 4 integer ALUs.  The second is the baseline machine
augmented with our operation packing optimizations.  The third machine
is the baseline machine with an issue width of 8 and 8 integer ALUs.
Ijpeg and vortex, as well as many of the media benchmarks, come very
close to achieving the same IPC as the more costly 8-issue/8-ALU
implementation."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.base import all_names, format_table, run_workload
from repro.experiments.registry import Experiment, register


@dataclass
class Fig11Row:
    benchmark: str
    baseline_ipc: float
    packed_ipc: float
    wide_ipc: float      # 8-issue / 8-ALU machine

    @property
    def gap_closed_pct(self) -> float:
        """How much of the (baseline -> 8-issue) gap packing recovers."""
        gap = self.wide_ipc - self.baseline_ipc
        if gap <= 0:
            return 100.0
        return 100.0 * (self.packed_ipc - self.baseline_ipc) / gap


@dataclass
class Fig11Result:
    rows: list[Fig11Row]


def run(config: MachineConfig = BASELINE, scale: int = 1,
        replay: bool = False) -> Fig11Result:
    packed_cfg = config.with_packing(replay=replay)
    wide_cfg = config.with_issue_width(8, 8)
    rows = []
    for name in all_names():
        rows.append(Fig11Row(
            benchmark=name,
            baseline_ipc=run_workload(name, config, scale).ipc,
            packed_ipc=run_workload(name, packed_cfg, scale).ipc,
            wide_ipc=run_workload(name, wide_cfg, scale).ipc,
        ))
    return Fig11Result(rows=rows)


def report(result: Fig11Result) -> str:
    headers = ["benchmark", "base IPC", "packed IPC", "8-issue IPC",
               "gap closed %"]
    rows = [[r.benchmark, r.baseline_ipc, r.packed_ipc, r.wide_ipc,
             r.gap_closed_pct] for r in result.rows]
    return ("Figure 11 — IPC for baseline, packing, and 8-issue/8-ALU "
            "machines (combining predictor)\n"
            + format_table(headers, rows, precision=2))


def jobs(scale: int = 1, config: MachineConfig = BASELINE,
         replay: bool = False) -> list[Job]:
    """Three machines per benchmark: baseline, packed (shared with
    Figure 10's combining series), and 8-issue/8-ALU."""
    packed_cfg = config.with_packing(replay=replay)
    wide_cfg = config.with_issue_width(8, 8)
    out = []
    for name in all_names():
        out.append(Job(name, config, scale))
        out.append(Job(name, packed_cfg, scale))
        out.append(Job(name, wide_cfg, scale))
    return out


register(Experiment(
    name="fig11",
    description="Figure 11 — IPC: baseline vs packing vs 8-issue/8-ALU",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))


if __name__ == "__main__":
    print(report(run()))
