"""``chaos`` experiment — fault-injection verdict matrix.

Not a paper figure: a robustness report.  Runs the chaos harness
(:mod:`repro.robust.chaos`) over a representative workload slice —
every injector in the catalog at a fixed seed — and renders the
verdict matrix plus the masked-or-detected bottom line.  The full
14-workload matrix (and the disk-cache corruption scenario) lives in
the dedicated ``repro-chaos`` CLI; this experiment is the suite-level
smoke check that rides ``repro-experiments all``.

Chaos trials perturb live machine state, so their runs can never be
served from (or stored to) the result cache — the experiment declares
no engine jobs and simulates inside its renderer, on a reduced window
to keep ``all`` fast.
"""

from __future__ import annotations

from repro.exec.jobs import Job
from repro.experiments.base import format_table
from repro.experiments.registry import Experiment, register
from repro.robust.chaos import ALL_INJECTORS, chaos_suite, summarize

#: One SPEC + one MediaBench workload: perl actually replay-traps in
#: this window, so every injector in the catalog — including
#: replay-drop — arms at least once.
_WORKLOADS = ["perl", "g721-encode"]
_SEED = 0
_WINDOW = 10_000


def jobs(scale: int = 1) -> list[Job]:
    return []   # chaos runs are deliberately uncacheable


def report(scale: int = 1) -> str:
    outcomes = chaos_suite(_WORKLOADS, ALL_INJECTORS,
                           seed=_SEED, scale=scale, window=_WINDOW)
    headers = ["workload", "injector", "expect", "verdict",
               "injections", "violations"]
    from repro.robust.inject import INJECTOR_TYPES
    rows: list[list[object]] = []
    for o in outcomes:
        expect = INJECTOR_TYPES[o.injector].expect
        rows.append([o.workload, o.injector, expect, o.verdict,
                     o.injections, o.violations])
    counts = summarize(outcomes)
    lines = [
        "Chaos: injected faults vs invariant guards "
        f"(seed {_SEED}, window {_WINDOW})",
        "",
        format_table(headers, rows),
        "",
        f"{counts['silent']} silent corruptions, "
        f"{counts['false-positive']} false positives "
        f"({len(outcomes)} trials)",
    ]
    if counts["silent"] or counts["false-positive"]:
        raise AssertionError("\n".join(lines))
    return "\n".join(lines)


register(Experiment(
    name="chaos",
    description="fault injection: every fault masked or detected",
    jobs=jobs,
    render=report,
))
