"""Declarative experiment registry.

Every paper table/figure registers one :class:`Experiment` describing
itself: a name, a one-line description, the **job spec** — the exact
set of :class:`~repro.exec.jobs.Job` simulations the figure needs —
and the **render function** that turns finished results into the
printed report.

The registry is the single discovery point: the CLI runner
(``repro-experiments``), the run engine, and ``repro-obs
--list-experiments`` all enumerate it.  Splitting the job spec from
rendering is what enables the engine to deduplicate jobs *across*
figures (Figures 6 and 7 share their baseline suite; Figures 10 and 11
share the packed runs) and to fan the union out over a process pool
before any report is rendered — the renderers then hit the process-wide
memo and perform zero fresh simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exec.jobs import Job


@dataclass(frozen=True)
class Experiment:
    """One registered table/figure experiment."""

    name: str
    description: str
    #: scale -> the simulation jobs this experiment's renderer will
    #: consume (empty for pure-configuration tables).
    jobs: Callable[[int], list[Job]]
    #: scale -> the finished report text.
    render: Callable[[int], str]

    def __call__(self, scale: int = 1) -> str:
        """Back-compat callable form (the old runner lambda table)."""
        return self.render(scale)


_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Register an experiment (module import time); returns it."""
    if experiment.name in _REGISTRY:
        raise ValueError(f"duplicate experiment {experiment.name!r}")
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    return _REGISTRY[name]


def experiment_names() -> tuple[str, ...]:
    """Registered experiment names, in registration (paper) order."""
    _ensure_loaded()
    return tuple(_REGISTRY)


def all_experiments() -> dict[str, Experiment]:
    """Name -> experiment, in registration order."""
    _ensure_loaded()
    return dict(_REGISTRY)


def _ensure_loaded() -> None:
    """Import the experiment modules, which register themselves (the
    same idiom as the workload registry).  Import order is the paper's
    presentation order — it defines what ``repro-experiments all``
    prints first."""
    from repro.experiments import (  # noqa: F401
        table1_config,
        table4_devices,
        fig1_cumulative_widths,
        fig2_width_fluctuation,
        fig4_narrow16_by_class,
        fig5_narrow33_by_class,
        fig6_power_saved,
        fig7_power_total,
        load_zero_detect,
        fig10_packing_speedup,
        fig11_ipc,
        lint_static,
        chaos_robust,
    )
