"""Figure 10 (and Section 5.4) — speedup from operation packing.

"Figure 10 shows the percent speedup over the baseline system in the
configuration with the decode width of four ... The average speedup
across SPECint95 was 7.1% for perfect branch prediction and 4.3% with
the realistic predictor ... The average speedup for the media
benchmarks was 7.6% with perfect branch prediction and 8.0% with the
realistic branch predictor."

Section 5.4 extends the study to 8-wide decode ("The average speedup
for SPECint95 was 9.9% for perfect branch prediction and 6.2% with the
combining predictor ... for the media benchmarks 10.3% ... and 10.4%")
and Section 5.3 adds replay packing; both variants are options here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.exec.jobs import Job
from repro.experiments.registry import Experiment, register
from repro.experiments.base import (
    all_names,
    format_table,
    mean,
    media_names,
    run_workload,
    spec_names,
)
from repro.stats.counters import speedup_pct


@dataclass
class Fig10Row:
    benchmark: str
    perfect_pct: float      # packing speedup under oracle prediction
    realistic_pct: float    # packing speedup under the combining predictor


@dataclass
class Fig10Result:
    decode_width: int
    replay: bool
    rows: list[Fig10Row]

    def _suite(self, names: tuple[str, ...], perfect: bool) -> float:
        return mean([r.perfect_pct if perfect else r.realistic_pct
                     for r in self.rows if r.benchmark in names])

    @property
    def spec_perfect(self) -> float:
        return self._suite(spec_names(), True)

    @property
    def spec_realistic(self) -> float:
        return self._suite(spec_names(), False)

    @property
    def media_perfect(self) -> float:
        return self._suite(media_names(), True)

    @property
    def media_realistic(self) -> float:
        return self._suite(media_names(), False)


def _speedup(name: str, config: MachineConfig, replay: bool,
             scale: int) -> float:
    base = run_workload(name, config, scale)
    packed = run_workload(name, config.with_packing(replay=replay), scale)
    return speedup_pct(base.stats.cycles, packed.stats.cycles)


def run(config: MachineConfig = BASELINE, scale: int = 1,
        decode_width: int = 4, replay: bool = False) -> Fig10Result:
    if decode_width != config.decode_width:
        config = config.with_decode_width(decode_width)
    rows = []
    for name in all_names():
        rows.append(Fig10Row(
            benchmark=name,
            perfect_pct=_speedup(name, config.with_predictor("perfect"),
                                 replay, scale),
            realistic_pct=_speedup(name, config.with_predictor("combining"),
                                   replay, scale),
        ))
    return Fig10Result(decode_width=decode_width, replay=replay, rows=rows)


def report(result: Fig10Result) -> str:
    title = (f"Figure 10 — % speedup from operation packing "
             f"(decode width {result.decode_width}"
             f"{', replay packing' if result.replay else ''})")
    headers = ["benchmark", "perfect BP %", "combining BP %"]
    rows = [[r.benchmark, r.perfect_pct, r.realistic_pct]
            for r in result.rows]
    rows.append(["SPECint95 avg", result.spec_perfect,
                 result.spec_realistic])
    rows.append(["MediaBench avg", result.media_perfect,
                 result.media_realistic])
    return title + "\n" + format_table(headers, rows, precision=1)


def jobs(scale: int = 1, config: MachineConfig = BASELINE,
         decode_width: int = 4, replay: bool = False) -> list[Job]:
    """Each benchmark under both predictors, plain and packed (the
    plain combining runs are the shared baseline suite; the packed
    runs are shared with Figure 11)."""
    if decode_width != config.decode_width:
        config = config.with_decode_width(decode_width)
    out = []
    for name in all_names():
        for predictor in ("perfect", "combining"):
            cfg = config.with_predictor(predictor)
            out.append(Job(name, cfg, scale))
            out.append(Job(name, cfg.with_packing(replay=replay), scale))
    return out


register(Experiment(
    name="fig10",
    description="Figure 10 — % speedup from operation packing "
                "(4-wide decode)",
    jobs=jobs,
    render=lambda scale: report(run(scale=scale)),
))

register(Experiment(
    name="fig10-replay",
    description="Section 5.3 — packing speedup with replay packing",
    jobs=lambda scale: jobs(scale, replay=True),
    render=lambda scale: report(run(scale=scale, replay=True)),
))

register(Experiment(
    name="fig10-8wide",
    description="Section 5.4 — packing speedup at 8-wide decode",
    jobs=lambda scale: jobs(scale, decode_width=8),
    render=lambda scale: report(run(scale=scale, decode_width=8)),
))


if __name__ == "__main__":
    print(report(run()))
