"""The experiment service core: admission, coalescing, execution.

:class:`ExperimentService` is the transport-free heart of the service —
the asyncio HTTP layer (:mod:`repro.service.http`) and the tests drive
the same object.  It owns four pieces of machinery:

* a **bounded admission queue**: a submission whose *new* jobs would
  push the queue past ``queue_limit`` is rejected atomically with the
  typed :class:`~repro.service.api.Backpressure` (queue depth, limit,
  retry-after estimate) — no partial admission, and rejection is
  immediate, never a hang;
* **request coalescing**: unique jobs are keyed by their content
  fingerprint; a submission naming a fingerprint that is already
  queued or running *attaches* to the in-flight entry instead of
  enqueueing a duplicate, so N concurrent identical sweeps cost one
  simulation (``service.coalesced`` counts the attachments);
* a pool of **runner threads**, each executing one admitted job at a
  time through a :class:`~repro.exec.engine.RunEngine` under the
  service's :class:`~repro.exec.context.RunContext` — so a served job
  gets the cache tiers, retries, timeouts, spans, and metrics a local
  CLI run gets, and its result lands in the shared (sharded, when
  ``cache_layout="cas"``) content-addressed store;
* **progress events** per sweep, as JSONL-able records in the obs
  manifest wire format: job state transitions are ``{"record": "job",
  ...}`` lines, and when the context carries an obs directory the
  finished job's manifest records (run/config/stats/power/attribution/
  window) stream too.

Results are served as **canonical bytes** —
``json.dumps(result_to_dict(result), sort_keys=True,
separators=(",", ":"))`` — the same serialize round trip every engine
tier uses, which is why a served payload is byte-identical to what
``repro-experiments`` computes locally for the same job.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field, replace

from repro.exec.context import RunContext
from repro.exec.engine import RunEngine
from repro.exec.jobs import Job
from repro.exec.serialize import result_to_dict
from repro.exec.shards import ShardedResultCache, shard_key
from repro.obs.export import manifest_records, read_manifest
from repro.perf.clock import epoch_now, mono_now
from repro.perf.metrics import get_registry
from repro.service.api import (
    API_SCHEMA,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_COALESCED,
    SOURCE_FRESH,
    SOURCE_STORE,
    Backpressure,
    JobStatus,
    NotFound,
    SubmitRequest,
    SweepStatus,
)


def canonical_result_bytes(result_dict: dict) -> bytes:
    """The service's one true result encoding: canonical JSON of the
    serialized result dict.  Both the serving path and the client-side
    ``verify`` command call this, so "byte-identical" is a single
    function, not a convention."""
    return (json.dumps(result_dict, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


@dataclass
class _Entry:
    """One unique admitted job (the coalescing unit)."""

    fingerprint: str
    spec: object                    # the first submitter's JobSpec
    job: Job
    backend: str
    state: str = QUEUED
    source: str | None = None
    error: str | None = None
    result_bytes: bytes | None = None
    #: sweep ids attached to this entry (first = the admitter).
    sweeps: list[str] = field(default_factory=list)


@dataclass
class _Sweep:
    """One submission: ordered fingerprints plus its event feed."""

    sweep_id: str
    fingerprints: list[str]
    #: fingerprint -> source *as seen by this sweep* (an attached sweep
    #: sees "coalesced" where the admitting sweep sees "fresh").
    sources: dict[str, str] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)


class ExperimentService:
    """Multi-tenant front end over the run engine (transport-free)."""

    def __init__(self, ctx: RunContext | None = None, *,
                 queue_limit: int = 64, workers: int = 2) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.ctx = ctx or RunContext()
        self.queue_limit = queue_limit
        self.workers = workers
        self._cond = threading.Condition()
        self._queue: deque[str] = deque()       # admitted fingerprints
        self._entries: dict[str, _Entry] = {}   # queued | running
        self._done: dict[str, _Entry] = {}      # terminal
        self._sweeps: dict[str, _Sweep] = {}
        self._seq = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._avg_wall = 2.0                    # EMA, seconds per job
        self._store = (ShardedResultCache(self.ctx.cache_dir)
                       if (self.ctx.cache_dir is not None
                           and self.ctx.cache_layout == "cas")
                       else None)
        self._started_at = epoch_now()

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ExperimentService":
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self) -> None:
        """Stop accepting work, fail whatever is still queued (so no
        stream waiter hangs), and join the runner threads."""
        with self._cond:
            self._stopping = True
            while self._queue:
                fingerprint = self._queue.popleft()
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._finish_locked(entry, FAILED,
                                        error="service shut down before "
                                              "this job ran")
            self._set_depth_locked()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads.clear()

    # ------------------------------------------------------------- submit

    def submit(self, request: SubmitRequest) -> SweepStatus:
        """Admit a sweep (all jobs or none); returns its initial status.

        Raises :class:`~repro.service.api.RequestInvalid` for unknown
        workloads/configs and :class:`~repro.service.api.Backpressure`
        when the admission queue cannot take the sweep's *new* jobs.
        """
        # Resolve outside the lock: validation is pure, and a typed
        # failure here must not cost a lock hold.
        resolved: list[tuple[object, Job, str]] = []
        for spec in request.jobs:
            job = spec.resolve()
            resolved.append((spec, job, job.fingerprint()))

        registry = get_registry()
        with self._cond:
            if self._stopping:
                raise Backpressure("service is shutting down",
                                   queue_depth=len(self._queue),
                                   queue_limit=self.queue_limit,
                                   retry_after=self._retry_after_locked())
            sweep_id = f"sweep-{next(self._seq):06d}"
            sweep = _Sweep(sweep_id, [])
            # First pass: what would this sweep add to the queue?
            seen: set[str] = set()
            new_fingerprints = []
            for _spec, _job, fingerprint in resolved:
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                if (fingerprint not in self._entries
                        and fingerprint not in self._done
                        and not self._store_has(fingerprint)):
                    new_fingerprints.append(fingerprint)
            if len(self._queue) + len(new_fingerprints) > self.queue_limit:
                registry.counter("service.rejected").inc()
                depth = len(self._queue)
                raise Backpressure(
                    f"admission queue is full ({depth}/{self.queue_limit} "
                    f"queued, {len(new_fingerprints)} new jobs submitted)",
                    queue_depth=depth, queue_limit=self.queue_limit,
                    retry_after=self._retry_after_locked())

            # Second pass: mutate. All-or-nothing by construction now.
            seen.clear()
            for spec, job, fingerprint in resolved:
                sweep.fingerprints.append(fingerprint)
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                registry.counter("service.submitted_jobs").inc()
                done = self._done.get(fingerprint)
                if done is not None:
                    sweep.sources[fingerprint] = SOURCE_STORE
                    registry.counter("service.store_hits").inc()
                    continue
                inflight = self._entries.get(fingerprint)
                if inflight is not None:
                    inflight.sweeps.append(sweep_id)
                    sweep.sources[fingerprint] = SOURCE_COALESCED
                    registry.counter("service.coalesced").inc()
                    continue
                stored = self._store_load(fingerprint)
                if stored is not None:
                    entry = _Entry(fingerprint, spec, job, request.backend,
                                   state=DONE, source=SOURCE_STORE,
                                   result_bytes=canonical_result_bytes(
                                       stored["result"]))
                    self._done[fingerprint] = entry
                    sweep.sources[fingerprint] = SOURCE_STORE
                    registry.counter("service.store_hits").inc()
                    continue
                entry = _Entry(fingerprint, spec, job, request.backend,
                               sweeps=[sweep_id])
                self._entries[fingerprint] = entry
                self._queue.append(fingerprint)
                sweep.sources[fingerprint] = SOURCE_FRESH
            registry.counter("service.sweeps").inc()
            self._sweeps[sweep_id] = sweep
            self._set_depth_locked()
            sweep.events.append({"record": "sweep", "schema": API_SCHEMA,
                                 "sweep_id": sweep_id,
                                 "jobs": len(sweep.fingerprints)})
            for _spec, _job, fingerprint in resolved:
                self._emit_job_locked(sweep, fingerprint)
            status = self._status_locked(sweep_id)
            if status.done:
                sweep.events.append(self._end_record(status))
            self._cond.notify_all()
        return status

    # -------------------------------------------------------------- query

    def status(self, sweep_id: str) -> SweepStatus:
        with self._cond:
            if sweep_id not in self._sweeps:
                raise NotFound(f"no such sweep {sweep_id!r}")
            return self._status_locked(sweep_id)

    def result_bytes(self, fingerprint: str) -> bytes:
        """The canonical result payload for a finished fingerprint —
        from memory if this process ran it, else from the shared store."""
        with self._cond:
            entry = self._done.get(fingerprint)
            if entry is not None and entry.result_bytes is not None:
                return entry.result_bytes
        stored = self._store_load(fingerprint)
        if stored is not None:
            return canonical_result_bytes(stored["result"])
        raise NotFound(f"no result for fingerprint {fingerprint!r}")

    def events_since(self, sweep_id: str, cursor: int,
                     timeout: float = 10.0) -> tuple[list[dict], int, bool]:
        """Progress records after ``cursor`` (blocking up to
        ``timeout`` seconds for new ones); returns ``(records,
        next_cursor, sweep_done)``.  The JSONL streaming endpoint calls
        this repeatedly from an executor thread."""
        deadline = mono_now() + timeout
        with self._cond:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                raise NotFound(f"no such sweep {sweep_id!r}")
            while True:
                if len(sweep.events) > cursor:
                    records = list(sweep.events[cursor:])
                    done = (records[-1].get("record") == "sweep.end")
                    return records, len(sweep.events), done
                remaining = deadline - mono_now()
                if remaining <= 0:
                    return [], cursor, False
                self._cond.wait(remaining)

    def wait(self, sweep_id: str, timeout: float | None = None) -> SweepStatus:
        """Block until the sweep is terminal (tests and in-process use)."""
        deadline = (mono_now() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                status = self.status(sweep_id)
                if status.done:
                    return status
                remaining = (None if deadline is None
                             else deadline - mono_now())
                if remaining is not None and remaining <= 0:
                    return status
                self._cond.wait(remaining if remaining is not None else 1.0)

    def health(self) -> dict:
        with self._cond:
            running = sum(1 for e in self._entries.values()
                          if e.state == RUNNING)
            return {
                "schema": API_SCHEMA,
                "status": "stopping" if self._stopping else "ok",
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "running": running,
                "workers": self.workers,
                "sweeps": len(self._sweeps),
                "done": len(self._done),
                "uptime_seconds": round(epoch_now() - self._started_at, 3),
                "backend": self.ctx.backend,
                "cache_layout": self.ctx.cache_layout,
            }

    # ------------------------------------------------------------ workers

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queue:
                    return
                fingerprint = self._queue.popleft()
                entry = self._entries[fingerprint]
                entry.state = RUNNING
                self._set_depth_locked()
                self._emit_entry_locked(entry)
                self._cond.notify_all()
            self._run_entry(entry)

    def _run_entry(self, entry: _Entry) -> None:
        """Execute one admitted job through the engine (no lock held)."""
        registry = get_registry()
        ctx = self._run_ctx(entry.backend)
        self._before_execute(entry)
        t0 = mono_now()
        try:
            engine = RunEngine(ctx)
            results, report = engine.run_jobs_report([entry.job])
            outcome = report.outcome_of(entry.job)
            result = results.get(entry.job.key)
        except Exception as err:  # noqa: BLE001 — service boundary
            result, outcome = None, None
            error = f"{type(err).__name__}: {err}"
        else:
            error = (outcome.error or "job failed"
                     ) if result is None else None
        wall = mono_now() - t0
        payload = None
        source = SOURCE_FRESH
        if result is not None:
            payload = canonical_result_bytes(result_to_dict(result))
            if outcome is not None and outcome.attempts == 0:
                # The engine served it from a cache tier without
                # simulating (e.g. another process warmed the store).
                source = SOURCE_STORE
            registry.histogram("service.job_seconds").observe(wall)
        with self._cond:
            self._avg_wall = 0.7 * self._avg_wall + 0.3 * wall
            if payload is not None:
                entry.result_bytes = payload
                entry.source = source
                registry.counter("service.fresh"
                                 if source == SOURCE_FRESH
                                 else "service.store_hits").inc()
                self._finish_locked(entry, DONE)
            else:
                registry.counter("service.failed").inc()
                self._finish_locked(entry, FAILED, error=error)
            self._cond.notify_all()

    def _run_ctx(self, backend: str) -> RunContext:
        if backend == self.ctx.backend:
            return self.ctx
        return replace(self.ctx, backend=backend)

    def _before_execute(self, entry: _Entry) -> None:
        """Hook between the RUNNING transition and the engine call.

        The coalescing tests override this to hold a job in flight
        until a second identical sweep has attached — determinism the
        wall clock cannot provide."""

    # ---------------------------------------------------- state plumbing

    def _finish_locked(self, entry: _Entry, state: str,
                       error: str | None = None) -> None:
        entry.state = state
        entry.error = error
        self._entries.pop(entry.fingerprint, None)
        self._done[entry.fingerprint] = entry
        self._emit_entry_locked(entry)
        # Attached sweeps that just became terminal get their end record.
        for sweep_id in entry.sweeps:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                continue
            status = self._status_locked(sweep_id)
            if status.done:
                sweep.events.append(self._end_record(status))

    def _status_locked(self, sweep_id: str) -> SweepStatus:
        sweep = self._sweeps[sweep_id]
        statuses = []
        for fingerprint in sweep.fingerprints:
            entry = (self._entries.get(fingerprint)
                     or self._done.get(fingerprint))
            source = entry.source or sweep.sources.get(fingerprint)
            if (entry.state == DONE
                    and sweep.sources.get(fingerprint) != SOURCE_FRESH):
                # An attached/late sweep reports its own view: it was
                # coalesced or store-served even though the entry itself
                # ran fresh for the admitting sweep.
                source = sweep.sources.get(fingerprint, source)
            statuses.append(JobStatus(
                spec=entry.spec, fingerprint=fingerprint,
                state=entry.state, source=source, error=entry.error))
        return SweepStatus(sweep_id=sweep_id, statuses=tuple(statuses))

    def _emit_job_locked(self, sweep: _Sweep, fingerprint: str) -> None:
        entry = (self._entries.get(fingerprint)
                 or self._done.get(fingerprint))
        sweep.events.append(self._job_record(entry, sweep))

    def _emit_entry_locked(self, entry: _Entry) -> None:
        for sweep_id in entry.sweeps:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                continue
            sweep.events.append(self._job_record(entry, sweep))
            if entry.state == DONE and self.ctx.wants_obs:
                for record in self._manifest_records(entry):
                    sweep.events.append(record)

    def _job_record(self, entry: _Entry, sweep: _Sweep) -> dict:
        source = entry.source or sweep.sources.get(entry.fingerprint)
        if (entry.state == DONE
                and sweep.sources.get(entry.fingerprint) != SOURCE_FRESH):
            source = sweep.sources.get(entry.fingerprint, source)
        return {"record": "job", "fingerprint": entry.fingerprint,
                "workload": entry.job.workload, "scale": entry.job.scale,
                "state": entry.state, "source": source,
                "error": entry.error}

    def _end_record(self, status: SweepStatus) -> dict:
        return {"record": "sweep.end", "sweep_id": status.sweep_id,
                "ok": status.ok,
                "jobs": len(status.statuses)}

    def _manifest_records(self, entry: _Entry) -> list[dict]:
        """The finished job's obs manifest, flattened to the JSONL wire
        records (the PR-1 format) and tagged with the fingerprint."""
        assert self.ctx.obs_dir is not None
        path = self.ctx.obs_dir / f"{entry.job.stem()}.json"
        if not path.exists():
            return []
        try:
            manifest = read_manifest(path)
        except (OSError, ValueError):
            return []
        return [{**record, "fingerprint": entry.fingerprint}
                for record in manifest_records(manifest)]

    def _retry_after_locked(self) -> float:
        estimate = (len(self._queue) + 1) * self._avg_wall / self.workers
        return round(min(max(estimate, 1.0), 600.0), 1)

    def _set_depth_locked(self) -> None:
        get_registry().gauge("service.queue_depth").set(len(self._queue))

    def _store_has(self, fingerprint: str) -> bool:
        if fingerprint in self._done:
            return True
        return self._store_load(fingerprint) is not None

    def _store_load(self, fingerprint: str) -> dict | None:
        if self._store is None:
            return None
        if not self.ctx.use_cache or self.ctx.refresh:
            return None
        return self._store.load_by_fingerprint(fingerprint)


def shard_of_fingerprint(fingerprint: str) -> str:
    """Convenience re-export: which CAS shard a fingerprint lands in."""
    return shard_key(fingerprint)
