"""The experiment service core: admission, coalescing, execution.

:class:`ExperimentService` is the transport-free heart of the service —
the asyncio HTTP layer (:mod:`repro.service.http`) and the tests drive
the same object.  It owns six pieces of machinery:

* a **bounded admission queue**: a submission whose *new* jobs would
  push the queue past ``queue_limit`` is rejected atomically with the
  typed :class:`~repro.service.api.Backpressure` (queue depth, limit,
  retry-after estimate) — no partial admission, and rejection is
  immediate, never a hang;
* **request coalescing**: unique jobs are keyed by their content
  fingerprint; a submission naming a fingerprint that is already
  queued or running *attaches* to the in-flight entry instead of
  enqueueing a duplicate, so N concurrent identical sweeps cost one
  simulation (``service.coalesced`` counts the attachments);
* a pool of **runner threads**, each executing one admitted job at a
  time through a :class:`~repro.exec.engine.RunEngine` under the
  service's :class:`~repro.exec.context.RunContext` — so a served job
  gets the cache tiers, retries, timeouts, spans, and metrics a local
  CLI run gets, and its result lands in the shared (sharded, when
  ``cache_layout="cas"``) content-addressed store;
* a **durable sweep journal** (:mod:`repro.service.journal`, enabled
  by ``journal_dir``): admission, dispatch, terminal outcomes, and
  parked work hit an fsync'd WAL before clients see them; on
  construction the service replays the journal, reconciles against
  the CAS (fingerprints that already landed are served from the
  store, never re-simulated), and re-enqueues only genuinely-lost
  jobs — so ``kill -9`` mid-sweep costs zero acknowledged work;
* **per-job fault isolation**: a crash in a runner thread fails *that
  job* typed (``error_code="worker-crash"``) and the thread keeps
  draining the queue; a configurable **circuit breaker** trips after
  ``breaker_threshold`` consecutive infra crashes, rejecting new
  submissions with the typed 503
  :class:`~repro.service.api.ServiceUnavailable` until its cooldown
  lapses (one success closes it again);
* **deadline propagation + graceful drain**: a submission's
  ``deadline_seconds`` arms a monotonic deadline at admission; each
  dispatch decrements the remaining budget into the engine's per-job
  timeout, and a job whose budget is spent before it starts fails
  typed (``deadline-exceeded``) without running.  :meth:`drain` (the
  SIGTERM path) flips readiness false, journals queued jobs as
  parked, lets in-flight jobs finish, and returns — parked work
  resumes on the next start.

Results are served as **canonical bytes** —
``json.dumps(result_to_dict(result), sort_keys=True,
separators=(",", ":"))`` — the same serialize round trip every engine
tier uses, which is why a served payload is byte-identical to what
``repro-experiments`` computes locally for the same job, and why a
journal-resumed sweep serves bytes identical to an uninterrupted run.

* **progress events** per sweep, as JSONL-able records in the obs
  manifest wire format: job state transitions are ``{"record": "job",
  ...}`` lines, and when the context carries an obs directory the
  finished job's manifest records (run/config/stats/power/attribution/
  window) stream too.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.exec.context import RunContext
from repro.exec.engine import RunEngine
from repro.exec.jobs import Job
from repro.exec.serialize import result_to_dict
from repro.exec.shards import ShardedResultCache, shard_key
from repro.obs.export import manifest_records, read_manifest
from repro.perf.clock import epoch_now, mono_now
from repro.perf.metrics import get_registry
from repro.service.api import (
    API_SCHEMA,
    DONE,
    ERR_DEADLINE,
    ERR_INVALID_ON_RESTART,
    ERR_JOB_FAILED,
    ERR_SHUTDOWN,
    ERR_WORKER_CRASH,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_COALESCED,
    SOURCE_FRESH,
    SOURCE_STORE,
    Backpressure,
    JobSpec,
    JobStatus,
    NotFound,
    ServiceError,
    ServiceUnavailable,
    SubmitRequest,
    SweepStatus,
)
from repro.service.journal import (
    JOURNAL_NAME,
    REC_ADMITTED,
    REC_DISPATCHED,
    REC_DONE,
    REC_DRAIN,
    REC_FAILED,
    REC_PARKED,
    REC_START,
    REC_SWEEP_END,
    JournalReplay,
    SweepJournal,
    read_journal,
)


def canonical_result_bytes(result_dict: dict) -> bytes:
    """The service's one true result encoding: canonical JSON of the
    serialized result dict.  Both the serving path and the client-side
    ``verify`` command call this, so "byte-identical" is a single
    function, not a convention."""
    return (json.dumps(result_dict, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


@dataclass
class _Entry:
    """One unique admitted job (the coalescing unit)."""

    fingerprint: str
    spec: JobSpec
    job: Job | None
    backend: str
    state: str = QUEUED
    source: str | None = None
    error: str | None = None
    error_code: str | None = None
    result_bytes: bytes | None = None
    #: monotonic deadline; the remaining budget becomes the engine
    #: timeout at dispatch.  None = unbounded.
    deadline: float | None = None
    #: sweep ids attached to this entry (first = the admitter).
    sweeps: list[str] = field(default_factory=list)


@dataclass
class _Sweep:
    """One submission: ordered fingerprints plus its event feed."""

    sweep_id: str
    fingerprints: list[str]
    #: fingerprint -> source *as seen by this sweep* (an attached sweep
    #: sees "coalesced" where the admitting sweep sees "fresh").
    sources: dict[str, str] = field(default_factory=dict)
    #: fingerprint -> this sweep's *frozen* terminal view.  Written when
    #: a job reaches a terminal state, so a later sweep retrying a
    #: failed fingerprint cannot rewrite this sweep's history.
    frozen: dict[str, JobStatus] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)


class ExperimentService:
    """Multi-tenant front end over the run engine (transport-free)."""

    def __init__(self, ctx: RunContext | None = None, *,
                 queue_limit: int = 64, workers: int = 2,
                 journal_dir: str | Path | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 30.0) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.ctx = ctx or RunContext()
        self.queue_limit = queue_limit
        self.workers = workers
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._cond = threading.Condition()
        self._queue: deque[str] = deque()       # admitted fingerprints
        self._entries: dict[str, _Entry] = {}   # queued | running
        self._done: dict[str, _Entry] = {}      # terminal
        self._sweeps: dict[str, _Sweep] = {}
        self._seq = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._draining = False
        self._breaker_failures = 0              # consecutive infra crashes
        self._breaker_open_until: float | None = None
        self._avg_wall = 2.0                    # EMA, seconds per job
        self._journal: SweepJournal | None = None
        self._store = (ShardedResultCache(self.ctx.cache_dir)
                       if (self.ctx.cache_dir is not None
                           and self.ctx.cache_layout == "cas")
                       else None)
        self._started_at = epoch_now()
        if journal_dir is not None:
            self._open_journal(Path(journal_dir) / JOURNAL_NAME)

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ExperimentService":
        for index in range(self.workers):
            self._spawn_worker(index)
        return self

    def _spawn_worker(self, index: int) -> None:
        thread = threading.Thread(target=self._worker_main,
                                  args=(index,),
                                  name=f"repro-serve-worker-{index}",
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    def shutdown(self) -> None:
        """Hard stop: accept no more work and join the runner threads.

        Without a journal, whatever is still queued fails typed (so no
        stream waiter hangs).  With a journal, queued work is *parked*
        instead — durable, resumed by the next service over the same
        journal directory — because failing journaled work would turn
        a clean restart into data loss.
        """
        with self._cond:
            self._stopping = True
            self._park_or_fail_queued_locked()
            self._set_depth_locked()
            self._cond.notify_all()
        self._join_workers()
        with self._cond:
            if self._journal is not None:
                self._journal.close()

    def drain(self) -> dict:
        """Graceful drain (the SIGTERM path): readiness flips false,
        queued jobs are journaled as parked, in-flight jobs finish,
        and the journal closes cleanly.  Returns a summary dict."""
        with self._cond:
            already = self._draining or self._stopping
            self._draining = True
            parked = 0 if already else self._park_or_fail_queued_locked()
            self._set_depth_locked()
            self._cond.notify_all()
        self._join_workers()
        with self._cond:
            self._journal_locked(REC_DRAIN, parked=parked)
            if self._journal is not None:
                self._journal.close()
            self._stopping = True
            done = len(self._done)
        return {"drained": True, "parked": parked, "done": done}

    def _join_workers(self) -> None:
        for thread in list(self._threads):
            thread.join(timeout=600)
        self._threads.clear()

    def _park_or_fail_queued_locked(self) -> int:
        """Empty the queue: park (journal) or fail (no journal) each
        queued entry.  Parked entries stay non-terminal in memory —
        they belong to the *next* incarnation of the service."""
        registry = get_registry()
        parked = 0
        while self._queue:
            fingerprint = self._queue.popleft()
            entry = self._entries.get(fingerprint)
            if entry is None:
                continue
            if self._journal is not None:
                parked += 1
                registry.counter("service.drain.parked").inc()
                self._journal_locked(REC_PARKED, fingerprint=fingerprint)
            else:
                self._finish_locked(entry, FAILED,
                                    error="service shut down before "
                                          "this job ran",
                                    error_code=ERR_SHUTDOWN)
        return parked

    # ----------------------------------------------------- journal/recover

    def _open_journal(self, path: Path) -> None:
        """Replay + reconcile + compact + reopen, in that order.

        Called from ``__init__`` before any worker exists, so no lock
        is needed — but the ``_locked`` helpers it reaches are safe
        either way because the journal handle is still None while
        recovering (nothing is re-journaled during replay)."""
        registry = get_registry()
        replay = read_journal(path)
        if replay.bad_records:
            registry.counter("service.journal.bad_records").inc(
                replay.bad_records)
        if replay.torn_tail:
            registry.counter("service.journal.torn_tail").inc()
        live: list[str] = []
        if replay.sweeps:
            live = self._recover(replay)
        if path.exists():
            self._journal = SweepJournal.compact(
                path, self._reconciled_replay(replay, live), live)
        else:
            self._journal = SweepJournal(path)
        self._journal_locked(REC_START, workers=self.workers,
                             queue_limit=self.queue_limit,
                             recovered_sweeps=len(live),
                             replayed_records=replay.records,
                             bad_records=replay.bad_records,
                             torn_tail=replay.torn_tail)

    def _recover(self, replay: JournalReplay) -> list[str]:
        """Rebuild sweeps/entries from a journal replay, reconciling
        every non-terminal job against the CAS: landed fingerprints
        become store-served terminal entries (0 re-simulations);
        genuinely lost ones re-enter the queue.  Returns the ids of
        sweeps still live after reconciliation."""
        registry = get_registry()
        live: list[str] = []
        for sweep_id, rsweep in replay.sweeps.items():
            sweep = _Sweep(sweep_id, [])
            self._sweeps[sweep_id] = sweep
            registry.counter("service.restart.sweeps").inc()
            deadline = (mono_now() + rsweep.deadline_seconds
                        if rsweep.deadline_seconds else None)
            ordered: list[str] = []
            for job_doc in rsweep.jobs:
                fingerprint = job_doc.get("fingerprint")
                if not isinstance(fingerprint, str) or not fingerprint:
                    continue
                sweep.fingerprints.append(fingerprint)
                if fingerprint in sweep.sources:
                    continue            # duplicate within this sweep
                ordered.append(fingerprint)
                self._recover_job_locked(sweep, rsweep, job_doc,
                                         fingerprint, deadline,
                                         replay.job_states.get(fingerprint))
            sweep.events.append({"record": "sweep", "schema": API_SCHEMA,
                                 "sweep_id": sweep_id,
                                 "jobs": len(sweep.fingerprints),
                                 "resumed": True})
            for fingerprint in ordered:
                self._emit_job_locked(sweep, fingerprint)
            status = self._status_locked(sweep_id)
            if status.done:
                sweep.events.append(self._end_record(status))
            else:
                live.append(sweep_id)
        self._seq = itertools.count(replay.max_sweep_number + 1)
        self._set_depth_locked()
        return live

    def _recover_job_locked(self, sweep: _Sweep, rsweep, job_doc: dict,
                            fingerprint: str, deadline: float | None,
                            jstate: dict | None) -> None:
        registry = get_registry()
        inflight = self._entries.get(fingerprint)
        if inflight is not None:        # re-enqueued by an earlier sweep
            inflight.sweeps.append(sweep.sweep_id)
            sweep.sources[fingerprint] = rsweep.sources.get(
                fingerprint, SOURCE_COALESCED)
            if deadline is None:
                inflight.deadline = None
            elif inflight.deadline is not None:
                inflight.deadline = max(inflight.deadline, deadline)
            return
        done = self._done.get(fingerprint)
        if done is not None:            # already recovered terminal
            sweep.sources[fingerprint] = SOURCE_STORE
            sweep.frozen[fingerprint] = self._job_view_locked(sweep, done)
            return
        spec, job, bad_spec = self._resolve_replayed(job_doc)
        if jstate is not None and jstate.get("state") == "failed":
            # The journal already holds this job's terminal failure:
            # replay it verbatim rather than re-running a known loss.
            entry = _Entry(fingerprint, spec, job, rsweep.backend,
                           state=FAILED, error=jstate.get("error"),
                           error_code=jstate.get("error_code"),
                           sweeps=[sweep.sweep_id])
            self._done[fingerprint] = entry
            sweep.sources[fingerprint] = rsweep.sources.get(
                fingerprint, SOURCE_FRESH)
            sweep.frozen[fingerprint] = self._job_view_locked(sweep, entry)
            return
        stored = self._store_load(fingerprint)
        if stored is not None:
            # The CAS is the ground truth: this job landed before the
            # crash, so the reborn service serves the stored bytes and
            # never re-simulates.
            entry = _Entry(fingerprint, spec, job, rsweep.backend,
                           state=DONE, source=SOURCE_STORE,
                           result_bytes=canonical_result_bytes(
                               stored["result"]),
                           sweeps=[sweep.sweep_id])
            self._done[fingerprint] = entry
            sweep.sources[fingerprint] = SOURCE_STORE
            sweep.frozen[fingerprint] = self._job_view_locked(sweep, entry)
            registry.counter("service.restart.recovered_from_store").inc()
            return
        if bad_spec is not None:
            entry = _Entry(fingerprint, spec, job, rsweep.backend,
                           state=FAILED, error=bad_spec,
                           error_code=ERR_INVALID_ON_RESTART,
                           sweeps=[sweep.sweep_id])
            self._done[fingerprint] = entry
            sweep.sources[fingerprint] = rsweep.sources.get(
                fingerprint, SOURCE_FRESH)
            sweep.frozen[fingerprint] = self._job_view_locked(sweep, entry)
            return
        # Genuinely lost: back into the queue, full budget re-armed.
        entry = _Entry(fingerprint, spec, job, rsweep.backend,
                       deadline=deadline, sweeps=[sweep.sweep_id])
        self._entries[fingerprint] = entry
        self._queue.append(fingerprint)
        sweep.sources[fingerprint] = SOURCE_FRESH
        registry.counter("service.restart.resumed").inc()

    @staticmethod
    def _resolve_replayed(job_doc: dict):
        """(spec, job, error) for a journaled spec dict — a spec this
        build can no longer resolve yields a placeholder spec and the
        error string instead of raising mid-recovery."""
        raw = job_doc.get("spec")
        raw = raw if isinstance(raw, dict) else {}
        try:
            spec = JobSpec.from_dict(raw)
            return spec, spec.resolve(), None
        except ServiceError as err:
            spec = JobSpec(workload=str(raw.get("workload", "unknown")),
                           config=str(raw.get("config", "baseline")))
            return spec, None, f"journal replay: {err.message}"

    def _reconciled_replay(self, replay: JournalReplay,
                           live: list[str]) -> JournalReplay:
        """The replay rewritten to match *reconciled* in-memory state,
        so compaction journals what the service actually believes (a
        journaled ``done`` whose CAS entry vanished was re-enqueued —
        compacting the stale ``done`` record would resurrect it)."""
        out = JournalReplay()
        out.max_sweep_number = replay.max_sweep_number
        for sweep_id in live:
            rsweep = replay.sweeps.get(sweep_id)
            if rsweep is None:
                continue
            out.sweeps[sweep_id] = rsweep
            for job_doc in rsweep.jobs:
                fingerprint = job_doc.get("fingerprint")
                entry = self._done.get(fingerprint)
                if entry is None:
                    continue
                if entry.state == DONE:
                    out.job_states[fingerprint] = {
                        "state": "done", "source": entry.source}
                elif entry.state == FAILED:
                    out.job_states[fingerprint] = {
                        "state": "failed", "error": entry.error,
                        "error_code": entry.error_code}
        return out

    def _journal_locked(self, record_type: str, **fields) -> None:
        if self._journal is None:
            return
        self._journal.append(record_type, **fields)
        get_registry().counter("service.journal.records").inc()

    # ------------------------------------------------------------- submit

    def submit(self, request: SubmitRequest) -> SweepStatus:
        """Admit a sweep (all jobs or none); returns its initial status.

        Raises :class:`~repro.service.api.RequestInvalid` for unknown
        workloads/configs, :class:`~repro.service.api.Backpressure`
        when the admission queue cannot take the sweep's *new* jobs,
        and :class:`~repro.service.api.ServiceUnavailable` while the
        circuit breaker is open or the service is draining.
        """
        # Resolve outside the lock: validation is pure, and a typed
        # failure here must not cost a lock hold.
        resolved: list[tuple[JobSpec, Job, str]] = []
        for spec in request.jobs:
            job = spec.resolve()
            resolved.append((spec, job, job.fingerprint()))

        registry = get_registry()
        with self._cond:
            if self._stopping:
                raise Backpressure("service is shutting down",
                                   queue_depth=len(self._queue),
                                   queue_limit=self.queue_limit,
                                   retry_after=self._retry_after_locked())
            if self._draining:
                raise ServiceUnavailable(
                    "service is draining (graceful shutdown in "
                    "progress); resubmit after restart",
                    reason="draining",
                    retry_after=self._retry_after_locked())
            breaker_wait = self._breaker_open_locked()
            if breaker_wait is not None:
                registry.counter("service.breaker.rejected").inc()
                raise ServiceUnavailable(
                    f"circuit breaker open after "
                    f"{self._breaker_failures} consecutive worker "
                    f"crashes; cooling down",
                    reason="breaker-open",
                    retry_after=round(breaker_wait, 1),
                    consecutive_crashes=self._breaker_failures,
                    threshold=self.breaker_threshold)
            sweep_id = f"sweep-{next(self._seq):06d}"
            sweep = _Sweep(sweep_id, [])
            deadline = (mono_now() + request.deadline_seconds
                        if request.deadline_seconds is not None else None)
            # First pass: what would this sweep add to the queue?
            seen: set[str] = set()
            new_fingerprints = []
            for _spec, _job, fingerprint in resolved:
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                done = self._done.get(fingerprint)
                if (fingerprint not in self._entries
                        and (done is None or done.state == FAILED)
                        and not self._store_has(fingerprint)):
                    new_fingerprints.append(fingerprint)
            if len(self._queue) + len(new_fingerprints) > self.queue_limit:
                registry.counter("service.rejected").inc()
                depth = len(self._queue)
                raise Backpressure(
                    f"admission queue is full ({depth}/{self.queue_limit} "
                    f"queued, {len(new_fingerprints)} new jobs submitted)",
                    queue_depth=depth, queue_limit=self.queue_limit,
                    retry_after=self._retry_after_locked())

            # Second pass: mutate. All-or-nothing by construction now.
            seen.clear()
            for spec, job, fingerprint in resolved:
                sweep.fingerprints.append(fingerprint)
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                registry.counter("service.submitted_jobs").inc()
                done = self._done.get(fingerprint)
                if done is not None and done.state == DONE:
                    sweep.sources[fingerprint] = SOURCE_STORE
                    sweep.frozen[fingerprint] = self._job_view_locked(
                        sweep, done)
                    registry.counter("service.store_hits").inc()
                    continue
                if done is not None:
                    # A previously *failed* fingerprint does not pin:
                    # a new submission retries it fresh (the failed
                    # sweeps keep their frozen view of the old entry).
                    self._done.pop(fingerprint, None)
                    registry.counter("service.retried").inc()
                inflight = self._entries.get(fingerprint)
                if inflight is not None:
                    inflight.sweeps.append(sweep_id)
                    sweep.sources[fingerprint] = SOURCE_COALESCED
                    if deadline is None:
                        inflight.deadline = None
                    elif inflight.deadline is not None:
                        # Attaching may only *extend* the budget: the
                        # first submitter's deadline must not shrink.
                        inflight.deadline = max(inflight.deadline,
                                                deadline)
                    registry.counter("service.coalesced").inc()
                    continue
                stored = self._store_load(fingerprint)
                if stored is not None:
                    entry = _Entry(fingerprint, spec, job, request.backend,
                                   state=DONE, source=SOURCE_STORE,
                                   result_bytes=canonical_result_bytes(
                                       stored["result"]))
                    self._done[fingerprint] = entry
                    sweep.sources[fingerprint] = SOURCE_STORE
                    sweep.frozen[fingerprint] = self._job_view_locked(
                        sweep, entry)
                    registry.counter("service.store_hits").inc()
                    continue
                entry = _Entry(fingerprint, spec, job, request.backend,
                               deadline=deadline, sweeps=[sweep_id])
                self._entries[fingerprint] = entry
                self._queue.append(fingerprint)
                sweep.sources[fingerprint] = SOURCE_FRESH
            registry.counter("service.sweeps").inc()
            self._sweeps[sweep_id] = sweep
            self._set_depth_locked()
            status = self._status_locked(sweep_id)
            if not status.done:
                # WAL before acknowledgment: once the caller sees this
                # sweep id, a crash cannot lose the submission.
                self._journal_locked(
                    REC_ADMITTED, sweep_id=sweep_id,
                    backend=request.backend,
                    deadline_seconds=request.deadline_seconds,
                    jobs=[{"spec": spec.to_dict(),
                           "fingerprint": fingerprint}
                          for spec, _job, fingerprint in resolved],
                    sources=dict(sweep.sources))
            sweep.events.append({"record": "sweep", "schema": API_SCHEMA,
                                 "sweep_id": sweep_id,
                                 "jobs": len(sweep.fingerprints)})
            for _spec, _job, fingerprint in resolved:
                self._emit_job_locked(sweep, fingerprint)
            if status.done:
                sweep.events.append(self._end_record(status))
            self._cond.notify_all()
        return status

    # -------------------------------------------------------------- query

    def status(self, sweep_id: str) -> SweepStatus:
        with self._cond:
            if sweep_id not in self._sweeps:
                raise NotFound(f"no such sweep {sweep_id!r}")
            return self._status_locked(sweep_id)

    def result_bytes(self, fingerprint: str) -> bytes:
        """The canonical result payload for a finished fingerprint —
        from memory if this process ran it, else from the shared store."""
        with self._cond:
            entry = self._done.get(fingerprint)
            if entry is not None and entry.result_bytes is not None:
                return entry.result_bytes
        stored = self._store_load(fingerprint)
        if stored is not None:
            return canonical_result_bytes(stored["result"])
        raise NotFound(f"no result for fingerprint {fingerprint!r}")

    def events_since(self, sweep_id: str, cursor: int,
                     timeout: float = 10.0) -> tuple[list[dict], int, bool]:
        """Progress records after ``cursor`` (blocking up to
        ``timeout`` seconds for new ones); returns ``(records,
        next_cursor, sweep_done)``.  The JSONL streaming endpoint calls
        this repeatedly from an executor thread."""
        deadline = mono_now() + timeout
        with self._cond:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                raise NotFound(f"no such sweep {sweep_id!r}")
            while True:
                if len(sweep.events) > cursor:
                    records = list(sweep.events[cursor:])
                    done = (records[-1].get("record") == "sweep.end")
                    return records, len(sweep.events), done
                remaining = deadline - mono_now()
                if remaining <= 0:
                    return [], cursor, False
                self._cond.wait(remaining)

    def wait(self, sweep_id: str, timeout: float | None = None) -> SweepStatus:
        """Block until the sweep is terminal (tests and in-process use)."""
        deadline = (mono_now() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                status = self.status(sweep_id)
                if status.done:
                    return status
                remaining = (None if deadline is None
                             else deadline - mono_now())
                if remaining is not None and remaining <= 0:
                    return status
                self._cond.wait(remaining if remaining is not None else 1.0)

    # ------------------------------------------------------------- health

    def health(self) -> dict:
        with self._cond:
            running = sum(1 for e in self._entries.values()
                          if e.state == RUNNING)
            ready, reason = self._readiness_locked()
            return {
                "schema": API_SCHEMA,
                "status": "stopping" if self._stopping else
                          "draining" if self._draining else "ok",
                "live": True,
                "ready": ready,
                "ready_reason": reason,
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "running": running,
                "workers": self.workers,
                "sweeps": len(self._sweeps),
                "done": len(self._done),
                "uptime_seconds": round(epoch_now() - self._started_at, 3),
                "backend": self.ctx.backend,
                "cache_layout": self.ctx.cache_layout,
                "breaker": self._breaker_doc_locked(),
                "journal": self._journal_doc_locked(),
            }

    def liveness(self) -> dict:
        """The process is up and can answer — nothing more.  Liveness
        stays true during drain/breaker-open so orchestrators don't
        kill a service that is shedding load on purpose."""
        return {"schema": API_SCHEMA, "live": True,
                "uptime_seconds": round(epoch_now() - self._started_at, 3)}

    def readiness(self) -> dict:
        """Whether the service should receive new traffic, with queue
        depth and journal lag in the body (the satellite contract)."""
        with self._cond:
            ready, reason = self._readiness_locked()
            return {
                "schema": API_SCHEMA,
                "ready": ready,
                "reason": reason,
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "journal": self._journal_doc_locked(),
                "breaker": self._breaker_doc_locked(),
            }

    def _readiness_locked(self) -> tuple[bool, str]:
        if self._stopping:
            return False, "stopping"
        if self._draining:
            return False, "draining"
        if self._breaker_is_open_locked():
            return False, "breaker-open"
        return True, "ok"

    def _breaker_doc_locked(self) -> dict:
        open_now = self._breaker_is_open_locked()
        doc = {"open": open_now,
               "consecutive_crashes": self._breaker_failures,
               "threshold": self.breaker_threshold}
        if open_now and self._breaker_open_until is not None:
            doc["retry_after"] = round(
                max(0.0, self._breaker_open_until - mono_now()), 1)
        return doc

    def _journal_doc_locked(self) -> dict:
        if self._journal is None:
            return {"enabled": False}
        return {"enabled": True,
                "path": str(self._journal.path),
                "records": self._journal.records_written,
                # journaled-but-nonterminal jobs: what a restart right
                # now would have to reconcile.
                "lag": len(self._entries)}

    # ------------------------------------------------------------ breaker

    def _breaker_is_open_locked(self) -> bool:
        """Non-mutating view (health/readiness): open iff tripped and
        still inside the cooldown window."""
        return (self._breaker_open_until is not None
                and self._breaker_open_until - mono_now() > 0)

    def _breaker_open_locked(self) -> float | None:
        """Admission-path view: remaining cooldown if open, else None.
        A lapsed cooldown half-opens the breaker — traffic flows, but
        the crash counter sits one below threshold, so the next crash
        re-trips immediately while one success fully closes it."""
        if self._breaker_open_until is None:
            return None
        remaining = self._breaker_open_until - mono_now()
        if remaining > 0:
            return remaining
        self._breaker_open_until = None
        self._breaker_failures = max(0, self.breaker_threshold - 1)
        return None

    def _breaker_note_crash_locked(self) -> None:
        self._breaker_failures += 1
        if (self._breaker_open_until is None
                and self._breaker_failures >= self.breaker_threshold):
            self._breaker_open_until = mono_now() + self.breaker_cooldown
            get_registry().counter("service.breaker.opened").inc()

    def _breaker_note_ok_locked(self) -> None:
        self._breaker_failures = 0
        self._breaker_open_until = None

    # ------------------------------------------------------------ workers

    def _worker_main(self, index: int) -> None:
        try:
            self._worker_loop()
        except Exception:  # noqa: BLE001 — last-resort thread guard
            get_registry().counter("service.worker.deaths").inc()
            with self._cond:
                if not (self._stopping or self._draining):
                    self._spawn_worker(index)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._quiescing_locked():
                    self._cond.wait()
                if self._quiescing_locked() and not self._queue:
                    return
                fingerprint = self._queue.popleft()
                entry = self._entries[fingerprint]
                entry.state = RUNNING
                self._journal_locked(REC_DISPATCHED,
                                     fingerprint=fingerprint)
                self._set_depth_locked()
                self._emit_entry_locked(entry)
                self._cond.notify_all()
            try:
                self._run_entry(entry)
            except Exception as err:  # noqa: BLE001 — fault isolation:
                # a crash anywhere in the runner fails *this job* typed
                # and the thread lives on to drain the queue.
                get_registry().counter("service.worker.crashes").inc()
                with self._cond:
                    self._breaker_note_crash_locked()
                    if entry.fingerprint in self._entries:
                        self._finish_locked(
                            entry, FAILED,
                            error=f"worker thread crashed: "
                                  f"{type(err).__name__}: {err}",
                            error_code=ERR_WORKER_CRASH)
                    self._cond.notify_all()

    def _quiescing_locked(self) -> bool:
        return self._stopping or self._draining

    def _run_entry(self, entry: _Entry) -> None:
        """Execute one admitted job through the engine (no lock held)."""
        registry = get_registry()
        ctx = self._run_ctx(entry.backend)
        if entry.deadline is not None:
            # Deadline propagation: what's left of the client's budget
            # becomes this job's engine timeout; a spent budget fails
            # typed without running at all.
            remaining = entry.deadline - mono_now()
            if remaining <= 0:
                registry.counter("service.deadline.expired").inc()
                registry.counter("service.failed").inc()
                with self._cond:
                    self._finish_locked(
                        entry, FAILED,
                        error=f"deadline exceeded "
                              f"{-remaining:.1f}s before dispatch",
                        error_code=ERR_DEADLINE)
                    self._cond.notify_all()
                return
            ctx = replace(ctx, timeout=(remaining if ctx.timeout is None
                                        else min(ctx.timeout, remaining)))
        self._before_execute(entry)
        t0 = mono_now()
        crashed = False
        try:
            engine = RunEngine(ctx)
            results, report = engine.run_jobs_report([entry.job])
            outcome = report.outcome_of(entry.job)
            result = results.get(entry.job.key)
        except Exception as err:  # noqa: BLE001 — service boundary
            result, outcome = None, None
            crashed = True
            error = f"{type(err).__name__}: {err}"
        else:
            error = (outcome.error or "job failed"
                     ) if result is None else None
        wall = mono_now() - t0
        payload = None
        source = SOURCE_FRESH
        if result is not None:
            payload = canonical_result_bytes(result_to_dict(result))
            if outcome is not None and outcome.attempts == 0:
                # The engine served it from a cache tier without
                # simulating (e.g. another process warmed the store).
                source = SOURCE_STORE
            registry.histogram("service.job_seconds").observe(wall)
        with self._cond:
            self._avg_wall = 0.7 * self._avg_wall + 0.3 * wall
            if payload is not None:
                entry.result_bytes = payload
                entry.source = source
                registry.counter("service.fresh"
                                 if source == SOURCE_FRESH
                                 else "service.store_hits").inc()
                self._finish_locked(entry, DONE)
                self._breaker_note_ok_locked()
            else:
                registry.counter("service.failed").inc()
                self._finish_locked(entry, FAILED, error=error,
                                    error_code=(ERR_WORKER_CRASH if crashed
                                                else ERR_JOB_FAILED))
                # An engine-level crash is infra; a job that failed
                # gracefully inside the engine is that job's problem
                # and must not trip the breaker.
                if crashed:
                    self._breaker_note_crash_locked()
                else:
                    self._breaker_note_ok_locked()
            self._cond.notify_all()

    def _run_ctx(self, backend: str) -> RunContext:
        if backend == self.ctx.backend:
            return self.ctx
        return replace(self.ctx, backend=backend)

    def _before_execute(self, entry: _Entry) -> None:
        """Hook between the RUNNING transition and the engine call.

        The coalescing tests override this to hold a job in flight
        until a second identical sweep has attached — determinism the
        wall clock cannot provide.  The chaos harness overrides it to
        crash the worker thread mid-sweep."""

    # ---------------------------------------------------- state plumbing

    def _finish_locked(self, entry: _Entry, state: str,
                       error: str | None = None,
                       error_code: str | None = None) -> None:
        entry.state = state
        entry.error = error
        entry.error_code = error_code
        self._entries.pop(entry.fingerprint, None)
        self._done[entry.fingerprint] = entry
        if state == DONE:
            self._journal_locked(REC_DONE, fingerprint=entry.fingerprint,
                                 source=entry.source)
        else:
            self._journal_locked(REC_FAILED,
                                 fingerprint=entry.fingerprint,
                                 error=error, error_code=error_code)
        self._emit_entry_locked(entry)
        # Attached sweeps freeze their view of this job (a later retry
        # of a failed fingerprint must not rewrite their history), and
        # those that just became terminal get their end record.
        for sweep_id in entry.sweeps:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                continue
            sweep.frozen[entry.fingerprint] = self._job_view_locked(
                sweep, entry)
            status = self._status_locked(sweep_id)
            if status.done:
                sweep.events.append(self._end_record(status))
                self._journal_locked(REC_SWEEP_END, sweep_id=sweep_id,
                                     ok=status.ok)

    def _job_view_locked(self, sweep: _Sweep, entry: _Entry) -> JobStatus:
        source = entry.source or sweep.sources.get(entry.fingerprint)
        if (entry.state == DONE
                and sweep.sources.get(entry.fingerprint) != SOURCE_FRESH):
            # An attached/late sweep reports its own view: it was
            # coalesced or store-served even though the entry itself
            # ran fresh for the admitting sweep.
            source = sweep.sources.get(entry.fingerprint, source)
        return JobStatus(spec=entry.spec, fingerprint=entry.fingerprint,
                         state=entry.state, source=source,
                         error=entry.error, error_code=entry.error_code)

    def _status_locked(self, sweep_id: str) -> SweepStatus:
        sweep = self._sweeps[sweep_id]
        statuses = []
        for fingerprint in sweep.fingerprints:
            frozen = sweep.frozen.get(fingerprint)
            if frozen is not None:
                statuses.append(frozen)
                continue
            entry = (self._entries.get(fingerprint)
                     or self._done.get(fingerprint))
            statuses.append(self._job_view_locked(sweep, entry))
        return SweepStatus(sweep_id=sweep_id, statuses=tuple(statuses))

    def _emit_job_locked(self, sweep: _Sweep, fingerprint: str) -> None:
        entry = (self._entries.get(fingerprint)
                 or self._done.get(fingerprint))
        sweep.events.append(self._job_record(entry, sweep))

    def _emit_entry_locked(self, entry: _Entry) -> None:
        for sweep_id in entry.sweeps:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                continue
            sweep.events.append(self._job_record(entry, sweep))
            if entry.state == DONE and self.ctx.wants_obs:
                for record in self._manifest_records(entry):
                    sweep.events.append(record)

    def _job_record(self, entry: _Entry, sweep: _Sweep) -> dict:
        view = self._job_view_locked(sweep, entry)
        return {"record": "job", "fingerprint": entry.fingerprint,
                "workload": entry.spec.workload,
                "scale": entry.spec.scale,
                "state": entry.state, "source": view.source,
                "error": entry.error, "error_code": entry.error_code}

    def _end_record(self, status: SweepStatus) -> dict:
        return {"record": "sweep.end", "sweep_id": status.sweep_id,
                "ok": status.ok,
                "jobs": len(status.statuses)}

    def _manifest_records(self, entry: _Entry) -> list[dict]:
        """The finished job's obs manifest, flattened to the JSONL wire
        records (the PR-1 format) and tagged with the fingerprint."""
        assert self.ctx.obs_dir is not None
        stem = entry.job.stem() if entry.job is not None else None
        if stem is None:
            return []
        path = self.ctx.obs_dir / f"{stem}.json"
        if not path.exists():
            return []
        try:
            manifest = read_manifest(path)
        except (OSError, ValueError):
            return []
        return [{**record, "fingerprint": entry.fingerprint}
                for record in manifest_records(manifest)]

    def _retry_after_locked(self) -> float:
        estimate = (len(self._queue) + 1) * self._avg_wall / self.workers
        return round(min(max(estimate, 1.0), 600.0), 1)

    def _set_depth_locked(self) -> None:
        get_registry().gauge("service.queue_depth").set(len(self._queue))

    def _store_has(self, fingerprint: str) -> bool:
        entry = self._done.get(fingerprint)
        if entry is not None and entry.state == DONE:
            return True
        return self._store_load(fingerprint) is not None

    def _store_load(self, fingerprint: str) -> dict | None:
        if self._store is None:
            return None
        if not self.ctx.use_cache or self.ctx.refresh:
            return None
        return self._store.load_by_fingerprint(fingerprint)


def shard_of_fingerprint(fingerprint: str) -> str:
    """Convenience re-export: which CAS shard a fingerprint lands in."""
    return shard_key(fingerprint)
