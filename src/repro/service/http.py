"""Minimal asyncio HTTP/1.1 front end over :class:`ExperimentService`.

Stdlib only (``asyncio.start_server`` + hand-rolled request parsing) —
the repo takes no new dependencies to become a service.  One connection
carries one request (``Connection: close``), which keeps the parser
tiny and makes the JSONL progress stream trivially consumable: read
lines until EOF.

Routes (all JSON, all shapes defined in :mod:`repro.service.api`):

* ``POST /v1/sweeps``                — submit a sweep; 200 with the
  initial :class:`~repro.service.api.SweepStatus`, 400 on validation,
  429 (+ ``Retry-After`` header) on backpressure;
* ``GET  /v1/sweeps/<id>``           — current sweep status;
* ``GET  /v1/sweeps/<id>/events``    — JSONL progress stream (job
  state transitions in the obs-manifest record format; closes after
  the ``sweep.end`` record);
* ``GET  /v1/results/<fingerprint>`` — the canonical result bytes from
  the shared store (byte-identical to the CLI path);
* ``GET  /v1/healthz``               — queue depth & service vitals
  (includes ``live``/``ready`` plus breaker and journal state);
* ``GET  /v1/livez``                 — liveness only (200 while the
  process can answer, even during drain);
* ``GET  /v1/readyz``                — readiness: 200 when taking
  traffic, 503 (with queue depth and journal lag in the body) while
  draining or while the circuit breaker is open;
* ``GET  /v1/metrics``               — the process metrics snapshot.

A request body over :data:`MAX_BODY_BYTES` gets the typed 413
:class:`~repro.service.api.PayloadTooLarge` JSON body — never an
abruptly closed connection.

Every failure a handler can produce is a typed
:class:`~repro.service.api.ServiceError` rendered by one code path, so
the HTTP layer cannot invent an untyped error shape.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math

from repro.perf.metrics import get_registry
from repro.service.api import (
    NotFound,
    PayloadTooLarge,
    RequestInvalid,
    ServiceError,
    SubmitRequest,
    error_to_dict,
)
from repro.service.service import ExperimentService

#: Largest accepted request body (a MAX_JOBS_PER_SWEEP sweep is ~100 KB).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How long one events_since poll blocks service-side before the
#: streaming loop re-checks the connection.
STREAM_POLL_SECONDS = 5.0

#: How long a progress-stream write may sit in a stalled client's
#: socket before the connection is evicted (one tenant's dead reader
#: must not pin a coroutine forever).
STREAM_WRITE_TIMEOUT = 30.0

logger = logging.getLogger(__name__)


def retry_after_header(seconds: float) -> str:
    """Render a retry-after estimate as the ``Retry-After`` header.

    Ceiling, clamped to >= 1: the header must never promise a retry
    *sooner* than the estimate (0 or 0.4 seconds both render as "1",
    1.2 as "2"), and RFC 7231 only allows whole seconds.
    """
    return str(max(1, math.ceil(seconds)))


def _response_bytes(status: int, body: bytes, content_type: str,
                    extra_headers: dict[str, str] | None = None) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large",
              429: "Too Many Requests",
              500: "Internal Server Error",
              503: "Service Unavailable"}.get(status, "OK")
    headers = [f"HTTP/1.1 {status} {reason}",
               f"Content-Type: {content_type}",
               f"Content-Length: {len(body)}",
               "Connection: close"]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, document: dict,
                   extra_headers: dict[str, str] | None = None) -> bytes:
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return _response_bytes(status, body, "application/json",
                           extra_headers)


def _error_response(err: ServiceError) -> bytes:
    extra = None
    retry_after = getattr(err, "retry_after", None)
    if retry_after is not None:
        # The standard header alongside the typed JSON body (429 and
        # 503 both carry it), so plain HTTP clients back off correctly.
        extra = {"Retry-After": retry_after_header(retry_after)}
    return _json_response(err.http_status, error_to_dict(err), extra)


class HttpFrontend:
    """Bind an :class:`ExperimentService` to a TCP port."""

    def __init__(self, service: ExperimentService,
                 host: str = "127.0.0.1", port: int = 8731) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Start listening; returns the bound (host, port) — port 0 in
        the constructor picks a free one."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # --------------------------------------------------------- connection

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                        # client went away mid-exchange
        except Exception:  # noqa: BLE001 — connection boundary
            logger.exception("unhandled error serving a connection")
            try:
                writer.write(_error_response(
                    ServiceError("internal error")))
            except ConnectionError:
                pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (ConnectionError, OSError):
                pass
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            writer.write(_error_response(
                RequestInvalid(f"malformed request line {request_line!r}")))
            return
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            writer.write(_error_response(RequestInvalid(
                "content-length is not an integer")))
            return
        if length > MAX_BODY_BYTES:
            # Typed 413 with the limit in the body — the client sees a
            # JSON error it can rehydrate, not a dropped connection.
            writer.write(_error_response(PayloadTooLarge(
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit; split the sweep",
                length=length, limit=MAX_BODY_BYTES)))
            return
        if length:
            body = await reader.readexactly(length)

        try:
            await self._route(method, target, body, writer)
        except ServiceError as err:
            writer.write(_error_response(err))
        await writer.drain()

    # ------------------------------------------------------------- routes

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = target.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]
        loop = asyncio.get_running_loop()

        if method == "POST" and segments == ["v1", "sweeps"]:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as err:
                raise RequestInvalid(f"body is not valid JSON: {err}")
            request = SubmitRequest.from_dict(payload)
            # submit() validates against the registries and may block
            # briefly on the admission lock — off the event loop.
            status = await loop.run_in_executor(
                None, self.service.submit, request)
            writer.write(_json_response(200, status.to_dict()))
            return

        if method == "GET" and len(segments) == 3 \
                and segments[:2] == ["v1", "sweeps"]:
            status = await loop.run_in_executor(
                None, self.service.status, segments[2])
            writer.write(_json_response(200, status.to_dict()))
            return

        if method == "GET" and len(segments) == 4 \
                and segments[:2] == ["v1", "sweeps"] \
                and segments[3] == "events":
            await self._stream_events(segments[2], writer)
            return

        if method == "GET" and len(segments) == 3 \
                and segments[:2] == ["v1", "results"]:
            payload = await loop.run_in_executor(
                None, self.service.result_bytes, segments[2])
            writer.write(_response_bytes(200, payload, "application/json"))
            return

        if method == "GET" and segments == ["v1", "healthz"]:
            writer.write(_json_response(200, self.service.health()))
            return

        if method == "GET" and segments == ["v1", "livez"]:
            writer.write(_json_response(200, self.service.liveness()))
            return

        if method == "GET" and segments == ["v1", "readyz"]:
            document = self.service.readiness()
            writer.write(_json_response(
                200 if document["ready"] else 503, document))
            return

        if method == "GET" and segments == ["v1", "metrics"]:
            writer.write(_json_response(200, get_registry().snapshot()))
            return

        raise NotFound(f"no route for {method} {path}")

    async def _stream_events(self, sweep_id: str,
                             writer: asyncio.StreamWriter) -> None:
        """JSONL progress stream: headers first, then one record per
        line as they happen, closing after ``sweep.end``."""
        loop = asyncio.get_running_loop()
        # Probe first so a bad sweep id is a typed 404, not a
        # half-written stream.
        records, cursor, done = await loop.run_in_executor(
            None, self.service.events_since, sweep_id, 0, 0.0)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/jsonl\r\n"
                     b"Connection: close\r\n\r\n")
        while True:
            for record in records:
                writer.write((json.dumps(record, sort_keys=True)
                              + "\n").encode("utf-8"))
            try:
                # A stalled client (never reads, socket buffer full)
                # must not pin this coroutine forever: bound the flush
                # and evict the connection on timeout.
                await asyncio.wait_for(writer.drain(),
                                       STREAM_WRITE_TIMEOUT)
            except asyncio.TimeoutError:
                get_registry().counter("service.stream.stalled").inc()
                return
            if done:
                return
            records, cursor, done = await loop.run_in_executor(
                None, self.service.events_since, sweep_id, cursor,
                STREAM_POLL_SECONDS)
