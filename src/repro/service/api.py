"""The experiment service's typed public submission API.

One set of frozen request/response dataclasses, shared **verbatim** by
the asyncio HTTP layer (:mod:`repro.service.http`), the ``repro-serve``
CLI (:mod:`repro.service.server`), and the blocking client
(:mod:`repro.service.client`): the CLI and the service are two skins
over this module.  Everything on the wire is the ``to_dict`` form of a
type defined here; everything read off the wire comes back through the
matching ``from_dict``, which *validates* — malformed input surfaces as
a typed :class:`RequestInvalid`, never a stack trace.

Schema: :data:`API_SCHEMA` stamps every document.  A request carrying a
different major schema is rejected up front; responses carry the
server's schema so clients can detect drift.

Failure surfaces are typed too: every error the service can hand a
client is a :class:`ServiceError` subclass carrying a stable ``code``
and an HTTP status, round-trippable through :func:`error_to_dict` /
:func:`error_from_dict` — the client raises the *same* exception type
the server did.  :class:`Backpressure` is the 429-equivalent: it names
the queue depth, the queue limit, and a retry-after estimate, so heavy
traffic degrades predictably instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MachineConfig, named_configs
from repro.exec.jobs import Job

#: Wire schema for every request/response document (bump on breaking
#: layout changes; the major part gates request admission).
API_SCHEMA = "repro-service/1"

#: Backends a submission may request.  ``"both"`` is deliberately
#: absent: the cross-check mode exists to *prove* equivalence (it never
#: recalls from cache), which is a CI concern, not a serving mode.
SUBMIT_BACKENDS = ("reference", "fast")

#: Job states a :class:`JobStatus` can report.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)

#: Where a finished job's result came from, service-side.
SOURCE_FRESH = "fresh"          # this submission triggered a simulation
SOURCE_COALESCED = "coalesced"  # attached to an identical in-flight job
SOURCE_STORE = "store"          # served from the shared CAS / memo

#: Hard ceiling on jobs per submission (a sweep bigger than this is
#: split client-side; protects the admission path from one giant POST).
MAX_JOBS_PER_SWEEP = 1024

#: Hard ceiling on a client-supplied sweep deadline (one day: anything
#: longer is indistinguishable from "no deadline" for this service).
MAX_DEADLINE_SECONDS = 86_400.0

#: Stable per-job error codes (the ``error_code`` field of a failed
#: :class:`JobStatus`).  These classify *why* a job failed so clients
#: can branch without parsing prose:
ERR_JOB_FAILED = "job-failed"            # the simulation itself failed
ERR_WORKER_CRASH = "worker-crash"        # infra crash in the runner
ERR_DEADLINE = "deadline-exceeded"       # budget spent before the run
ERR_SHUTDOWN = "service-shutdown"        # hard stop before the run
ERR_INVALID_ON_RESTART = "invalid-on-restart"  # journal replayed a spec
                                               # this build can't resolve
JOB_ERROR_CODES = (ERR_JOB_FAILED, ERR_WORKER_CRASH, ERR_DEADLINE,
                   ERR_SHUTDOWN, ERR_INVALID_ON_RESTART)


# ----------------------------------------------------------- typed errors

class ServiceError(Exception):
    """Base of every typed error the service surfaces to clients."""

    code = "service-error"
    http_status = 500

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.message = message
        self.details = details


class RequestInvalid(ServiceError):
    """The submission failed validation (unknown workload/config/...)."""

    code = "invalid-request"
    http_status = 400


class NotFound(ServiceError):
    """No such sweep / result fingerprint."""

    code = "not-found"
    http_status = 404


class PayloadTooLarge(RequestInvalid):
    """The request body exceeds the service's byte cap.

    A :class:`RequestInvalid` subclass (``isinstance`` checks written
    against the 400 family keep working) with its own stable code and
    the HTTP-correct 413 status, so an oversized POST gets a typed
    JSON body instead of an abruptly closed connection.
    """

    code = "payload-too-large"
    http_status = 413


class ServiceUnavailable(ServiceError):
    """The service cannot take work right now: the typed 503.

    Raised while the circuit breaker is open (too many consecutive
    worker-thread crashes) and during graceful drain.  ``reason`` is a
    stable machine token (``"breaker-open"`` / ``"draining"``) and
    ``retry_after`` the seconds a client should wait before retrying.
    """

    code = "unavailable"
    http_status = 503

    def __init__(self, message: str, *, reason: str = "unavailable",
                 retry_after: float = 1.0, **details) -> None:
        super().__init__(message, reason=reason,
                         retry_after=retry_after, **details)
        self.reason = reason
        self.retry_after = retry_after


class Backpressure(ServiceError):
    """The admission queue is full: the typed 429-equivalent.

    Carries the observed ``queue_depth``, the configured
    ``queue_limit``, and ``retry_after`` (seconds, an estimate from the
    service's recent per-job wall clock) — enough for a client to back
    off predictably instead of retry-hammering.
    """

    code = "backpressure"
    http_status = 429

    def __init__(self, message: str, *, queue_depth: int,
                 queue_limit: int, retry_after: float) -> None:
        super().__init__(message, queue_depth=queue_depth,
                         queue_limit=queue_limit, retry_after=retry_after)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after = retry_after


#: code -> class, for client-side rehydration.
_ERROR_TYPES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (ServiceError, RequestInvalid, NotFound, Backpressure,
                PayloadTooLarge, ServiceUnavailable)
}


def error_to_dict(err: ServiceError) -> dict:
    return {"schema": API_SCHEMA, "error": err.code,
            "message": err.message, "details": err.details}


def error_from_dict(data: dict) -> ServiceError:
    """Rebuild the typed error a server serialized (unknown codes
    degrade to the :class:`ServiceError` base, never a KeyError)."""
    code = data.get("error", "service-error")
    message = str(data.get("message", code))
    details = data.get("details") or {}
    cls = _ERROR_TYPES.get(code, ServiceError)
    if cls is Backpressure:
        return Backpressure(
            message,
            queue_depth=int(details.get("queue_depth", 0)),
            queue_limit=int(details.get("queue_limit", 0)),
            retry_after=float(details.get("retry_after", 1.0)))
    if cls is ServiceUnavailable:
        extra = {k: v for k, v in details.items()
                 if k not in ("reason", "retry_after")}
        return ServiceUnavailable(
            message,
            reason=str(details.get("reason", "unavailable")),
            retry_after=float(details.get("retry_after", 1.0)),
            **extra)
    err = cls(message, **details)
    return err


# ------------------------------------------------------------- job specs

def _require(cond: bool, message: str, **details) -> None:
    if not cond:
        raise RequestInvalid(message, **details)


@dataclass(frozen=True)
class JobSpec:
    """One requested simulation point: ``(workload, config, scale)``.

    ``config`` is a *named* configuration from
    :func:`repro.core.config.named_configs` — names, not raw field
    bags, are the wire contract, so a fingerprint computed server-side
    is bit-identical to one computed by any CLI using the same name.
    """

    workload: str
    config: str = "baseline"
    scale: int = 1

    def to_dict(self) -> dict:
        return {"workload": self.workload, "config": self.config,
                "scale": self.scale}

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        _require(isinstance(data, dict), "job spec must be an object")
        workload = data.get("workload")
        _require(isinstance(workload, str) and bool(workload),
                 "job spec needs a workload name")
        config = data.get("config", "baseline")
        _require(isinstance(config, str), "config must be a name string")
        scale = data.get("scale", 1)
        _require(isinstance(scale, int) and not isinstance(scale, bool)
                 and scale >= 1,
                 f"scale must be a positive integer, got {scale!r}")
        return cls(workload=workload, config=config, scale=scale)

    def resolve(self) -> Job:
        """The engine :class:`~repro.exec.jobs.Job` this spec names;
        raises :class:`RequestInvalid` on unknown workload/config."""
        from repro.workloads.registry import all_workloads
        known = {w.name for w in all_workloads()}
        _require(self.workload in known,
                 f"unknown workload {self.workload!r}",
                 known=sorted(known))
        configs = named_configs()
        _require(self.config in configs,
                 f"unknown config {self.config!r}",
                 known=sorted(configs))
        return Job(self.workload, configs[self.config], self.scale)

    def fingerprint(self) -> str:
        return self.resolve().fingerprint()


def resolve_config(name: str) -> MachineConfig:
    """Named-config lookup with the API's typed failure."""
    configs = named_configs()
    _require(name in configs, f"unknown config {name!r}",
             known=sorted(configs))
    return configs[name]


# ------------------------------------------------------- request/response

@dataclass(frozen=True)
class SubmitRequest:
    """A sweep submission: a batch of job specs plus execution hints.

    ``deadline_seconds`` is the client's total budget for the sweep:
    the service arms a monotonic deadline at admission and decrements
    the remaining budget into each job's engine timeout at dispatch; a
    job whose budget is spent before it starts fails typed with
    :data:`ERR_DEADLINE` instead of running anyway.
    """

    jobs: tuple[JobSpec, ...]
    backend: str = "reference"
    deadline_seconds: float | None = None
    schema: str = API_SCHEMA

    def to_dict(self) -> dict:
        doc = {"schema": self.schema, "backend": self.backend,
               "jobs": [spec.to_dict() for spec in self.jobs]}
        if self.deadline_seconds is not None:
            doc["deadline_seconds"] = self.deadline_seconds
        return doc

    @classmethod
    def from_dict(cls, data: object) -> "SubmitRequest":
        _require(isinstance(data, dict), "submission must be an object")
        schema = data.get("schema")
        _require(schema == API_SCHEMA,
                 f"unsupported schema {schema!r} "
                 f"(this service speaks {API_SCHEMA})")
        backend = data.get("backend", "reference")
        _require(backend in SUBMIT_BACKENDS,
                 f"backend must be one of {SUBMIT_BACKENDS}, "
                 f"got {backend!r}")
        deadline = data.get("deadline_seconds")
        if deadline is not None:
            _require(isinstance(deadline, (int, float))
                     and not isinstance(deadline, bool)
                     and 0 < deadline <= MAX_DEADLINE_SECONDS,
                     f"deadline_seconds must be in (0, "
                     f"{MAX_DEADLINE_SECONDS:.0f}], got {deadline!r}")
            deadline = float(deadline)
        raw_jobs = data.get("jobs")
        _require(isinstance(raw_jobs, list) and len(raw_jobs) >= 1,
                 "submission needs a non-empty jobs list")
        _require(len(raw_jobs) <= MAX_JOBS_PER_SWEEP,
                 f"sweep exceeds {MAX_JOBS_PER_SWEEP} jobs "
                 f"({len(raw_jobs)} submitted); split it client-side",
                 submitted=len(raw_jobs), limit=MAX_JOBS_PER_SWEEP)
        return cls(jobs=tuple(JobSpec.from_dict(j) for j in raw_jobs),
                   backend=backend, deadline_seconds=deadline,
                   schema=API_SCHEMA)


@dataclass(frozen=True)
class JobStatus:
    """One job's service-side state, as reported to clients."""

    spec: JobSpec
    fingerprint: str
    state: str = QUEUED
    source: str | None = None       # fresh | coalesced | store (terminal)
    error: str | None = None        # set when state == failed
    error_code: str | None = None   # stable code from JOB_ERROR_CODES

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "fingerprint": self.fingerprint, "state": self.state,
                "source": self.source, "error": self.error,
                "error_code": self.error_code}

    @classmethod
    def from_dict(cls, data: object) -> "JobStatus":
        _require(isinstance(data, dict), "job status must be an object")
        state = data.get("state")
        _require(state in JOB_STATES, f"unknown job state {state!r}")
        fingerprint = data.get("fingerprint")
        _require(isinstance(fingerprint, str) and bool(fingerprint),
                 "job status needs a fingerprint")
        return cls(spec=JobSpec.from_dict(data.get("spec")),
                   fingerprint=fingerprint, state=state,
                   source=data.get("source"), error=data.get("error"),
                   error_code=data.get("error_code"))

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)


@dataclass(frozen=True)
class SweepStatus:
    """The whole sweep's state: id, per-job statuses, rollup flags."""

    sweep_id: str
    statuses: tuple[JobStatus, ...] = field(default_factory=tuple)
    schema: str = API_SCHEMA

    @property
    def done(self) -> bool:
        return all(s.terminal for s in self.statuses)

    @property
    def ok(self) -> bool:
        return all(s.state == DONE for s in self.statuses)

    def to_dict(self) -> dict:
        return {"schema": self.schema, "sweep_id": self.sweep_id,
                "done": self.done, "ok": self.ok,
                "jobs": [s.to_dict() for s in self.statuses]}

    @classmethod
    def from_dict(cls, data: object) -> "SweepStatus":
        _require(isinstance(data, dict), "sweep status must be an object")
        sweep_id = data.get("sweep_id")
        _require(isinstance(sweep_id, str) and bool(sweep_id),
                 "sweep status needs a sweep_id")
        raw = data.get("jobs")
        _require(isinstance(raw, list), "sweep status needs a jobs list")
        return cls(sweep_id=sweep_id,
                   statuses=tuple(JobStatus.from_dict(j) for j in raw),
                   schema=API_SCHEMA)


#: A submission acknowledgment is the sweep's initial status — one
#: type, not two that drift.
SubmitResponse = SweepStatus
