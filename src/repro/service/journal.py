"""Durable sweep journal: the service's crash-safety write-ahead log.

:class:`SweepJournal` is an append-only, fsync'd, schema-versioned
JSONL file recording every state transition the service would need to
reconstruct after ``kill -9``: sweep admission (with the full resolved
job specs), per-job dispatch, terminal outcomes, parked work (drain),
and sweep completion.  On startup the service replays the journal
(:func:`read_journal`), reconciles the replayed state against the
sharded CAS — a fingerprint whose result already landed is served from
the store, never re-simulated — and re-enqueues only the genuinely
lost jobs.

Integrity is per record, not per file: every line embeds a sha256
``digest`` over its own canonical JSON (the same construction the
result cache uses for entries), so a flipped bit *inside* a record is
detected and the record skipped, instead of being replayed as
plausible-but-wrong state.  A half-written final line — the expected
artifact of a crash mid-``write`` — is a **torn tail**: counted,
reported, and ignored, because the write protocol (append + flush +
fsync per record) guarantees everything before it is intact.

The journal is compacted on startup (:meth:`SweepJournal.compact`):
after replay, only still-live sweeps (and the terminal outcomes of
their already-finished jobs) are rewritten — atomically, via
write-to-temp + ``os.replace`` — so the file stays bounded by the
amount of in-flight work, not by service uptime.  Terminal sweeps are
dropped: their results remain addressable by fingerprint in the CAS,
and their ``sweep.end`` was already streamed to every subscriber.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.perf.clock import epoch_now

#: Journal schema (bump on breaking record-layout changes; replay
#: refuses records stamped with a different major schema).
JOURNAL_SCHEMA = "repro-journal/1"

#: File name of the journal inside its directory.
JOURNAL_NAME = "journal.jsonl"

#: Record types a journal line may carry.
REC_START = "service.start"
REC_ADMITTED = "sweep.admitted"
REC_DISPATCHED = "job.dispatched"
REC_DONE = "job.done"
REC_FAILED = "job.failed"
REC_PARKED = "job.parked"
REC_SWEEP_END = "sweep.end"
REC_DRAIN = "service.drain"

RECORD_TYPES = (REC_START, REC_ADMITTED, REC_DISPATCHED, REC_DONE,
                REC_FAILED, REC_PARKED, REC_SWEEP_END, REC_DRAIN)

_SWEEP_NUMBER_RE = re.compile(r"^sweep-(\d+)$")


def record_digest(record: dict) -> str:
    """sha256 over the canonical JSON of a record, minus the digest
    field itself (identical construction to the cache entry digest)."""
    body = {k: v for k, v in record.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ReplayedSweep:
    """One admitted sweep reconstructed from the journal."""

    sweep_id: str
    backend: str = "reference"
    deadline_seconds: float | None = None
    #: ordered (spec dict, fingerprint) pairs, duplicates preserved —
    #: exactly what the submission carried.
    jobs: list[dict] = field(default_factory=list)
    #: fingerprint -> admission-time source view (fresh/coalesced/store).
    sources: dict[str, str] = field(default_factory=dict)


@dataclass
class JournalReplay:
    """Everything :func:`read_journal` could recover from one file."""

    #: sweep_id -> sweep, in admission order (dicts preserve order).
    sweeps: dict[str, ReplayedSweep] = field(default_factory=dict)
    #: fingerprint -> last journaled job state: one of
    #: ``running | done | failed | parked`` plus its detail fields.
    job_states: dict[str, dict] = field(default_factory=dict)
    #: records successfully replayed.
    records: int = 0
    #: mid-file records rejected by digest/parse (corruption, counted
    #: and skipped — never replayed as state).
    bad_records: int = 0
    #: the final line was half-written (the normal kill -9 artifact).
    torn_tail: bool = False
    #: highest numeric sweep id seen (the reborn service numbers past it).
    max_sweep_number: int = 0

    @property
    def ok(self) -> bool:
        return self.bad_records == 0


def _apply(replay: JournalReplay, record: dict) -> None:
    kind = record.get("record")
    if kind == REC_ADMITTED:
        sweep_id = record["sweep_id"]
        replay.sweeps[sweep_id] = ReplayedSweep(
            sweep_id=sweep_id,
            backend=record.get("backend", "reference"),
            deadline_seconds=record.get("deadline_seconds"),
            jobs=list(record.get("jobs", ())),
            sources=dict(record.get("sources", {})))
        match = _SWEEP_NUMBER_RE.match(sweep_id)
        if match:
            replay.max_sweep_number = max(replay.max_sweep_number,
                                          int(match.group(1)))
    elif kind == REC_DISPATCHED:
        replay.job_states[record["fingerprint"]] = {"state": "running"}
    elif kind == REC_DONE:
        replay.job_states[record["fingerprint"]] = {
            "state": "done", "source": record.get("source")}
    elif kind == REC_FAILED:
        replay.job_states[record["fingerprint"]] = {
            "state": "failed", "error": record.get("error"),
            "error_code": record.get("error_code")}
    elif kind == REC_PARKED:
        replay.job_states[record["fingerprint"]] = {"state": "parked"}
    # REC_START / REC_SWEEP_END / REC_DRAIN carry no replayable state:
    # sweep terminality is recomputed from job states + the CAS.


def read_journal(path: str | Path) -> JournalReplay:
    """Replay one journal file into a :class:`JournalReplay`.

    Never raises on damage: a half-written final line is a torn tail
    (ignored, flagged); any other unparseable or digest-mismatched
    line is counted in ``bad_records`` and skipped.  A missing file
    replays as empty.
    """
    path = Path(path)
    replay = JournalReplay()
    try:
        raw = path.read_bytes()
    except OSError:
        return replay
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else there is a torn tail.
    if lines and lines[-1] == b"":
        lines.pop()
    last = len(lines) - 1
    for index, line in enumerate(lines):
        record = _verify_line(line)
        if record is None:
            if index == last:
                replay.torn_tail = True
            else:
                replay.bad_records += 1
            continue
        replay.records += 1
        _apply(replay, record)
    return replay


def _verify_line(line: bytes) -> dict | None:
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    if record.get("schema") != JOURNAL_SCHEMA:
        return None
    if record.get("digest") != record_digest(record):
        return None
    return record


class SweepJournal:
    """Append-only fsync'd writer over one journal file.

    ``sync=False`` drops the per-record fsync (tests that only care
    about record shape); the service always runs with ``sync=True`` —
    a record the caller saw :meth:`append` return is on disk.
    """

    def __init__(self, path: str | Path, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")

    def append(self, record_type: str, **fields) -> dict:
        """Write one record (schema + timestamp + digest added here);
        returns the full record after it is durably on disk."""
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type "
                             f"{record_type!r}")
        record = {"schema": JOURNAL_SCHEMA, "record": record_type,
                  "ts": round(epoch_now(), 6), **fields}
        record["digest"] = record_digest(record)
        line = (json.dumps(record, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")
        self._fh.write(line)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.records_written += 1
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    # ------------------------------------------------------------ compact

    @classmethod
    def compact(cls, path: str | Path, replay: JournalReplay,
                live_sweep_ids: list[str], sync: bool = True,
                ) -> "SweepJournal":
        """Rewrite the journal to only the still-live sweeps, then open
        it for appending.

        The rewrite is atomic (temp file + ``os.replace``): a crash
        mid-compaction leaves the old journal intact.  For each live
        sweep the admission record is re-written, followed by the
        terminal records of its already-finished jobs, so a *second*
        replay reconstructs exactly the state the first one did.
        """
        path = Path(path)
        tmp_path = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp = cls(tmp_path, sync=sync)
        try:
            written: set[str] = set()
            for sweep_id in live_sweep_ids:
                sweep = replay.sweeps.get(sweep_id)
                if sweep is None:
                    continue
                tmp.append(REC_ADMITTED, sweep_id=sweep.sweep_id,
                           backend=sweep.backend,
                           deadline_seconds=sweep.deadline_seconds,
                           jobs=sweep.jobs, sources=sweep.sources)
                for job in sweep.jobs:
                    fingerprint = job.get("fingerprint")
                    if fingerprint in written:
                        continue
                    state = replay.job_states.get(fingerprint)
                    if state is None:
                        continue
                    written.add(fingerprint)
                    if state["state"] == "done":
                        tmp.append(REC_DONE, fingerprint=fingerprint,
                                   source=state.get("source"))
                    elif state["state"] == "failed":
                        tmp.append(REC_FAILED, fingerprint=fingerprint,
                                   error=state.get("error"),
                                   error_code=state.get("error_code"))
            tmp.close()
            os.replace(tmp_path, path)
        except BaseException:
            tmp.close()
            tmp_path.unlink(missing_ok=True)
            raise
        return cls(path, sync=sync)
