"""Async experiment service: typed submissions over the run engine.

The package splits into transport-free core and a thin HTTP skin:

* :mod:`repro.service.api` — the typed public surface (frozen request/
  response dataclasses, typed errors, schema version) shared verbatim
  by the HTTP layer, the ``repro-serve`` CLI, and the blocking client;
* :mod:`repro.service.service` — :class:`ExperimentService`, the
  thread-based core: admission queue with backpressure, request
  coalescing, the sharded content-addressed store, per-job fault
  isolation with a circuit breaker, deadline propagation, graceful
  drain, progress events;
* :mod:`repro.service.journal` — the durable sweep journal (fsync'd
  WAL) behind crash-safe restart-resume;
* :mod:`repro.service.http` — the asyncio HTTP/1.1 front end;
* :mod:`repro.service.server` — the ``repro-serve`` entry point;
* :mod:`repro.service.client` — blocking :class:`ServiceClient` and
  the ``repro-sweep`` CLI (submit / stream / fetch / verify).
"""

from repro.service.api import (
    API_SCHEMA,
    Backpressure,
    JobSpec,
    JobStatus,
    NotFound,
    PayloadTooLarge,
    RequestInvalid,
    ServiceError,
    ServiceUnavailable,
    SubmitRequest,
    SubmitResponse,
    SweepStatus,
)
from repro.service.client import ServiceClient
from repro.service.http import HttpFrontend
from repro.service.journal import JournalReplay, SweepJournal, read_journal
from repro.service.service import ExperimentService, canonical_result_bytes

__all__ = [
    "API_SCHEMA",
    "Backpressure",
    "ExperimentService",
    "HttpFrontend",
    "JobSpec",
    "JobStatus",
    "JournalReplay",
    "NotFound",
    "PayloadTooLarge",
    "RequestInvalid",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SubmitRequest",
    "SubmitResponse",
    "SweepStatus",
    "SweepJournal",
    "canonical_result_bytes",
    "read_journal",
]
