"""Blocking client for the experiment service (plus a small CLI).

:class:`ServiceClient` speaks the typed API of
:mod:`repro.service.api` over stdlib ``http.client`` — no new
dependencies, and the *same* dataclasses the server renders, so a
round-tripped ``SweepStatus`` is structurally identical on both sides.
Typed server errors rehydrate into the same exception classes:
a full queue raises :class:`~repro.service.api.Backpressure` here
exactly as it did there, retry-after and queue depth included.

CLI (``python -m repro.service.client`` or ``repro-sweep``)::

    repro-sweep submit --url http://127.0.0.1:8731 \\
        -w go -w compress --config packing --wait --out-dir served/
    repro-sweep status --url ... sweep-000001
    repro-sweep stream --url ... sweep-000001
    repro-sweep fetch  --url ... <fingerprint> --out result.json
    repro-sweep verify --cache-dir .cli-cache served/*.json
    repro-sweep health --url ... --retries 25

``verify`` is the byte-identity gate CI runs: each served result file
is diffed against the entry the *local* CLI cache holds for the same
fingerprint — the two payloads must be byte-identical, and any
divergent counter is named by its dotted path.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
import urllib.parse
from pathlib import Path

from repro.perf.clock import mono_now
from repro.service.api import (
    API_SCHEMA,
    NotFound,
    RequestInvalid,
    JobSpec,
    ServiceError,
    SubmitRequest,
    SweepStatus,
    error_from_dict,
)


class ServiceClient:
    """Minimal blocking HTTP client over the typed API."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r} "
                             f"(the service speaks plain http)")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    # ----------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = self._connection()
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            document = self._decode(raw)
            if response.status >= 400:
                raise error_from_dict(document)
            return document
        finally:
            conn.close()

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError(f"server sent a non-JSON response "
                               f"({raw[:120]!r})")
        if not isinstance(document, dict):
            raise ServiceError("server sent a non-object response")
        return document

    # ---------------------------------------------------------------- API

    def submit(self, request: SubmitRequest) -> SweepStatus:
        document = self._request("POST", "/v1/sweeps", request.to_dict())
        return SweepStatus.from_dict(document)

    def status(self, sweep_id: str) -> SweepStatus:
        document = self._request("GET", f"/v1/sweeps/{sweep_id}")
        return SweepStatus.from_dict(document)

    def result(self, fingerprint: str) -> bytes:
        """The canonical result payload (raw bytes — byte-identity is
        the contract, so no decode/re-encode on this path)."""
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/results/{fingerprint}")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise error_from_dict(self._decode(raw))
            return raw
        finally:
            conn.close()

    def stream(self, sweep_id: str):
        """Yield progress records (dicts) as the server streams them;
        returns after the ``sweep.end`` record."""
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/sweeps/{sweep_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise error_from_dict(self._decode(response.read()))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line.decode("utf-8"))
                yield record
                if record.get("record") == "sweep.end":
                    return
        finally:
            conn.close()

    def wait(self, sweep_id: str, poll: float = 0.5,
             timeout: float | None = None) -> SweepStatus:
        """Poll until the sweep is terminal; returns the final status."""
        deadline = (mono_now() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(sweep_id)
            if status.done:
                return status
            if deadline is not None and mono_now() >= deadline:
                return status
            time.sleep(poll)

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def live(self) -> dict:
        return self._request("GET", "/v1/livez")

    def ready(self) -> tuple[bool, dict]:
        """(is_ready, readiness document).  A 503 here is a *state*,
        not an error — the body still carries queue depth, journal
        lag, and the reason — so it never raises on not-ready."""
        conn = self._connection()
        try:
            conn.request("GET", "/v1/readyz")
            response = conn.getresponse()
            document = self._decode(response.read())
            return response.status == 200, document
        finally:
            conn.close()

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")


# --------------------------------------------------------------- verify

def index_local_cache(cache_dir: Path) -> dict[str, dict]:
    """fingerprint -> verified entry, over a flat *or* sharded cache
    directory (the layout marker decides)."""
    from repro.exec.cache import ResultCache
    from repro.exec.shards import MARKER, ShardedResultCache
    if (cache_dir / MARKER).exists():
        cache = ShardedResultCache(cache_dir)
        loaders = [(cache.shard(p.name), e) for p in cache.shards()
                   for e in cache.shard(p.name).entries()]
    else:
        flat = ResultCache(cache_dir)
        loaders = [(flat, e) for e in flat.entries()]
    index: dict[str, dict] = {}
    for cache, path in loaders:
        entry = cache.load_entry(path)
        if entry is not None and isinstance(entry.get("fingerprint"), str):
            index[entry["fingerprint"]] = entry
    return index


def verify_served(cache_dir: Path, served: list[Path],
                  out=sys.stdout) -> int:
    """Diff served result files against the local cache; returns the
    number of divergent/missing files (0 = byte-identical everywhere).
    """
    from repro.exec.serialize import dict_divergences
    from repro.service.service import canonical_result_bytes
    index = index_local_cache(cache_dir)
    problems = 0
    for path in served:
        fingerprint = path.stem
        served_bytes = path.read_bytes()
        entry = index.get(fingerprint)
        if entry is None:
            print(f"{fingerprint}: MISSING from local cache "
                  f"{cache_dir}", file=out)
            problems += 1
            continue
        local_bytes = canonical_result_bytes(entry["result"])
        if served_bytes == local_bytes:
            print(f"{fingerprint}: byte-identical "
                  f"({len(served_bytes)} bytes)", file=out)
            continue
        problems += 1
        try:
            served_dict = json.loads(served_bytes.decode("utf-8"))
            paths = dict_divergences(entry["result"], served_dict)
            detail = ", ".join(paths[:6]) + \
                (" ..." if len(paths) > 6 else "")
        except ValueError:
            detail = "served payload is not JSON"
        print(f"{fingerprint}: DIVERGED at {detail}", file=out)
    return problems


# ------------------------------------------------------------------- CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Submit sweeps to a repro-serve instance, stream "
                    "progress, fetch results, verify byte-identity.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_url(p):
        p.add_argument("--url", default="http://127.0.0.1:8731",
                       help="service base URL "
                            "(default http://127.0.0.1:8731)")

    p_submit = sub.add_parser("submit", help="POST a sweep of jobs")
    add_url(p_submit)
    p_submit.add_argument("-w", "--workload", action="append",
                          required=True, metavar="NAME",
                          help="workload to include (repeatable)")
    p_submit.add_argument("--config", default="baseline",
                          help="named machine configuration "
                               "(default baseline)")
    p_submit.add_argument("--scale", type=int, default=1,
                          help="workload scale factor (default 1)")
    p_submit.add_argument("--backend", default="reference",
                          choices=("reference", "fast"),
                          help="execution backend for fresh jobs")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the sweep is terminal")
    p_submit.add_argument("--stream", action="store_true",
                          help="stream progress records to stderr "
                               "while waiting (implies --wait)")
    p_submit.add_argument("--out-dir", default=None, metavar="DIR",
                          help="after completion, fetch every result "
                               "and write <fingerprint>.json files "
                               "into DIR (implies --wait)")

    p_status = sub.add_parser("status", help="GET a sweep's status")
    add_url(p_status)
    p_status.add_argument("sweep_id")

    p_stream = sub.add_parser("stream",
                              help="stream a sweep's JSONL progress")
    add_url(p_stream)
    p_stream.add_argument("sweep_id")

    p_fetch = sub.add_parser("fetch", help="GET one result by "
                                           "fingerprint")
    add_url(p_fetch)
    p_fetch.add_argument("fingerprint")
    p_fetch.add_argument("--out", default=None, metavar="FILE",
                         help="write the payload here instead of stdout")

    p_verify = sub.add_parser(
        "verify", help="diff served result files against a local "
                       "cache directory (byte-identity gate)")
    p_verify.add_argument("--cache-dir", required=True, type=Path,
                          help="local result cache produced by e.g. "
                               "repro-experiments --cache-dir")
    p_verify.add_argument("served", nargs="+", type=Path,
                          help="<fingerprint>.json files saved by "
                               "'submit --out-dir'")

    p_health = sub.add_parser("health", help="GET /v1/healthz")
    add_url(p_health)
    p_health.add_argument("--retries", type=int, default=0,
                          help="retry this many times (0.4s apart) "
                               "before failing — a startup wait")
    return parser


def _print_statuses(status: SweepStatus, out) -> None:
    print(f"sweep {status.sweep_id}: "
          f"{'done' if status.done else 'in flight'}"
          f"{'' if status.ok else ' (failures)' if status.done else ''}",
          file=out)
    for job in status.statuses:
        spec = job.spec
        line = (f"  {spec.workload:16s} {spec.config:14s} "
                f"x{spec.scale:<3d} {job.state:8s} "
                f"{job.source or '-':10s} {job.fingerprint}")
        if job.error:
            code = f"{job.error_code}: " if job.error_code else ""
            line += f"  [{code}{job.error}]"
        print(line, file=out)


def _cmd_submit(args) -> int:
    client = ServiceClient(args.url)
    specs = tuple(JobSpec(workload=w, config=args.config,
                          scale=args.scale) for w in args.workload)
    status = client.submit(SubmitRequest(jobs=specs,
                                         backend=args.backend))
    _print_statuses(status, sys.stderr)
    wait = args.wait or args.stream or args.out_dir
    if args.stream:
        for record in client.stream(status.sweep_id):
            print(json.dumps(record, sort_keys=True), file=sys.stderr)
    if wait:
        status = client.wait(status.sweep_id)
        _print_statuses(status, sys.stderr)
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for job in status.statuses:
            if job.state != "done":
                print(f"skipping {job.fingerprint}: state {job.state}",
                      file=sys.stderr)
                continue
            payload = client.result(job.fingerprint)
            path = out_dir / f"{job.fingerprint}.json"
            path.write_bytes(payload)
            print(f"wrote {path}")
    print(status.sweep_id)
    return 0 if (not wait or status.ok) else 1


def _cmd_status(args) -> int:
    status = ServiceClient(args.url).status(args.sweep_id)
    _print_statuses(status, sys.stdout)
    return 0 if (not status.done or status.ok) else 1


def _cmd_stream(args) -> int:
    for record in ServiceClient(args.url).stream(args.sweep_id):
        print(json.dumps(record, sort_keys=True))
    return 0


def _cmd_fetch(args) -> int:
    payload = ServiceClient(args.url).result(args.fingerprint)
    if args.out:
        Path(args.out).write_bytes(payload)
        print(f"wrote {args.out}")
    else:
        sys.stdout.buffer.write(payload)
    return 0


def _cmd_verify(args) -> int:
    problems = verify_served(args.cache_dir, args.served)
    total = len(args.served)
    print(f"verify: {total - problems}/{total} byte-identical, "
          f"{problems} divergent")
    return 1 if problems else 0


def _cmd_health(args) -> int:
    client = ServiceClient(args.url, timeout=5.0)
    last: Exception | None = None
    for _attempt in range(args.retries + 1):
        try:
            health = client.health()
        except (ServiceError, OSError) as err:
            last = err
            time.sleep(0.4)
            continue
        print(json.dumps(health, sort_keys=True))
        # Liveness and readiness are separate answers: a draining
        # service is live but not ready, and operators need both.
        try:
            live = bool(client.live().get("live"))
            ready, doc = client.ready()
        except (ServiceError, OSError) as err:
            print(f"liveness/readiness probe failed: {err}",
                  file=sys.stderr)
            return 0
        journal = doc.get("journal") or {}
        lag = journal.get("lag") if journal.get("enabled") else "n/a"
        print(f"live: {str(live).lower()}", file=sys.stderr)
        print(f"ready: {str(ready).lower()} "
              f"({doc.get('reason', '?')}; queue "
              f"{doc.get('queue_depth', '?')}/"
              f"{doc.get('queue_limit', '?')}, journal lag {lag})",
              file=sys.stderr)
        return 0
    print(f"service unreachable at {args.url}: {last}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "submit": _cmd_submit,
        "status": _cmd_status,
        "stream": _cmd_stream,
        "fetch": _cmd_fetch,
        "verify": _cmd_verify,
        "health": _cmd_health,
    }[args.command]
    try:
        return handler(args)
    except ServiceError as err:
        document = {"error": err.code, "message": err.message,
                    **({"details": err.details} if err.details else {})}
        print(f"error [{err.code}]: {err.message}", file=sys.stderr)
        if err.details:
            print(json.dumps(document, sort_keys=True), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
