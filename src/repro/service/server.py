"""``repro-serve``: the async experiment service front end.

Starts the HTTP service over the run engine: clients POST sweeps of
(workload, config, scale, backend) jobs, stream per-job progress as
JSONL, and GET results from the shared content-addressed store.

    repro-serve --port 8731 --cache-dir service-cas --workers 2
    repro-serve --port 0             # pick a free port, print it

The engine flags are the same shared set every repro CLI accepts
(:mod:`repro.exec.cli`); the one service twist is that ``--cache-dir``
defaults to ``service-cas`` with the sharded ``cas`` layout, because a
multi-tenant service without a shared store would re-simulate every
popular job per tenant.  Pass an ``--obs-out`` directory to have every
fresh simulation leave an obs manifest *and* stream its records to
progress subscribers.

Startup prints ``serving on http://HOST:PORT`` to **stderr** (stdout
stays machine-parseable: it carries exactly one line, the bound URL,
so scripts can capture it).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.exec.cli import (
    add_engine_arguments,
    context_from_args,
    validate_engine_args,
)
from repro.service.http import HttpFrontend
from repro.service.service import ExperimentService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve simulation sweeps over HTTP: typed "
                    "submissions, request coalescing, a shared sharded "
                    "result store, and queue backpressure.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8731,
                        help="TCP port (default 8731; 0 = pick a free "
                             "port and print it)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        metavar="N",
                        help="admission queue bound: submissions whose "
                             "new jobs would exceed it get a typed 429 "
                             "with queue depth and retry-after "
                             "(default 64)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="runner threads draining the queue; each "
                             "runs one job at a time through the "
                             "engine, so total parallelism is "
                             "workers x --jobs (default 2)")
    parser.add_argument("--obs-out", default=None, metavar="DIR",
                        help="write an observability run manifest for "
                             "every fresh simulation into DIR and "
                             "stream its records to progress "
                             "subscribers")
    parser.add_argument("--journal-dir", default="service-journal",
                        metavar="DIR",
                        help="durable sweep journal directory: admitted "
                             "work is WAL'd here and resumed after a "
                             "crash or restart (default "
                             "service-journal)")
    parser.add_argument("--no-journal", action="store_true",
                        help="disable the sweep journal: in-flight "
                             "sweeps are lost on restart")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        metavar="N",
                        help="consecutive worker crashes that trip the "
                             "circuit breaker (typed 503 until the "
                             "cooldown lapses; default 5)")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        metavar="SECONDS",
                        help="circuit breaker cooldown (default 30)")
    add_engine_arguments(parser)
    parser.set_defaults(cache_dir="service-cas", cache_layout="cas")
    return parser


async def _serve(args: argparse.Namespace,
                 service: ExperimentService) -> int:
    frontend = HttpFrontend(service, args.host, args.port)
    host, port = await frontend.start()
    url = f"http://{host}:{port}"
    print(f"serving on {url} (queue limit {service.queue_limit}, "
          f"{service.workers} workers, cache {service.ctx.cache_dir} "
          f"[{service.ctx.cache_layout}], backend "
          f"{service.ctx.backend})", file=sys.stderr, flush=True)
    print(url, flush=True)
    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()
    try:
        # SIGTERM = graceful drain: flip readiness false, park queued
        # work in the journal, finish in-flight jobs, exit clean.
        loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
    except (NotImplementedError, RuntimeError):
        pass                            # non-unix / nested loop
    serve_task = asyncio.ensure_future(frontend.serve_forever())
    drain_task = asyncio.ensure_future(drain_requested.wait())
    try:
        await asyncio.wait({serve_task, drain_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if drain_requested.is_set():
            print("SIGTERM: draining (readiness false, parking queued "
                  "work, finishing in-flight jobs)", file=sys.stderr,
                  flush=True)
            summary = await loop.run_in_executor(None, service.drain)
            print(f"drained: {summary['parked']} parked, "
                  f"{summary['done']} terminal", file=sys.stderr,
                  flush=True)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, drain_task):
            task.cancel()
        await asyncio.gather(serve_task, drain_task,
                             return_exceptions=True)
        await frontend.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_engine_args(parser, args)
    if args.queue_limit < 1:
        parser.error("--queue-limit must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.no_cache:
        # Legal (a pure compute service), but every submission then
        # re-simulates; the operator should have asked for it on
        # purpose.
        print("note: --no-cache disables the shared store; every "
              "sweep will simulate fresh", file=sys.stderr)
        args.cache_dir = None
    if args.breaker_threshold < 1:
        parser.error("--breaker-threshold must be >= 1")
    ctx = context_from_args(args, obs_dir=args.obs_out)
    journal_dir = None if args.no_journal else args.journal_dir
    service = ExperimentService(ctx, queue_limit=args.queue_limit,
                                workers=args.workers,
                                journal_dir=journal_dir,
                                breaker_threshold=args.breaker_threshold,
                                breaker_cooldown=args.breaker_cooldown,
                                ).start()
    try:
        return asyncio.run(_serve(args, service))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
    finally:
        service.shutdown()


if __name__ == "__main__":
    sys.exit(main())
