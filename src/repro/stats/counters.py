"""Core simulation counters.

One :class:`CoreStats` instance is owned by each
:class:`~repro.core.machine.Machine` and summarizes a run: the IPC and
speedup numbers of Figures 10/11 all derive from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Counters accumulated over one simulation run."""

    cycles: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    completed: int = 0
    committed: int = 0

    # control flow
    branches_committed: int = 0
    cond_branches_committed: int = 0
    mispredicts: int = 0

    # narrow-width optimizations
    packed_ops: int = 0          # instructions issued inside a pack (>= 2)
    pack_groups: int = 0         # number of multi-instruction packs issued
    replay_packed_ops: int = 0   # ops packed speculatively (one wide operand)
    replay_traps: int = 0        # replay-packed ops that overflowed

    # per-class committed instruction mix
    class_mix: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (the paper's IPC metric)."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.cond_branches_committed:
            return 1.0
        return 1.0 - self.mispredicts / self.cond_branches_committed

    def count_class(self, name: str) -> None:
        self.class_mix[name] = self.class_mix.get(name, 0) + 1

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of every counter plus the derived
        rates (consumed by the obs run manifest)."""
        return {
            "cycles": self.cycles,
            "fetched": self.fetched,
            "dispatched": self.dispatched,
            "issued": self.issued,
            "completed": self.completed,
            "committed": self.committed,
            "branches_committed": self.branches_committed,
            "cond_branches_committed": self.cond_branches_committed,
            "mispredicts": self.mispredicts,
            "packed_ops": self.packed_ops,
            "pack_groups": self.pack_groups,
            "replay_packed_ops": self.replay_packed_ops,
            "replay_traps": self.replay_traps,
            "class_mix": dict(self.class_mix),
            "ipc": self.ipc,
            "branch_accuracy": self.branch_accuracy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreStats":
        """Rebuild counters from an :meth:`as_dict` snapshot (derived
        rates are recomputed, not read back)."""
        stats = cls()
        for name in ("cycles", "fetched", "dispatched", "issued",
                     "completed", "committed", "branches_committed",
                     "cond_branches_committed", "mispredicts",
                     "packed_ops", "pack_groups", "replay_packed_ops",
                     "replay_traps"):
            setattr(stats, name, int(data[name]))
        stats.class_mix = {str(k): int(v)
                           for k, v in data.get("class_mix", {}).items()}
        return stats


def speedup_pct(baseline_cycles: int, optimized_cycles: int) -> float:
    """Percent speedup of an optimized run over a baseline run of the
    same program (equal committed instruction counts assumed)."""
    if optimized_cycles <= 0:
        raise ValueError("optimized cycle count must be positive")
    return 100.0 * (baseline_cycles / optimized_cycles - 1.0)
