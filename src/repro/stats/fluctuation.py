"""Per-PC operand-width fluctuation tracking (paper Figure 2).

Figure 2 reports "the percentage of PC values where operand width
changes as the instruction is executed repeatedly within a single run"
— specifically, how often an instruction fluctuates between the
<=16-bit and >16-bit operand classes.  The paper uses this to argue
that static compiler analysis cannot pin down operand widths: with
*realistic* branch prediction, wrong-path executions visit uncommon
paths and widths fluctuate more than with perfect prediction.

The tracker therefore records *executed* (not only committed)
operations, exactly as a hardware mechanism would observe them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitwidth.detect import CUT_NARROW


@dataclass
class FluctuationTracker:
    """Tracks, per PC, whether the <=16-bit / >16-bit operand class of
    an instruction changed over the run."""

    threshold: int = CUT_NARROW
    #: pc -> (last_class_narrow, execution_count, ever_changed)
    _state: dict[int, tuple[bool, int, bool]] = field(default_factory=dict)

    def record(self, pc: int, pair_width: int) -> None:
        """Record one execution of the instruction at ``pc``."""
        narrow = pair_width <= self.threshold
        entry = self._state.get(pc)
        if entry is None:
            self._state[pc] = (narrow, 1, False)
            return
        last_narrow, count, changed = entry
        self._state[pc] = (narrow, count + 1,
                           changed or (narrow != last_narrow))

    @classmethod
    def from_columns(cls, pcs, pair_widths,
                     threshold: int = CUT_NARROW) -> "FluctuationTracker":
        """Vectorized twin of a :meth:`record` loop (trace replay).

        Reconstructs, per PC, the (last_narrow, count, ever_changed)
        triple a record loop over the same stream would hold — including
        the dict's first-occurrence insertion order, which the
        serialized ``pcs`` rows expose.
        """
        import numpy as np

        pcs = np.asarray(pcs, dtype=np.int64)
        narrow = np.asarray(pair_widths, dtype=np.int64) <= threshold
        tracker = cls(threshold=threshold)
        if pcs.size == 0:
            return tracker
        unique, first_index, inverse, counts = np.unique(
            pcs, return_index=True, return_inverse=True, return_counts=True)
        # Last observation per PC: later assignments win.
        last_index = np.zeros(unique.size, dtype=np.int64)
        last_index[inverse] = np.arange(pcs.size)
        last_narrow = narrow[last_index]
        # Ever-changed per PC: any adjacent flip within the PC's
        # time-ordered group (stable sort groups by PC, keeps time order).
        order = np.lexsort((np.arange(pcs.size), inverse))
        grouped_narrow = narrow[order]
        grouped_pc = inverse[order]
        flip = ((grouped_narrow[1:] != grouped_narrow[:-1])
                & (grouped_pc[1:] == grouped_pc[:-1]))
        changed = np.zeros(unique.size, dtype=bool)
        changed[grouped_pc[1:][flip]] = True
        for slot in np.argsort(first_index, kind="stable"):
            tracker._state[int(unique[slot])] = (
                bool(last_narrow[slot]), int(counts[slot]),
                bool(changed[slot]))
        return tracker

    def as_dict(self) -> dict:
        """JSON-friendly snapshot: per-PC state rows in insertion
        order, so a round trip preserves the tracker exactly."""
        return {
            "threshold": self.threshold,
            "pcs": [[pc, narrow, count, changed]
                    for pc, (narrow, count, changed) in self._state.items()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FluctuationTracker":
        """Rebuild a tracker from an :meth:`as_dict` snapshot."""
        tracker = cls(threshold=int(data["threshold"]))
        tracker._state = {int(pc): (bool(narrow), int(count), bool(changed))
                          for pc, narrow, count, changed in data["pcs"]}
        return tracker

    @property
    def total_pcs(self) -> int:
        """Distinct PCs observed."""
        return len(self._state)

    @property
    def eligible_pcs(self) -> int:
        """PCs executed at least twice (a single execution cannot
        fluctuate)."""
        return sum(1 for _, count, _ in self._state.values() if count >= 2)

    @property
    def changed_pcs(self) -> int:
        """PCs whose operand class crossed the threshold at least once."""
        return sum(1 for _, _, changed in self._state.values() if changed)

    @property
    def fluctuation_pct(self) -> float:
        """Figure 2's y-axis: % of (repeatedly executed) PCs whose
        operand precision crossed the 16-bit line during the run."""
        eligible = self.eligible_pcs
        if eligible == 0:
            return 0.0
        return 100.0 * self.changed_pcs / eligible
