"""Statistics collection: counters, width histograms, fluctuation."""

from repro.stats.counters import CoreStats, speedup_pct
from repro.stats.fluctuation import FluctuationTracker
from repro.stats.widths import WIDTH_TRACKED_CLASSES, WidthHistogram

__all__ = [
    "CoreStats",
    "FluctuationTracker",
    "WIDTH_TRACKED_CLASSES",
    "WidthHistogram",
    "speedup_pct",
]
