"""Operand-bitwidth statistics (paper Figures 1, 4, 5).

For every executed integer-unit operation the core records the
*effective width of the operand pair* (the wider of the two source
operands, per the paper's "both operands must be narrow" rule) together
with the operation class.  From this histogram the experiments derive:

* Figure 1 — cumulative % of operations with both operands <= N bits;
* Figure 4 — % of operations <= 16 bits, split by class;
* Figure 5 — % of operations <= 33 bits, split by class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitwidth.detect import WORD_WIDTH
from repro.isa.opcodes import OpClass

#: Classes counted as "integer operations" in the paper's Figures 1/4/5
#: (Figure 1 explicitly "includes address calculations").
WIDTH_TRACKED_CLASSES = (
    OpClass.INT_ARITH,
    OpClass.INT_MULT,
    OpClass.INT_LOGIC,
    OpClass.INT_SHIFT,
    OpClass.LOAD,
    OpClass.STORE,
    OpClass.BRANCH,
)


@dataclass
class WidthHistogram:
    """Histogram of operand-pair widths by operation class."""

    #: counts[op_class][width] for width in 1..64
    counts: dict[OpClass, list[int]] = field(default_factory=dict)
    total: int = 0

    def record(self, op_class: OpClass, pair_width: int) -> None:
        """Record one executed operation whose operand pair needs
        ``pair_width`` bits."""
        if not 1 <= pair_width <= WORD_WIDTH:
            raise ValueError(f"pair width out of range: {pair_width}")
        per_class = self.counts.get(op_class)
        if per_class is None:
            per_class = [0] * (WORD_WIDTH + 1)
            self.counts[op_class] = per_class
        per_class[pair_width] += 1
        self.total += 1

    @classmethod
    def from_columns(cls, op_classes, pair_widths) -> "WidthHistogram":
        """Vectorized twin of a :meth:`record` loop (trace replay).

        ``op_classes`` is a sequence of :class:`OpClass` codes as
        positions into ``list(OpClass)``; ``pair_widths`` the matching
        operand-pair widths.  Per-class counts are binned with numpy;
        the ``counts`` dict lists classes in first-occurrence order, the
        same order a record loop would have created them in.
        """
        import numpy as np

        from repro.bitwidth.detect import WORD_WIDTH as _WW

        codes = np.asarray(op_classes, dtype=np.int64)
        widths = np.asarray(pair_widths, dtype=np.int64)
        if codes.size and not (1 <= int(widths.min())
                               and int(widths.max()) <= _WW):
            raise ValueError("pair width out of range")
        order = list(OpClass)
        histogram = cls()
        histogram.total = int(codes.size)
        first_seen = {}
        unique, first_index = np.unique(codes, return_index=True)
        for code, index in zip(unique, first_index):
            first_seen[int(code)] = int(index)
        for code in sorted(first_seen, key=first_seen.__getitem__):
            per_class = np.bincount(widths[codes == code],
                                    minlength=_WW + 1)
            histogram.counts[order[code]] = [int(n) for n in per_class]
        return histogram

    # -- (de)serialization ---------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-friendly snapshot keyed by :class:`OpClass` value."""
        return {
            "counts": {c.value: list(counts)
                       for c, counts in self.counts.items()},
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WidthHistogram":
        """Rebuild a histogram from an :meth:`as_dict` snapshot."""
        histogram = cls()
        histogram.counts = {OpClass(value): [int(n) for n in counts]
                            for value, counts in data["counts"].items()}
        histogram.total = int(data["total"])
        return histogram

    # -- queries -------------------------------------------------------------

    def class_total(self, op_class: OpClass) -> int:
        per_class = self.counts.get(op_class)
        return sum(per_class) if per_class else 0

    def count_at_most(self, bits: int,
                      classes: tuple[OpClass, ...] | None = None) -> int:
        """Operations whose operand pair fits in ``bits`` bits."""
        classes = classes or tuple(self.counts)
        total = 0
        for op_class in classes:
            per_class = self.counts.get(op_class)
            if per_class:
                total += sum(per_class[1:bits + 1])
        return total

    def cumulative_pct(self, bits: int,
                       classes: tuple[OpClass, ...] | None = None) -> float:
        """Figure 1's y-axis: cumulative % of operations <= ``bits``."""
        classes = classes or tuple(self.counts)
        denom = sum(self.class_total(c) for c in classes)
        if denom == 0:
            return 0.0
        return 100.0 * self.count_at_most(bits, classes) / denom

    def cumulative_curve(
            self, classes: tuple[OpClass, ...] | None = None) -> list[float]:
        """The full Figure 1 curve: cumulative % for widths 1..64."""
        classes = classes or tuple(self.counts)
        denom = sum(self.class_total(c) for c in classes)
        curve: list[float] = []
        running = 0
        for bits in range(1, WORD_WIDTH + 1):
            running += sum(
                self.counts[c][bits] for c in classes if c in self.counts)
            curve.append(100.0 * running / denom if denom else 0.0)
        return curve

    def narrow_pct_by_class(self, bits: int) -> dict[OpClass, float]:
        """Figures 4/5: per-class narrow operations as % of *all*
        tracked operations (so the per-class bars stack to the total)."""
        denom = sum(self.class_total(c) for c in WIDTH_TRACKED_CLASSES)
        result: dict[OpClass, float] = {}
        if denom == 0:
            return result
        for op_class in self.counts:
            narrow = self.count_at_most(bits, (op_class,))
            result[op_class] = 100.0 * narrow / denom
        return result
