"""Two-phase fast simulation backend.

The reference :class:`~repro.core.machine.Machine` walks every pipeline
structure in pure Python each cycle.  This package reorganizes the same
model SimpleScalar-style (``sim-fast`` / ``sim-outorder``):

* **phase 1 — capture** (:mod:`repro.fastsim.machine`): an optimized
  cycle loop executes the workload functionally through
  :mod:`repro.isa.semantics` on flat integer state, drives an exact
  reimplementation of the reference timing model, and captures a
  compact *columnar dynamic trace* of every measured operation
  (op class/opcode codes, operand values, PCs, width-tag codes);
* **phase 2 — replay** (:mod:`repro.fastsim.replay`): the captured
  columns are replayed through *vectorized twins* of width tagging
  (:mod:`repro.bitwidth.vector`), packing eligibility
  (:func:`repro.packing.pack.vector_pack_candidates`), gating
  (:func:`repro.bitwidth.vector.gate_widths`), and power/stat
  accumulation (``from_columns`` builders) — batch numpy over the whole
  trace instead of per-instruction Python.

The contract is *bit-exactness*: ``FastMachine.run`` returns a
:class:`~repro.core.machine.RunResult` whose serialized form equals the
reference machine's for every workload and configuration.  The engine's
``--backend both`` mode, the ``backend-equivalence`` CI matrix
(:mod:`repro.fastsim.cli`), and the hypothesis round-trip tests enforce
the contract continuously.
"""

from repro.fastsim.capture import TraceCapture
from repro.fastsim.machine import FastMachine

__all__ = ["FastMachine", "TraceCapture"]
