"""Vectorized trace replay (phase 2 of the fast backend).

Rebuilds the reference machine's measurement instruments — the width
histogram, the fluctuation tracker, and the power accountant — from a
captured columnar trace using batch numpy over whole columns:

* operand-pair widths via :func:`repro.bitwidth.vector.pair_widths`;
* gating decisions via :func:`repro.bitwidth.vector.gate_widths`;
* instrument state via the ``from_columns`` builders on
  :class:`~repro.stats.widths.WidthHistogram`,
  :class:`~repro.stats.fluctuation.FluctuationTracker`, and
  :class:`~repro.power.accounting.PowerAccountant`.

When packing was enabled, the replay also cross-checks the timing
loop's packing decisions against the vectorized eligibility rules
(:func:`repro.packing.pack.vector_pack_candidates`): every capture row
the loop packed must be a full or replay candidate, and every row it
replay-packed must be a replay candidate.  A violation raises — it can
only mean the two implementations of the Section 5 rules disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitwidth.vector import gate_widths, pair_widths
from repro.core.config import PackingConfig
from repro.core.machine import RunResult
from repro.fastsim.capture import CLASS_CODE, CLASS_ORDER, TraceCapture
from repro.packing.pack import vector_pack_candidates
from repro.power.accounting import PowerAccountant
from repro.power.gating import GatingPolicy
from repro.stats.fluctuation import FluctuationTracker
from repro.stats.widths import WIDTH_TRACKED_CLASSES, WidthHistogram


@dataclass
class ReplayedMeasurements:
    """The three instruments rebuilt from one captured trace."""

    widths: WidthHistogram
    fluctuation: FluctuationTracker
    accountant: PowerAccountant


def replay_measurements(capture: TraceCapture, policy: GatingPolicy,
                        packing: PackingConfig | None = None,
                        packed_rows=None,
                        replay_rows=None) -> ReplayedMeasurements:
    """Replay a captured measurement stream through the vectorized
    instrument twins.

    ``packing``/``packed_rows``/``replay_rows`` are optional: when the
    capturing run packed operations, pass its packing config and the
    capture-row lists it recorded so the eligibility cross-check runs.
    """
    import numpy as np

    cols = capture.columns()
    cls = cols["cls"]
    tag_a = cols["tag_a"]
    tag_b = cols["tag_b"]

    # Width-tracked subset (everything except jumps, which are captured
    # for power accounting only).
    tracked_lookup = np.zeros(len(CLASS_ORDER), dtype=bool)
    for op_class in WIDTH_TRACKED_CLASSES:
        tracked_lookup[CLASS_CODE[op_class]] = True
    tracked = tracked_lookup[cls]

    pair = pair_widths(cols["a"], cols["b"])
    widths = WidthHistogram.from_columns(cls[tracked], pair[tracked])
    fluctuation = FluctuationTracker.from_columns(cols["pc"][tracked],
                                                  pair[tracked])
    accountant = PowerAccountant.from_columns(
        policy, cls, CLASS_ORDER, gate_widths(policy, tag_a, tag_b),
        cols["produces"], cols["from_load"])

    if packing is not None and packing.enabled and packed_rows:
        full, replay = vector_pack_candidates(cls, cols["opc"], tag_a,
                                              tag_b, packing)
        eligible = full | replay
        rows = np.asarray(packed_rows, dtype=np.int64)
        if not bool(np.all(eligible[rows])):
            raise RuntimeError(
                "fast-backend packing divergence: the timing loop packed "
                "an operation the vectorized eligibility rules reject")
        if replay_rows:
            rrows = np.asarray(replay_rows, dtype=np.int64)
            if not bool(np.all(replay[rrows])):
                raise RuntimeError(
                    "fast-backend packing divergence: the timing loop "
                    "replay-packed an operation the vectorized replay "
                    "rules reject")

    return ReplayedMeasurements(widths=widths, fluctuation=fluctuation,
                                accountant=accountant)


def build_result(machine) -> RunResult:
    """Assemble a :class:`~repro.core.machine.RunResult` for a finished
    :class:`~repro.fastsim.machine.FastMachine` (called by its ``run``)."""
    stats = machine.stats
    config = machine.config
    replayed = replay_measurements(
        machine.capture, config.gating, packing=config.packing,
        packed_rows=machine._packed_rows, replay_rows=machine._replay_rows)
    power = (replayed.accountant.report(stats.cycles)
             if stats.cycles else None)
    return RunResult(name=machine.program.name, config=config,
                     stats=stats, widths=replayed.widths,
                     fluctuation=replayed.fluctuation, power=power)
