"""Proof-carrying basic-block memoization for the fast backend.

The ROADMAP's remaining fastsim headroom is phase-1 Python instruction
execution; this module batches it at basic-block granularity.  The
static side (:mod:`repro.analysis.effects`) proves which block bodies
are *memo-safe* — no stores, loads provably disjoint from every
reachable store's byte range, no replay-trap-eligible operations — and
:func:`build_plan` distills those proofs into the flat per-leader plan
the fused loop consults.

At run time a :class:`BlockMemo` maps ``(leader, key)`` to a recorded
execution, where the key is the body's upward-exposed register reads —
``(value, width tag, from-load bit)`` per register, a subset of the
block's live-in set — captured the moment fetch reaches the leader:

* **miss**: the body executes through the normal inlined feed.  The
  first sighting of a key only marks it (a key seen once never repays
  the cost of recording); on the second sighting the memoizer copies
  each freshly created entry list as a template and, at body end,
  snapshots the ``(register, value, tag, from_load)`` delta over the
  body's written registers;
* **hit**: the recorded delta is applied to the architected register
  file and the templates replay one per fetch slot — re-stamped with
  the live sequence number, fetch cycle, and speculative flag — through
  the *unchanged* dispatch/issue/writeback/commit stages, so capture
  rows, packing decisions, cache latencies, and replay traps are
  reproduced decision-for-decision rather than approximated.

Replay never spans a control transfer: the block terminator always
executes live, so predictor/BTB/RAS state needs no replaying and a
mispredicted terminator checkpoints exactly as before.  A hit on the
speculative (wrong) path is taken only for load-free bodies or while
the speculative store overlay is empty — a wrong-path load then reads
the same immutable main-memory bytes the recording did.

Bit-exactness is enforced end to end by ``repro-equivalence`` (the
14-workload matrix with memoization on and off) and ``--backend both``;
``--no-memo`` threads an escape hatch through
:class:`repro.exec.context.RunContext`.
"""

from __future__ import annotations

from repro.analysis.effects import EffectsAnalysis, analyze_effects
from repro.isa.instruction import Program

#: Bodies shorter than this are not worth the leader-side key probe:
#: the replay saves less feed work than the key tuple costs to build.
MIN_BODY_LEN = 2

#: Distinct live-in keys recorded per block before recording stops for
#: that block — bounds memo memory on key-diverse blocks while leaving
#: loop bodies (few keys, many executions) fully covered.
KEY_CAP = 512

#: Adaptive give-up: every :data:`ADAPT_PROBES` non-hit probes of a
#: block, its hit counter must have reached at least
#: ``max(ADAPT_MIN_HITS, misses / 16)`` or the block is dropped from
#: the plan (its keys are data-dependent noise — every further probe
#: would be pure overhead).  Measured separator across the suite:
#: profitable blocks either hit within their first handful of probes or
#: plateau their misses well under 256 once their keys are recorded,
#: while noise blocks (go, compress) pile up hundreds of distinct keys
#: with ~zero hits — so the first checkpoint at 256 probes with a
#: 16-hit bar never reaches a profitable block.  Both counters are
#: deterministic functions of the instruction stream, so results and
#: stats stay reproducible.
ADAPT_PROBES = 256
ADAPT_MIN_HITS = 16


def build_plan(program: Program,
               effects: EffectsAnalysis | None = None,
               ) -> dict[int, tuple]:
    """Distill memo proofs into the runtime plan: ``leader ->
    (body_len, ue_regs, defs, has_loads, trap_free)`` for every
    memo-safe block body worth recording."""
    effects = effects or analyze_effects(program)
    plan: dict[int, tuple] = {}
    for leader, proof in effects.proofs.items():
        if not proof.memo_safe or proof.body_len < MIN_BODY_LEN:
            continue
        plan[leader] = (proof.body_len, proof.ue_regs, proof.defs,
                        proof.has_loads, proof.trap_free)
    return plan


class BlockMemo:
    """Runtime memo state for one :class:`~repro.fastsim.machine.
    FastMachine` instance (never shared: recorded templates embed
    machine-specific dynamic values)."""

    __slots__ = ("plan", "table", "key_cap", "planned", "hits",
                 "misses", "replayed", "ff_replayed")

    def __init__(self, program: Program,
                 require_trap_free: bool = False,
                 effects: EffectsAnalysis | None = None,
                 key_cap: int = KEY_CAP) -> None:
        plan = build_plan(program, effects)
        if require_trap_free:
            # Speculative replay packing is enabled: only bodies with a
            # static trap-freedom proof are memoized (ISSUE 9's
            # conservative contract; traps themselves replay correctly,
            # the gate just keeps the proof obligations explicit).
            plan = {lead: p for lead, p in plan.items() if p[4]}
        #: leader -> [body_len, ue_regs, defs, has_loads, misses, hits]
        #: — trap_free is consumed here and dropped; the two trailing
        #: counters drive the adaptive give-up (mutable in place, which
        #: is why the plan rows are lists).
        self.plan: dict[int, list] = {
            lead: [*p[:4], 0, 0] for lead, p in plan.items()}
        #: leader -> {key -> (templates, delta)} where ``templates`` is
        #: a tuple of entry lists and ``delta`` a tuple of
        #: ``(reg, value, tag, from_load)``.
        self.table: dict[int, dict] = {lead: {} for lead in self.plan}
        self.key_cap = key_cap
        #: blocks planned before any adaptive give-up shrank the plan
        self.planned = len(self.plan)
        self.hits = 0
        self.misses = 0
        #: dynamic instructions served from templates instead of the
        #: feed, in the cycle loop (CoreStats.fetched is its total)
        self.replayed = 0
        #: instructions replayed during functional fast-forward warmup
        self.ff_replayed = 0

    def stats(self) -> dict:
        """Counters for metrics/bench surfaces (never for results)."""
        # Slots hold int sentinels for keys seen once (not yet worth a
        # template); count only completed recordings.
        recorded = sum(1 for slot in self.table.values()
                       for value in slot.values()
                       if value.__class__ is tuple)
        return {
            "blocks_planned": self.planned,
            "blocks_active": len(self.plan),
            "keys_recorded": recorded,
            "hits": self.hits,
            "misses": self.misses,
            "replayed_insts": self.replayed,
            "warmup_replayed": self.ff_replayed,
        }
