"""``repro-equivalence``: the backend bit-exactness matrix.

Runs every workload (all 14 by default) through the reference machine
and the fast backend under the paper's methodology — identical warmup,
identical detailed window — and compares the *serialized* results
(:func:`repro.exec.serialize.result_to_dict`): every counter, the full
width histogram, the fluctuation tracker, and the power report must be
identical.  One divergent leaf anywhere fails the run.

Output is a per-workload diff table (status, cycles, committed, the
divergent result paths if any) plus an optional JSON document
(``--out``) the ``backend-equivalence`` CI job uploads as an artifact.
Exit status is the contract: 0 only when every workload matches.

Configurations beyond the baseline can be swept with ``--configs``
using the shared named-configuration catalog
(:func:`repro.core.config.named_configs`) — e.g. ``packing`` (Section 5
full packing), ``packing-replay`` (speculative replay packing), and
``no-detect`` (gating without load zero-detect) exercise the packing
and gating decision paths that a baseline-only comparison would leave
cold.

The CLI accepts the shared run-engine flag group
(:mod:`repro.exec.cli`) like every other repro tool.  ``--jobs`` runs
comparison cells in parallel worker processes and ``--timeout`` bounds
each cell; the cache and backend knobs are accepted for flag uniformity
but deliberately inert here — an equivalence *proof* always simulates
both backends fresh, recalling nothing.  ``--no-memo`` *is* live: it
turns off the fast backend's proof-carrying block memoizer, and CI runs
the matrix in both positions because each is its own bit-exactness
claim.
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ProcessPoolExecutor, TimeoutError \
    as FutureTimeout
from pathlib import Path

from repro.core.config import MachineConfig, named_configs
from repro.core.machine import Machine
from repro.exec.cli import add_engine_arguments, validate_engine_args
from repro.exec.serialize import dict_divergences, result_to_dict
from repro.fastsim.machine import FastMachine
from repro.perf.clock import perf_now
from repro.workloads.registry import all_workloads, get_workload, \
    resolve_warmup

#: Document schema for the ``--out`` artifact.
SCHEMA = "repro-equivalence/1"


def compare_one(workload_name: str, config: MachineConfig, scale: int,
                window: int | None, memo: bool = True) -> dict:
    """Run both backends on one (workload, config) cell; returns the
    comparison row (wall times are informational, never compared).
    ``memo`` gates the fast backend's proof-carrying block memoizer —
    the equivalence matrix is CI-gated in *both* positions, since the
    memoized and plain feeds are independent bit-exactness claims."""
    workload = get_workload(workload_name)
    warmup = resolve_warmup(workload, scale)
    insts = window or workload.window

    reference = Machine(workload.build(scale), config)
    reference.fast_forward(warmup)
    t0 = perf_now()
    ref_result = reference.run(max_insts=insts)
    ref_wall = perf_now() - t0

    fast = FastMachine(workload.build(scale), config, memo=memo)
    fast.fast_forward(warmup)
    t0 = perf_now()
    fast_result = fast.run(max_insts=insts)
    fast_wall = perf_now() - t0

    memo_stats = fast.memo_stats()
    ref_dict = result_to_dict(ref_result)
    divergences = dict_divergences(ref_dict, result_to_dict(fast_result))
    return {
        "workload": workload_name,
        "match": not divergences,
        "divergences": divergences,
        "cycles": ref_result.stats.cycles,
        "committed": ref_result.stats.committed,
        "ref_wall_seconds": round(ref_wall, 4),
        "fast_wall_seconds": round(fast_wall, 4),
        "speedup": round(ref_wall / fast_wall, 2) if fast_wall else None,
        "memo": memo,
        "memo_hit_rate": memo_stats["hit_rate"] if memo else None,
    }


def render_table(rows: list[dict]) -> str:
    """The per-workload diff table (plain text, artifact-friendly)."""
    lines = [f"{'workload':16s} {'status':>8s} {'cycles':>10s} "
             f"{'committed':>10s} {'ref':>7s} {'fast':>7s} {'x':>6s} "
             f"{'memo':>6s}  divergent paths"]
    for row in rows:
        status = "ok" if row["match"] else "DIVERGED"
        paths = ("-" if row["match"]
                 else ", ".join(row["divergences"][:6])
                 + (" ..." if len(row["divergences"]) > 6 else ""))
        speedup = (f"{row['speedup']:>5.1f}x"
                   if row["speedup"] is not None else f"{'-':>6s}")
        hit_rate = row.get("memo_hit_rate")
        memo_col = (f"{hit_rate:>5.1%}" if hit_rate is not None
                    else f"{'off':>6s}")
        lines.append(
            f"{row['workload']:16s} {status:>8s} {row['cycles']:>10,d} "
            f"{row['committed']:>10,d} {row['ref_wall_seconds']:>6.2f}s "
            f"{row['fast_wall_seconds']:>6.2f}s {speedup} {memo_col}"
            f"  {paths}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-equivalence",
        description="Prove the fast backend bit-exact against the "
                    "reference machine over the workload matrix.")
    parser.add_argument("--workloads", nargs="+", default=None,
                        metavar="NAME",
                        help="workloads to compare (default: all)")
    parser.add_argument("--configs", nargs="+", default=["baseline"],
                        choices=sorted(named_configs()),
                        metavar="CONFIG",
                        help="named machine configurations to sweep "
                             "(default: baseline; choices: "
                             + ", ".join(sorted(named_configs())) + ")")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--window", type=int, default=None,
                        metavar="INSTS",
                        help="cap the detailed window (default: each "
                             "workload's own window)")
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="write the comparison document as JSON "
                             "(the CI artifact)")
    add_engine_arguments(parser)
    return parser


def _run_cells(cells: list[tuple],
               jobs: int, timeout: float | None,
               progress) -> list[dict]:
    """Run comparison cells — serially, or across ``jobs`` worker
    processes (results merge in submission order, so the table and the
    artifact are identical either way)."""
    if jobs <= 1:
        rows = []
        for name, config, scale, window, memo in cells:
            progress(name)
            rows.append(compare_one(name, config, scale, window, memo))
        return rows
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(compare_one, name, config, scale, window,
                               memo)
                   for name, config, scale, window, memo in cells]
        rows = []
        for (name, *_rest), future in zip(cells, futures):
            progress(name)
            try:
                rows.append(future.result(timeout=timeout))
            except FutureTimeout:
                rows.append({
                    "workload": name, "match": False,
                    "divergences": [f"timed out after {timeout}s"],
                    "cycles": 0, "committed": 0,
                    "ref_wall_seconds": 0.0, "fast_wall_seconds": 0.0,
                    "speedup": None, "memo": None,
                    "memo_hit_rate": None,
                })
        return rows


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_engine_args(parser, args)
    names = (list(args.workloads) if args.workloads
             else [w.name for w in all_workloads()])
    configs = named_configs()

    sections: dict[str, list[dict]] = {}
    divergent = 0
    for config_name in args.configs:
        config = configs[config_name]

        def progress(name: str, _cfg: str = config_name) -> None:
            print(f"[equivalence] {_cfg}/{name}",
                  file=sys.stderr, flush=True)

        cells = [(name, config, args.scale, args.window,
                  not args.no_memo)
                 for name in names]
        rows = _run_cells(cells, args.jobs, args.timeout, progress)
        divergent += sum(1 for row in rows if not row["match"])
        sections[config_name] = rows
        print(f"\n== {config_name} "
              f"(config {config.fingerprint()[:10]}) ==")
        print(render_table(rows))

    total = sum(len(rows) for rows in sections.values())
    verdict = (f"backend-equivalence: {total - divergent}/{total} "
               f"matched, {divergent} divergent")
    print(f"\n{verdict}")

    if args.out is not None:
        doc = {
            "schema": SCHEMA,
            "scale": args.scale,
            "window": args.window,
            "memo": not args.no_memo,
            "divergent": divergent,
            "total": total,
            "configs": {
                name: {"config_fingerprint": configs[name].fingerprint(),
                       "workloads": rows}
                for name, rows in sections.items()
            },
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
        print(f"wrote {args.out}")

    if divergent:
        print(f"FAIL: {verdict}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
