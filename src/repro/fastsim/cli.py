"""``repro-equivalence``: the backend bit-exactness matrix.

Runs every workload (all 14 by default) through the reference machine
and the fast backend under the paper's methodology — identical warmup,
identical detailed window — and compares the *serialized* results
(:func:`repro.exec.serialize.result_to_dict`): every counter, the full
width histogram, the fluctuation tracker, and the power report must be
identical.  One divergent leaf anywhere fails the run.

Output is a per-workload diff table (status, cycles, committed, the
divergent result paths if any) plus an optional JSON document
(``--out``) the ``backend-equivalence`` CI job uploads as an artifact.
Exit status is the contract: 0 only when every workload matches.

Configurations beyond the baseline can be swept with ``--configs``:
``packing`` (Section 5 full packing), ``packing-replay`` (speculative
replay packing), and ``no-detect`` (gating without load zero-detect)
exercise the packing and gating decision paths that a baseline-only
comparison would leave cold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import Machine
from repro.exec.serialize import dict_divergences, result_to_dict
from repro.fastsim.machine import FastMachine
from repro.perf.clock import perf_now
from repro.power.gating import GatingPolicy
from repro.workloads.registry import all_workloads, get_workload, \
    resolve_warmup

#: Document schema for the ``--out`` artifact.
SCHEMA = "repro-equivalence/1"


def _named_configs() -> dict[str, MachineConfig]:
    return {
        "baseline": BASELINE,
        "packing": BASELINE.with_packing(),
        "packing-replay": BASELINE.with_packing(replay=True),
        "no-detect": BASELINE.with_gating(
            GatingPolicy(detect_loads=False)),
    }


def compare_one(workload_name: str, config: MachineConfig, scale: int,
                window: int | None) -> dict:
    """Run both backends on one (workload, config) cell; returns the
    comparison row (wall times are informational, never compared)."""
    workload = get_workload(workload_name)
    warmup = resolve_warmup(workload, scale)
    insts = window or workload.window

    reference = Machine(workload.build(scale), config)
    reference.fast_forward(warmup)
    t0 = perf_now()
    ref_result = reference.run(max_insts=insts)
    ref_wall = perf_now() - t0

    fast = FastMachine(workload.build(scale), config)
    fast.fast_forward(warmup)
    t0 = perf_now()
    fast_result = fast.run(max_insts=insts)
    fast_wall = perf_now() - t0

    ref_dict = result_to_dict(ref_result)
    divergences = dict_divergences(ref_dict, result_to_dict(fast_result))
    return {
        "workload": workload_name,
        "match": not divergences,
        "divergences": divergences,
        "cycles": ref_result.stats.cycles,
        "committed": ref_result.stats.committed,
        "ref_wall_seconds": round(ref_wall, 4),
        "fast_wall_seconds": round(fast_wall, 4),
        "speedup": round(ref_wall / fast_wall, 2) if fast_wall else None,
    }


def render_table(rows: list[dict]) -> str:
    """The per-workload diff table (plain text, artifact-friendly)."""
    lines = [f"{'workload':16s} {'status':>8s} {'cycles':>10s} "
             f"{'committed':>10s} {'ref':>7s} {'fast':>7s} {'x':>6s}  "
             f"divergent paths"]
    for row in rows:
        status = "ok" if row["match"] else "DIVERGED"
        paths = ("-" if row["match"]
                 else ", ".join(row["divergences"][:6])
                 + (" ..." if len(row["divergences"]) > 6 else ""))
        lines.append(
            f"{row['workload']:16s} {status:>8s} {row['cycles']:>10,d} "
            f"{row['committed']:>10,d} {row['ref_wall_seconds']:>6.2f}s "
            f"{row['fast_wall_seconds']:>6.2f}s {row['speedup']:>5.1f}x"
            f"  {paths}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-equivalence",
        description="Prove the fast backend bit-exact against the "
                    "reference machine over the workload matrix.")
    parser.add_argument("--workloads", nargs="+", default=None,
                        metavar="NAME",
                        help="workloads to compare (default: all)")
    parser.add_argument("--configs", nargs="+", default=["baseline"],
                        choices=sorted(_named_configs()),
                        metavar="CONFIG",
                        help="named machine configurations to sweep "
                             "(default: baseline; choices: "
                             + ", ".join(sorted(_named_configs())) + ")")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--window", type=int, default=None,
                        metavar="INSTS",
                        help="cap the detailed window (default: each "
                             "workload's own window)")
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="write the comparison document as JSON "
                             "(the CI artifact)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    names = (list(args.workloads) if args.workloads
             else [w.name for w in all_workloads()])
    configs = _named_configs()

    sections: dict[str, list[dict]] = {}
    divergent = 0
    for config_name in args.configs:
        config = configs[config_name]
        rows = []
        for name in names:
            print(f"[equivalence] {config_name}/{name}",
                  file=sys.stderr, flush=True)
            row = compare_one(name, config, args.scale, args.window)
            rows.append(row)
            if not row["match"]:
                divergent += 1
        sections[config_name] = rows
        print(f"\n== {config_name} "
              f"(config {config.fingerprint()[:10]}) ==")
        print(render_table(rows))

    total = sum(len(rows) for rows in sections.values())
    verdict = (f"backend-equivalence: {total - divergent}/{total} "
               f"matched, {divergent} divergent")
    print(f"\n{verdict}")

    if args.out is not None:
        doc = {
            "schema": SCHEMA,
            "scale": args.scale,
            "window": args.window,
            "divergent": divergent,
            "total": total,
            "configs": {
                name: {"config_fingerprint": configs[name].fingerprint(),
                       "workloads": rows}
                for name, rows in sections.items()
            },
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
        print(f"wrote {args.out}")

    if divergent:
        print(f"FAIL: {verdict}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
