"""Static-program precompilation for the fast backend.

The reference machine re-derives per-instruction facts (op class,
source/destination registers, immediates, memory size, packability …)
from :class:`~repro.isa.instruction.Instruction` objects on every
dynamic instance.  :func:`compile_program` derives them once per
*static* instruction into flat parallel lists indexed by instruction
index, so the hot loop does integer list lookups only.

Row ``n`` (one past the last instruction) is a synthetic HALT: the feed
models wrong-path fetches off the program end as HALT instructions, so
any out-of-range index clamps to that row for table lookups while the
raw index still drives PCs and fetch-break checks.
"""

from __future__ import annotations

from repro.fastsim.capture import CLASS_CODE, OPCODE_CODE
from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    MEM_SIZE,
    PACKABLE_CLASSES,
    Opcode,
    OpClass,
)
from repro.isa.registers import ZERO_REG
from repro.isa.semantics import BRANCH_FNS, COMPUTE_FNS, to_unsigned
from repro.bitwidth.tags import TAG_NARROW16, tag_code_of_value
from repro.packing.pack import REPLAY_OPS

# Execution kinds dispatched on in the fast feed.
K_OPERATE = 0
K_LOAD = 1
K_STORE = 2
K_COND = 3     # conditional branch
K_BR = 4
K_BSR = 5
K_JMP = 6
K_JSR = 7
K_RET = 8
K_NOP = 9
K_HALT = 10

_KIND_OF_OPCODE = {
    Opcode.BR: K_BR, Opcode.BSR: K_BSR, Opcode.JMP: K_JMP,
    Opcode.JSR: K_JSR, Opcode.RET: K_RET, Opcode.NOP: K_NOP,
    Opcode.HALT: K_HALT,
}

_OPERATE_CLASSES = (OpClass.INT_ARITH, OpClass.INT_MULT,
                    OpClass.INT_LOGIC, OpClass.INT_SHIFT)


class CompiledProgram:
    """Flat per-instruction decode tables (see module docstring)."""

    __slots__ = (
        "n", "base_pc", "entry",
        "kind", "opcode", "opc_code", "op_class", "cls_code", "cls_value",
        "ra31", "rb31", "rd31", "rd_w", "has_rb", "imm_u", "imm_tag",
        "target",
        "srcs", "nsrc", "src0", "src1", "src2", "fn", "bfn",
        "dest", "mem_size", "is_mem", "is_load", "is_store",
        "is_branch", "is_conditional", "needs_mult", "measured",
        "tracked", "produces", "packable", "replay_op", "is_ldl",
        "frow", "drow", "crow", "irow",
    )

    def __init__(self, program: Program) -> None:
        insts = list(program.instructions)
        insts.append(Instruction(Opcode.HALT))   # out-of-range sentinel
        self.n = len(program.instructions)
        self.base_pc = program.base_pc
        self.entry = program.entry

        self.kind = []
        self.opcode = []          # Opcode enum (for compute())
        self.opc_code = []        # capture code
        self.op_class = []        # OpClass enum
        self.cls_code = []        # capture code
        self.cls_value = []       # OpClass.value string (class mix keys)
        self.ra31 = []            # ra with None mapped to R31
        self.rb31 = []
        self.rd31 = []            # rd with None mapped to R31 (CMOV read)
        self.rd_w = []            # writeback target, -1 for None/R31
        self.has_rb = []          # rb present (register second operand)
        self.imm_u = []           # unsigned immediate (0 when absent)
        self.imm_tag = []         # width-tag code of the immediate operand
        self.target = []          # branch-target index (fall-through if None)
        self.srcs = []            # src_regs() tuple
        self.nsrc = []            # len(srcs), flattened for the hot loop
        self.src0 = []            # srcs[0] (0 when absent)
        self.src1 = []            # srcs[1] (0 when absent)
        self.src2 = []            # srcs[2] (CMOV dest read; 0 when absent)
        self.fn = []              # COMPUTE_FNS entry (None for non-operate)
        self.bfn = []             # BRANCH_FNS entry (None for non-cond)
        self.dest = []            # dest_reg(), -1 for None
        self.mem_size = []
        self.is_mem = []
        self.is_load = []
        self.is_store = []
        self.is_branch = []
        self.is_conditional = []
        self.needs_mult = []
        self.measured = []        # sampled by the instruments at issue
        self.tracked = []         # width-tracked (measured minus jumps)
        self.produces = []        # writes a result (static per opcode)
        self.packable = []        # class eligible for full packing
        self.replay_op = []       # opcode eligible for replay packing
        self.is_ldl = []          # LDL sign-extends its loaded word

        from repro.stats.widths import WIDTH_TRACKED_CLASSES

        for index, inst in enumerate(insts):
            op = inst.opcode
            cls = inst.op_class
            if cls in _OPERATE_CLASSES:
                kind = K_OPERATE
            elif cls is OpClass.LOAD:
                kind = K_LOAD
            elif cls is OpClass.STORE:
                kind = K_STORE
            elif inst.is_conditional:
                kind = K_COND
            else:
                kind = _KIND_OF_OPCODE[op]
            self.kind.append(kind)
            self.opcode.append(op)
            self.opc_code.append(OPCODE_CODE[op])
            self.op_class.append(cls)
            self.cls_code.append(CLASS_CODE[cls])
            self.cls_value.append(cls.value)
            self.ra31.append(inst.ra if inst.ra is not None else ZERO_REG)
            self.rb31.append(inst.rb if inst.rb is not None else ZERO_REG)
            self.rd31.append(inst.rd if inst.rd is not None else ZERO_REG)
            dest = inst.dest_reg()
            self.rd_w.append(dest if dest is not None else -1)
            self.has_rb.append(inst.rb is not None)
            imm_u = to_unsigned(inst.imm) if inst.imm is not None else 0
            self.imm_u.append(imm_u)
            self.imm_tag.append(tag_code_of_value(imm_u) if imm_u
                                else TAG_NARROW16)
            self.target.append(inst.target if inst.target is not None
                               else index + 1)
            srcs = inst.src_regs()
            self.srcs.append(srcs)
            self.nsrc.append(len(srcs))
            self.src0.append(srcs[0] if srcs else 0)
            self.src1.append(srcs[1] if len(srcs) > 1 else 0)
            self.src2.append(srcs[2] if len(srcs) > 2 else 0)
            self.fn.append(COMPUTE_FNS.get(op))
            self.bfn.append(BRANCH_FNS.get(op))
            self.dest.append(dest if dest is not None else -1)
            self.mem_size.append(MEM_SIZE.get(op, 0))
            self.is_mem.append(inst.is_mem)
            self.is_load.append(inst.is_load)
            self.is_store.append(inst.is_store)
            self.is_branch.append(inst.is_branch)
            self.is_conditional.append(op in CONDITIONAL_BRANCHES)
            self.needs_mult.append(cls is OpClass.INT_MULT)
            tracked = cls in WIDTH_TRACKED_CLASSES
            self.tracked.append(tracked)
            self.measured.append(tracked or cls is OpClass.JUMP)
            self.produces.append(
                kind in (K_OPERATE, K_LOAD) or op in (Opcode.BSR, Opcode.JSR))
            self.packable.append(cls in PACKABLE_CLASSES)
            self.replay_op.append(op in REPLAY_OPS)
            self.is_ldl.append(op is Opcode.LDL)

        # Per-stage fused rows: every column a pipeline stage reads for
        # one instruction, bundled into a single tuple, so the hot loop
        # pays one list subscript + one tuple unpack instead of one
        # subscript per column.
        self.frow = []   # fetch operands (shape depends on kind)
        self.drow = []   # dispatch: deps, queues, producer bookkeeping
        self.crow = []   # commit: retire bookkeeping
        self.irow = []   # issue: execute, capture and packing facts
        for i in range(len(insts)):
            kind = self.kind[i]
            if kind == K_OPERATE:
                frow = (self.ra31[i], self.has_rb[i], self.rb31[i],
                        self.imm_u[i], self.imm_tag[i], self.fn[i],
                        self.rd31[i], self.rd_w[i])
            elif kind == K_LOAD:
                frow = (self.rb31[i], self.imm_u[i], self.imm_tag[i],
                        self.mem_size[i], self.is_ldl[i], self.rd_w[i])
            elif kind == K_STORE:
                frow = (self.rb31[i], self.imm_u[i], self.imm_tag[i],
                        self.ra31[i], self.mem_size[i])
            elif kind == K_COND:
                frow = (self.ra31[i], self.has_rb[i], self.rb31[i],
                        self.imm_u[i], self.imm_tag[i], self.bfn[i],
                        self.target[i])
            else:
                frow = None          # rare kinds keep per-column reads
            self.frow.append(frow)
            self.drow.append((self.kind[i], self.is_mem[i],
                              self.is_load[i], self.is_store[i],
                              self.dest[i], self.nsrc[i], self.src0[i],
                              self.src1[i], self.src2[i],
                              self.mem_size[i]))
            self.crow.append((self.kind[i], self.is_mem[i],
                              self.is_store[i], self.cls_value[i],
                              self.is_branch[i],
                              self.is_conditional[i]))
            self.irow.append((self.needs_mult[i], self.is_load[i],
                              self.measured[i], self.cls_code[i],
                              self.opc_code[i], self.produces[i],
                              self.packable[i], self.replay_op[i]))


def compile_program(program: Program) -> CompiledProgram:
    return CompiledProgram(program)
