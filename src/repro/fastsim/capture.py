"""Columnar dynamic-trace capture (phase 1 of the fast backend).

A :class:`TraceCapture` accumulates one row per *measured* operation —
the exact stream the reference machine's instruments observe at issue
time (width-tracked classes plus jumps, wrong path and replay re-issues
included).  Rows are appended as plain Python ints and converted to
numpy columns once, when the replay phase asks for them.

The capture is also a valid sink for
:meth:`repro.core.machine.Machine.attach_capture`, so the reference
machine can produce a trace of its own measurement stream; the
round-trip tests replay such traces to prove the vectorized phase-2
paths reproduce the reference instruments bit-exactly.
"""

from __future__ import annotations

from repro.bitwidth.tags import tag_code
from repro.isa.opcodes import Opcode, OpClass

#: Canonical code orders shared by capture and replay: a class/opcode
#: code is its position in these tuples.
CLASS_ORDER: tuple[OpClass, ...] = tuple(OpClass)
OPCODE_ORDER: tuple[Opcode, ...] = tuple(Opcode)

CLASS_CODE: dict[OpClass, int] = {c: i for i, c in enumerate(CLASS_ORDER)}
OPCODE_CODE: dict[Opcode, int] = {o: i for i, o in enumerate(OPCODE_ORDER)}


class TraceCapture:
    """Row store for the measured-operation stream.

    Rows are 9-tuples ``(cls, opc, pc, a, b, tag_a, tag_b, from_load,
    produces)`` — one list append per measured operation on the hot
    path; :meth:`columns` transposes to numpy columns once at replay.
    """

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: list[tuple] = []

    def __len__(self) -> int:
        return len(self.rows)

    def add(self, cls_code: int, opc_code: int, pc: int, a: int, b: int,
            tag_a: int, tag_b: int, from_load: bool,
            produces: bool) -> None:
        """Append one measured operation."""
        self.rows.append((cls_code, opc_code, pc, a, b, tag_a, tag_b,
                          from_load, produces))

    def __call__(self, dyn) -> None:
        """``Machine.attach_capture`` sink: capture a measured
        :class:`~repro.core.feed.DynInst` from the reference machine."""
        self.rows.append((CLASS_CODE[dyn.op_class],
                          OPCODE_CODE[dyn.inst.opcode],
                          dyn.pc, dyn.a_val, dyn.b_val,
                          tag_code(dyn.tag_a), tag_code(dyn.tag_b),
                          dyn.operand_from_load, dyn.result is not None))

    def columns(self) -> dict:
        """Materialize the trace as numpy columns for phase-2 replay."""
        import numpy as np

        rows = self.rows
        n = len(rows)
        # One C-level transpose beats nine generator passes over the
        # row list (the row store is a hot-loop artifact; this runs
        # once per simulation but over every measured operation).
        (cls, opc, pc, a, b, tag_a, tag_b, from_load, produces) = (
            zip(*rows) if rows else ((),) * 9)

        def col(values, dtype):
            return np.fromiter(values, dtype, count=n)

        return {
            "cls": col(cls, np.int64),
            "opc": col(opc, np.int64),
            "pc": col(pc, np.int64),
            "a": col(a, np.uint64),
            "b": col(b, np.uint64),
            "tag_a": col(tag_a, np.int8),
            "tag_b": col(tag_b, np.int8),
            "from_load": col(from_load, bool),
            "produces": col(produces, bool),
        }
