"""Fused functional + timing fast core (phase 1 of the fast backend).

:class:`FastMachine` is a cycle-accurate reimplementation of
:class:`~repro.core.machine.Machine` + :class:`~repro.core.feed.Feed`
optimized SimpleScalar-style for raw speed:

* the static program is precompiled once into flat decode tables
  (:mod:`repro.fastsim.compile`) so the hot loop does integer list
  indexing instead of attribute/dataclass traffic;
* a dynamic instruction is one plain Python list (``E_*`` field
  indices below) instead of a ``DynInst`` + ``RUUEntry`` pair;
* width tags are small ints (:data:`~repro.bitwidth.tags.TAG_WIDE` /
  ``TAG_NARROW33`` / ``TAG_NARROW16``) instead of ``WidthTag`` objects;
* the per-op instruments (histogram / fluctuation / power dicts) are
  *not* updated in the loop — each measured operation appends one row
  to a columnar :class:`~repro.fastsim.capture.TraceCapture`, and the
  vectorized phase 2 (:mod:`repro.fastsim.replay`) rebuilds the
  instruments from the columns afterwards;
* the whole cycle loop is one fused function (:meth:`FastMachine._loop`)
  with every hot structure bound to a local: statistics accumulate in
  local ints flushed once at loop exit, and trace rows append through
  pre-bound list methods;
* issue is wakeup-driven instead of scan-driven: each entry carries a
  count of still-incomplete producers (``E_NWAIT``) and each producer a
  list of waiting consumers (``E_CONS``); writeback decrements the
  counters and pushes newly ready entries onto a seq-ordered heap, so
  the issue stage touches only ready work — never the whole window.
  This selects the identical issue set in the identical order as the
  reference's age-order scan, because that scan skips every entry with
  an incomplete producer anyway;
* consecutive accesses to the same cache block and page skip the
  hierarchy walk: the previous access proved L1+TLB residency at MRU,
  so the walk would return ``l1_latency`` and change nothing but
  hit/dirty counters (cache *latencies*, and therefore cycles, are
  unaffected; only ``CacheStats`` counters — which no
  :class:`~repro.core.machine.RunResult` field reads — drift);
* statically *proven* basic-block bodies are memoized
  (:mod:`repro.fastsim.blockcache`): on re-entry with an identical
  live-in key the fetch stage replays recorded entry templates and a
  register delta instead of re-executing the functional feed.  Replayed
  entries flow through the unchanged dispatch/issue/writeback/commit
  stages, so every timing decision, capture row, and packing/replay
  outcome is reproduced rather than approximated.  ``memo=False``
  (the RunContext ``--no-memo`` escape hatch) disables it.

Everything the timing model decides (fetch breaks, dependences, issue
selection, packing, replay traps, misprediction recovery, cache
latencies) is replicated decision-for-decision, because the measured
stream itself is timing-dependent: wrong-path depth depends on when
branches resolve.  The contract — enforced by ``--backend both``, the
CI equivalence matrix, and the round-trip tests — is that
``FastMachine.run`` serializes identically to ``Machine.run``.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush

from repro.asm.layout import PAGE_BYTES as _PAGE_BYTES
from repro.bitwidth.tags import tag_code_of_value
from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.branch.predictors import (
    CombiningPredictor,
    PerfectPredictor,
    make_predictor,
)
from repro.core.config import BASELINE, MachineConfig
from repro.core.machine import RunResult
from repro.fastsim.capture import TraceCapture
from repro.fastsim.replay import build_result
from repro.fastsim.compile import (
    K_BSR,
    K_COND,
    K_HALT,
    K_JSR,
    K_LOAD,
    K_NOP,
    K_OPERATE,
    K_RET,
    K_STORE,
    compile_program,
)
from repro.isa.instruction import Program
from repro.isa.registers import NUM_INT_REGS
from repro.isa.semantics import branch_taken, compute, sext
from repro.memory.backing import MainMemory, SpeculativeMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats.counters import CoreStats

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF

# Field indices into the per-instruction entry list (one flat list per
# dynamic instruction, covering what DynInst + RUUEntry hold).  The
# fused loop uses these *numerically* — keep the literal values in its
# comments in sync.
E_SEQ = 0       # dynamic sequence number
E_CIDX = 1      # decode-table index (out-of-range clamped to sentinel)
E_RAW = 2       # raw static index (drives PCs and fetch breaks)
E_PC = 3        # simulated byte address
E_NEXT = 4      # index the feed moved to next
E_FETCH = 5     # cycle the instruction arrived from the I-cache
E_DISP = 6      # dispatch cycle
E_CONS = 7      # consumer entries awaiting this result (None when none)
E_ISSUED = 8
E_COMP = 9      # completed
E_SQUASH = 10
E_PACKED = 11
E_RPACKED = 12  # speculatively packed with a wide operand
E_RPEND = 13    # replay-trapped, awaiting full-width re-issue
E_RREADY = 14   # cycle the replay re-issue becomes eligible
E_NOPACK = 15   # excluded from packing (post-replay)
E_A = 16        # first ALU operand (uint64)
E_B = 17        # second ALU operand (uint64)
E_TA = 18       # width-tag code of a
E_TB = 19       # width-tag code of b
E_FL = 20       # an operand came straight from a load
E_RES = 21      # result value (None when no result)
E_ADDR = 22     # effective memory address (None for non-mem)
E_MIS = 23      # first wrong prediction on the good path
E_SPEC = 24     # executed on the wrong path
E_ROW = 25      # capture row of the latest measurement (-1: unmeasured)
E_DEAD = 26     # retired or squashed (producer bookkeeping)
E_NWAIT = 27    # count of still-incomplete producers (wakeup counter)


class FastMachine:
    """One fast-backend simulated processor bound to one program."""

    def __init__(self, program: Program,
                 config: MachineConfig = BASELINE,
                 memo: bool = True) -> None:
        self.program = program
        self.config = config
        self.cp = compile_program(program)
        self.stats = CoreStats()
        self.capture = TraceCapture()
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.done = False

        # ---- block memoization (proof-carrying; see blockcache) -----
        self._memo = None
        if memo:
            from repro.fastsim.blockcache import BlockMemo
            self._memo = BlockMemo(
                program,
                require_trap_free=(config.packing.enabled
                                   and config.packing.replay))
        # pending replay templates (survive _loop exits mid-block)
        self._rp_rows: tuple = ()
        self._rp_i = 0
        # in-flight recording (survives _loop exits mid-block)
        self._rec_rows: list | None = None
        self._rec_left = 0
        self._rec_slot: dict | None = None
        self._rec_key: tuple | None = None
        self._rec_defs: tuple = ()

        # ---- functional (feed) state --------------------------------
        self._memory = MainMemory(program.image)
        self._spec_memory = SpeculativeMemory(self._memory)
        self._predictor = make_predictor(config.predictor)
        self._perfect = isinstance(self._predictor, PerfectPredictor)
        self._btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self._ras = ReturnAddressStack(config.ras_entries)
        self._regs = [0] * NUM_INT_REGS
        self._tags = [2] * NUM_INT_REGS          # TAG_NARROW16 == ZERO_TAG
        self._from_load = [False] * NUM_INT_REGS
        self._detect_loads = config.gating.detect_loads
        self._fetch_index = self.cp.entry
        self._seq = 0
        self._spec = False
        self._halted = False
        self._fast_mode = False
        self._checkpoint = None

        # ---- timing state -------------------------------------------
        self._entries: deque = deque()    # in-flight window, age order
        self._ready: list = []            # issue-ready heap of (seq, entry)
        self._stores: list = []           # dispatched stores, age order
        self._producer: list = [None] * NUM_INT_REGS   # reg -> entry
        self._completions: dict = {}      # cycle -> [entry]
        self._fetchq: deque = deque()
        self._lsq = 0
        self._cycle = 0
        self._fetch_stall_until = 0
        self._fetch_resume = 0

        # rows the packing logic touched, for the phase-2 eligibility
        # cross-check (every packed row must be a vectorized candidate)
        self._packed_rows: list = []
        self._replay_rows: list = []

        # ---- consecutive same-block/page access shortcut ------------
        hcfg = config.hierarchy
        self._l1_lat = hcfg.l1_latency
        self._blk_bytes = hcfg.block_bytes
        self._page_bytes = self.hierarchy.itlb.page_bytes
        self._iblk = self._ipage = -1
        self._dblk = self._dpage = -1

    # ---------------------------------------------------------- caches

    def _ifetch(self, pc: int) -> int:
        """I-side access latency with the same-block shortcut."""
        blk = pc // self._blk_bytes
        page = pc // self._page_bytes
        if blk == self._iblk and page == self._ipage:
            return self._l1_lat
        latency = self.hierarchy.fetch_instruction(pc)
        if latency == self._l1_lat:
            # L1 hit + TLB hit: both lines now sit at MRU, so an
            # immediately following same-block access can only repeat
            # this outcome.
            self._iblk, self._ipage = blk, page
        else:
            self._iblk = -1
        return latency

    def _daccess(self, addr: int, is_write: bool = False) -> int:
        """D-side access latency with the same-block shortcut."""
        blk = addr // self._blk_bytes
        page = addr // self._page_bytes
        if blk == self._dblk and page == self._dpage:
            return self._l1_lat
        latency = self.hierarchy.access_data(addr, is_write)
        if latency == self._l1_lat:
            self._dblk, self._dpage = blk, page
        else:
            self._dblk = -1
        return latency

    # -------------------------------------------------- functional feed

    def _next_inst(self):
        """Fetch, predict, and functionally execute one instruction —
        the fast twin of :meth:`repro.core.feed.Feed.next`.  Returns a
        fresh entry list, or None when the feed cannot supply more.

        Only :meth:`fast_forward` calls this; the cycle loop inlines the
        same logic (kept in lockstep — any change here must be mirrored
        in :meth:`_loop`).
        """
        if self._halted:
            return None
        cp = self.cp
        raw = self._fetch_index
        cidx = raw if 0 <= raw < cp.n else cp.n
        kind = cp.kind[cidx]
        spec = self._spec
        if kind == K_HALT and spec:
            return None   # wrong path fell off the program
        seq = self._seq
        self._seq = seq + 1
        pc = cp.base_pc + raw * 4
        regs = self._regs
        tags = self._tags
        fload = self._from_load
        a = 0
        b = 0
        ta = 2
        tb = 2
        fl = False
        res = None
        addr = None
        mis = False
        nxt = raw + 1

        if kind == K_OPERATE:
            ra = cp.ra31[cidx]
            a = regs[ra]
            ta = tags[ra]
            fl = ra != 31 and fload[ra]
            if cp.has_rb[cidx]:
                rb = cp.rb31[cidx]
                b = regs[rb]
                tb = tags[rb]
                fl = fl or (rb != 31 and fload[rb])
            else:
                b = cp.imm_u[cidx]
                tb = cp.imm_tag[cidx]
            res = compute(cp.opcode[cidx], a, b, regs[cp.rd31[cidx]])
            rd = cp.rd_w[cidx]
            if rd >= 0:
                regs[rd] = res
                fload[rd] = False
                tags[rd] = tag_code_of_value(res)
        elif kind == K_LOAD:
            rb = cp.rb31[cidx]
            a = regs[rb]
            ta = tags[rb]
            fl = rb != 31 and fload[rb]
            b = cp.imm_u[cidx]
            tb = cp.imm_tag[cidx]
            addr = (a + b) & _MASK64
            mem = self._spec_memory if spec else self._memory
            res = mem.load(addr, cp.mem_size[cidx])
            if cp.is_ldl[cidx]:
                res = sext(res, 32)
            rd = cp.rd_w[cidx]
            if rd >= 0:
                regs[rd] = res
                fload[rd] = True
                tags[rd] = (tag_code_of_value(res) if self._detect_loads
                            else 0)   # no zero-detect: tag unknown
        elif kind == K_STORE:
            rb = cp.rb31[cidx]
            a = regs[rb]
            ta = tags[rb]
            fl = rb != 31 and fload[rb]
            b = cp.imm_u[cidx]
            tb = cp.imm_tag[cidx]
            addr = (a + b) & _MASK64
            mem = self._spec_memory if spec else self._memory
            mem.store(addr, regs[cp.ra31[cidx]], cp.mem_size[cidx])
        elif kind == K_COND:
            ra = cp.ra31[cidx]
            a = regs[ra]
            ta = tags[ra]
            fl = ra != 31 and fload[ra]
            if cp.has_rb[cidx]:
                rb = cp.rb31[cidx]
                b = regs[rb]
                tb = tags[rb]
                fl = fl or (rb != 31 and fload[rb])
            else:
                b = cp.imm_u[cidx]
                tb = cp.imm_tag[cidx]
            taken = branch_taken(cp.opcode[cidx], a)
            actual = cp.target[cidx] if taken else raw + 1
            if spec:
                # Wrong-path branch: consult but never train.
                ptaken = self._predictor.lookup(pc)
            else:
                ptaken = self._predictor.predict(pc, taken)
                self._predictor.update(pc, taken)
            pred = cp.target[cidx] if ptaken else raw + 1
            mis, nxt = self._control_tail(actual, pred)
        elif kind == K_NOP or kind == K_HALT:
            pass
        elif kind <= K_BSR:   # K_BR, K_BSR: direct, known at decode
            actual = cp.target[cidx]
            if kind == K_BSR:
                return_pc = cp.base_pc + (raw + 1) * 4
                res = return_pc
                rd = cp.rd_w[cidx]
                if rd >= 0:
                    regs[rd] = res
                    fload[rd] = False
                    tags[rd] = tag_code_of_value(res)
                if not spec:
                    self._ras.push(return_pc)
            mis, nxt = self._control_tail(actual, actual)
        else:                 # K_JMP, K_JSR, K_RET: indirect
            rb = cp.rb31[cidx]
            target_pc = regs[rb]
            a = target_pc
            ta = tags[rb]
            base_pc = cp.base_pc
            actual = (target_pc - base_pc) // 4
            return_pc = base_pc + (raw + 1) * 4
            if kind == K_RET:
                ppc = self._ras.pop() if not spec else None
            else:
                ppc = self._btb.lookup(pc)
                if kind == K_JSR and not spec:
                    self._ras.push(return_pc)
            if not spec:
                self._btb.update(pc, target_pc)
            pred = raw + 1 if ppc is None else (ppc - base_pc) // 4
            if kind == K_JSR:
                res = return_pc
                rd = cp.rd_w[cidx]
                if rd >= 0:
                    regs[rd] = res
                    fload[rd] = False
                    tags[rd] = tag_code_of_value(res)
            mis, nxt = self._control_tail(actual, pred)

        self._fetch_index = nxt
        if kind == K_HALT and not spec:
            self._halted = True
        return [seq, cidx, raw, pc, nxt, -1, -1, None, False, False, False,
                False, False, False, -1, False, a, b, ta, tb, fl, res,
                addr, mis, spec, -1, False, 0]

    def _control_tail(self, actual: int, pred: int):
        """Shared resolution of a control transfer: (mispredicted,
        next_index), checkpointing on a first wrong prediction."""
        if self._perfect:
            pred = actual
        if self._fast_mode:
            # Warmup: train, record the would-be outcome, follow truth.
            return pred != actual, actual
        if self._spec:
            # Deeper mispredictions are irrelevant; follow prediction.
            return False, pred
        if pred != actual:
            self._checkpoint = (list(self._regs), list(self._tags),
                                list(self._from_load), actual)
            self._spec = True
            return True, pred
        return False, actual

    # --------------------------------------------------------------- run

    def _adapt_give_up(self, plan: list, leader: int) -> bool:
        """Bump one block's miss counter; drop the block from the memo
        plan when its hits have not kept pace (see
        :data:`repro.fastsim.blockcache.ADAPT_PROBES`).  Returns True
        when the block was dropped."""
        from repro.fastsim.blockcache import ADAPT_MIN_HITS, ADAPT_PROBES
        nm = plan[4] + 1
        plan[4] = nm
        if nm % ADAPT_PROBES or plan[5] >= max(ADAPT_MIN_HITS, nm >> 4):
            return False
        memo = self._memo
        del memo.plan[leader]
        del memo.table[leader]
        return True

    def fast_forward(self, instructions: int) -> int:
        """Warm caches and predictors functionally (Section 3.2).

        Memoized block bodies replay here too: a hit applies the
        recorded register delta and touches the I/D caches with the
        recorded PCs/addresses — the only side effects the functional
        body would have had (it contains no control transfers and no
        stores, so predictor/BTB/RAS and memory are untouched).
        """
        self._fast_mode = True
        executed = 0
        cp_is_store = self.cp.is_store
        memo = self._memo
        rec_rows: list | None = None
        rec_left = 0
        rec_slot: dict = {}
        rec_key: tuple = ()
        rec_defs: tuple = ()
        while executed < instructions:
            if memo is not None and not rec_left and not self._halted \
                    and not self._spec:
                plan = memo.plan.get(self._fetch_index)
                if plan is not None:
                    body_len, ue, defs, _has_loads = plan[:4]
                    if body_len <= instructions - executed:
                        regs = self._regs
                        tags = self._tags
                        fload = self._from_load
                        leader = self._fetch_index
                        nue = len(ue)
                        if nue == 1:
                            r0 = ue[0]
                            key = (regs[r0], tags[r0], fload[r0])
                        elif nue == 2:
                            r0, r1 = ue
                            key = (regs[r0], tags[r0], fload[r0],
                                   regs[r1], tags[r1], fload[r1])
                        else:
                            key = ()
                            for r0 in ue:
                                key += (regs[r0], tags[r0], fload[r0])
                        slot = memo.table[leader]
                        found = slot.get(key)
                        if found is not None:
                            if found.__class__ is tuple:
                                rows, delta = found
                                for rd, val, tag, flb in delta:
                                    regs[rd] = val
                                    tags[rd] = tag
                                    fload[rd] = flb
                                self._fetch_index = leader + body_len
                                self._seq += body_len
                                ifetch = self._ifetch
                                daccess = self._daccess
                                for t in rows:
                                    ifetch(t[3])
                                    addr = t[22]
                                    if addr is not None:
                                        daccess(addr)
                                executed += body_len
                                plan[5] += 1
                                memo.hits += 1
                                memo.ff_replayed += body_len
                                continue
                            # Second sighting: record this execution.
                            memo.misses += 1
                            if not self._adapt_give_up(plan, leader):
                                rec_rows = []
                                rec_left = body_len
                                rec_slot = slot
                                rec_key = key
                                rec_defs = defs
                        elif len(slot) < memo.key_cap:
                            # First sighting: mark only (keys seen once
                            # never repay recording a template).
                            memo.misses += 1
                            if not self._adapt_give_up(plan, leader):
                                slot[key] = 1
            e = self._next_inst()
            if e is None:
                break
            self._ifetch(e[E_PC])
            addr = e[E_ADDR]
            if addr is not None:
                self._daccess(addr, is_write=cp_is_store[e[E_CIDX]])
            executed += 1
            if rec_left:
                rec_rows.append(e[:])
                rec_left -= 1
                if not rec_left:
                    regs = self._regs
                    tags = self._tags
                    fload = self._from_load
                    rec_slot[rec_key] = (
                        tuple(rec_rows),
                        tuple((r, regs[r], tags[r], fload[r])
                              for r in rec_defs))
                    rec_rows = None
        self._fast_mode = False
        return executed

    def run(self, max_insts: int | None = None) -> RunResult:
        """Simulate until the program halts (or ``max_insts`` commit),
        then replay the captured trace through the vectorized
        instruments (phase 2) and assemble the RunResult."""
        target = self.stats.committed + max_insts if max_insts else None
        # Phases 1 and 2 both allocate heavily but create no reference
        # cycles (entries reference only *older* entries; phase 2 builds
        # flat numpy columns); pausing the cyclic collector saves its
        # generation scans — otherwise the loop's deferred allocations
        # (memo key tuples and templates above all) trigger a full
        # collection right inside the column transpose.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            self._loop(target, self.config.max_cycles)
            return build_result(self)
        finally:
            if gc_was_enabled:
                gc.enable()

    def step(self) -> None:
        """Simulate one machine cycle (no-op once the run is done)."""
        if not self.done:
            self._loop(None, self._cycle + 1)

    # ------------------------------------------------------- fused loop

    def _loop(self, target, stop_cycle) -> None:
        """The whole pipeline — commit, writeback, issue, dispatch,
        fetch (reverse stage order), plus the functional feed — fused
        into one function with every hot structure in a local.

        Stage logic is a line-for-line transcription of the reference
        machine's; see the reference modules for the *why* of each
        rule.  Entry fields are accessed by literal index here (the
        ``E_*`` table above is the legend).
        """
        config = self.config
        cp = self.cp

        # ---- static decode tables
        cp_n = cp.n
        cp_base = cp.base_pc
        cp_kind = cp.kind
        cp_opcode = cp.opcode
        cp_opc_code = cp.opc_code
        cp_cls_code = cp.cls_code
        cp_cls_value = cp.cls_value
        cp_ra31 = cp.ra31
        cp_rb31 = cp.rb31
        cp_rd31 = cp.rd31
        cp_rd_w = cp.rd_w
        cp_has_rb = cp.has_rb
        cp_imm_u = cp.imm_u
        cp_imm_tag = cp.imm_tag
        cp_target = cp.target
        cp_srcs = cp.srcs
        cp_nsrc = cp.nsrc
        cp_src0 = cp.src0
        cp_src1 = cp.src1
        cp_fn = cp.fn
        cp_bfn = cp.bfn
        cp_dest = cp.dest
        cp_mem_size = cp.mem_size
        cp_is_mem = cp.is_mem
        cp_is_load = cp.is_load
        cp_is_store = cp.is_store
        cp_is_branch = cp.is_branch
        cp_is_conditional = cp.is_conditional
        cp_needs_mult = cp.needs_mult
        cp_measured = cp.measured
        cp_produces = cp.produces
        cp_packable = cp.packable
        cp_replay_op = cp.replay_op
        cp_is_ldl = cp.is_ldl
        cp_frow = cp.frow
        cp_drow = cp.drow
        cp_crow = cp.crow
        cp_irow = cp.irow

        # ---- machine parameters
        commit_width = config.commit_width
        decode_width = config.decode_width
        fetch_width = config.fetch_width
        queue_size = config.fetch_queue_size
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        lsq_prune = 2 * lsq_size
        issue_width = config.issue_width
        int_alus = config.int_alus
        int_mult_div = config.int_mult_div
        alu_latency = config.alu_latency
        mult_latency = config.mult_latency
        mispredict_penalty = config.mispredict_penalty
        pcfg = config.packing
        pack_on = pcfg.enabled
        pk_same_op = pcfg.same_opcode
        pk_replay = pcfg.replay
        pk_max = pcfg.max_subwords

        # ---- functional state
        regs = self._regs
        tags = self._tags
        fload = self._from_load
        spec = self._spec
        halted = self._halted
        fetch_index = self._fetch_index
        seq = self._seq
        checkpoint = self._checkpoint
        perfect = self._perfect
        detect_loads = self._detect_loads
        predictor = self._predictor
        p_predict = predictor.predict
        p_update = predictor.update
        p_lookup = predictor.lookup
        # Table 1's combining predictor is three saturating-counter
        # tables plus histories; when it is the configured predictor,
        # the loop manipulates those lists directly instead of walking
        # the layered predict()/lookup()/update() call chain.  (The
        # component PredictorStats are not maintained on this path —
        # they are internal diagnostics no RunResult field reads.)
        comb = (predictor if type(predictor) is CombiningPredictor
                else None)
        if comb is not None:
            _local = comb.local
            _global = comb.global_
            l_hists = _local._histories
            l_hist_mask = _local._history_mask
            l_slot_mask = len(l_hists) - 1
            l_table = _local._table._table
            l_index_mask = len(l_table) - 1
            l_thr = _local._table.threshold
            l_max = _local._table.max_value
            g_table = _global._table._table
            g_index_mask = len(g_table) - 1
            g_thr = _global._table.threshold
            g_max = _global._table.max_value
            g_hist_mask = _global._history_mask
            ghist = _global._history
            s_table = comb._selector._table
            s_index_mask = len(s_table) - 1
            s_thr = comb._selector.threshold
            s_max = comb._selector.max_value
        else:
            ghist = 0
        ras_push = self._ras.push
        ras_pop = self._ras.pop
        btb_lookup = self._btb.lookup
        btb_update = self._btb.update
        mem_load = self._memory.load
        mem_store = self._memory.store
        mem_pages_get = self._memory._pages.get
        overlay = self._spec_memory._overlay
        smem_load = self._spec_memory.load
        smem_store = self._spec_memory.store
        smem_discard = self._spec_memory.discard
        page_bytes = _PAGE_BYTES
        page_mask = _PAGE_BYTES - 1
        from_bytes = int.from_bytes

        # ---- caches (latency walk + same-block/page shortcut)
        hier = self.hierarchy
        hier_ifetch = hier.fetch_instruction
        hier_daccess = hier.access_data
        l1_lat = self._l1_lat
        blk_b = self._blk_bytes
        page_b = self._page_bytes
        iblk = self._iblk
        ipage = self._ipage
        dblk = self._dblk
        dpage = self._dpage
        if hier.config.perfect:
            # all-hit hierarchy: the walk is already trivial
            i_walk = hier_ifetch
            d_walk = hier_daccess
        else:
            # L1-hit + TLB fast path, inlined over the cache/TLB guts.
            # Replacement state (LRU order, TLB contents) is updated
            # exactly as Cache.access/TLB.access would; on an L1 miss
            # the full hierarchy walk runs instead, so every latency —
            # and all future hit/miss behaviour — is identical.  Only
            # the CacheStats/TLBStats counters are skipped on the fast
            # path (no RunResult field reads them; see module
            # docstring).
            def i_walk(pc, _sets=hier.l1i.num_sets,
                       _tags=hier.l1i._tags, _dirty=hier.l1i._dirty,
                       _pages=hier.itlb._pages,
                       _miss_lat=hier.itlb.miss_latency,
                       _entries=hier.itlb.entries,
                       _full=hier_ifetch):
                blk = pc // blk_b
                row = _tags[blk % _sets]
                try:
                    way = row.index(blk // _sets)
                except ValueError:
                    return _full(pc)            # L1 miss: full walk
                if way:
                    row.insert(0, row.pop(way))
                    drow = _dirty[blk % _sets]
                    drow.insert(0, drow.pop(way))
                page = pc // page_b
                if _pages and _pages[0] == page:
                    return l1_lat
                try:
                    pi = _pages.index(page)
                except ValueError:
                    if len(_pages) >= _entries:
                        _pages.pop()
                    _pages.insert(0, page)
                    return l1_lat + _miss_lat
                _pages.insert(0, _pages.pop(pi))
                return l1_lat

            def d_walk(addr, is_write=False, _sets=hier.l1d.num_sets,
                       _tags=hier.l1d._tags, _dirty=hier.l1d._dirty,
                       _pages=hier.dtlb._pages,
                       _miss_lat=hier.dtlb.miss_latency,
                       _entries=hier.dtlb.entries,
                       _full=hier_daccess):
                blk = addr // blk_b
                si = blk % _sets
                row = _tags[si]
                try:
                    way = row.index(blk // _sets)
                except ValueError:
                    return _full(addr, is_write)   # L1 miss: full walk
                if way or is_write:
                    drow = _dirty[si]
                    drow.insert(0, drow.pop(way) or is_write)
                    if way:
                        row.insert(0, row.pop(way))
                page = addr // page_b
                if _pages and _pages[0] == page:
                    return l1_lat
                try:
                    pi = _pages.index(page)
                except ValueError:
                    if len(_pages) >= _entries:
                        _pages.pop()
                    _pages.insert(0, page)
                    return l1_lat + _miss_lat
                _pages.insert(0, _pages.pop(pi))
                return l1_lat

        # ---- timing state
        entries = self._entries
        nentries = len(entries)
        ready = self._ready
        stores = self._stores
        producer = self._producer
        completions = self._completions
        comp_pop = completions.pop
        comp_get = completions.get
        fetchq = self._fetchq
        fq_append = fetchq.append
        fq_popleft = fetchq.popleft
        nfq = len(fetchq)
        lsq = self._lsq
        cycle = self._cycle
        stall = self._fetch_stall_until
        resume = self._fetch_resume
        done = self.done

        # ---- trace capture (phase-2 input)
        capture = self.capture
        cap_row = capture.rows.append
        nrows = len(capture.rows)
        prows_append = self._packed_rows.append
        rrows_append = self._replay_rows.append

        # ---- block memoization (see blockcache module docstring)
        memo = self._memo
        if memo is not None and memo.plan:
            from repro.fastsim.blockcache import ADAPT_MIN_HITS, \
                ADAPT_PROBES
            memo_plan = memo.plan
            memo_plan_get = memo_plan.get
            memo_table = memo.table
            key_cap = memo.key_cap
            adapt_probes = ADAPT_PROBES
            adapt_min = ADAPT_MIN_HITS
        else:
            memo_plan = None
            memo_plan_get = None
            memo_table = None
            key_cap = 0
            adapt_probes = adapt_min = 0
        rp_rows = self._rp_rows          # pending replay templates
        rp_n = len(rp_rows)
        rp_i = self._rp_i
        rec_rows = self._rec_rows        # in-flight recording
        rec_left = self._rec_left
        rec_slot = self._rec_slot
        rec_key = self._rec_key
        rec_defs = self._rec_defs
        d_memo_hits = 0
        d_memo_misses = 0
        d_memo_replayed = 0

        # ---- statistics deltas (flushed to self.stats on exit)
        stats = self.stats
        committed = stats.committed
        d_cycles = 0
        d_fetched = 0
        d_dispatched = 0
        d_issued = 0
        d_completed = 0
        d_branches = 0
        d_cond = 0
        d_mispred = 0
        d_traps = 0
        d_pack_groups = 0
        d_packed_ops = 0
        d_rpacked_ops = 0
        cmix: dict = {}

        while cycle < stop_cycle:
            if done or (target is not None and committed >= target):
                break

            # ======================================================= commit
            if nentries and entries[0][9]:               # head completed
                retired = 0
                while retired < commit_width and nentries:
                    head = entries[0]
                    if not head[9]:
                        break
                    entries.popleft()
                    nentries -= 1
                    head[26] = True                      # dead: retired
                    kind, is_mem, is_store, value, is_br, is_cond = \
                        cp_crow[head[1]]
                    if is_mem:
                        lsq -= 1
                        if is_store:
                            addr = head[22]
                            if addr is not None:
                                blk = addr // blk_b
                                page = addr // page_b
                                if blk != dblk or page != dpage:
                                    lat = d_walk(addr, True)
                                    if lat == l1_lat:
                                        dblk = blk
                                        dpage = page
                                    else:
                                        dblk = -1
                    committed += 1
                    cmix[value] = cmix.get(value, 0) + 1
                    if is_br:
                        d_branches += 1
                        if is_cond:
                            d_cond += 1
                    retired += 1
                    if kind == 10:                       # HALT
                        done = True
                        break

            # ==================================================== writeback
            completed_now = comp_pop(cycle, None)
            if completed_now:
                for e in completed_now:
                    if e[10]:                            # squashed
                        continue
                    if e[12]:                            # replay-packed
                        res = e[21]
                        if res is None:
                            res = 0
                        wide = e[17] if e[18] == 2 else e[16]
                        if (res >> 16) != (wide >> 16):
                            # Replay trap: squash the speculative packed
                            # execution and re-issue full width.
                            e[8] = False
                            e[12] = False
                            e[15] = True
                            e[13] = True
                            e[14] = cycle + 1
                            d_traps += 1
                            # back onto the ready heap (it left the heap
                            # when it issued, so no duplicate exists)
                            heappush(ready, (e[0], e))
                            continue
                    e[9] = True                          # completed
                    d_completed += 1
                    cons = e[7]
                    if cons is not None:
                        # wake consumers whose last producer this was
                        e[7] = None
                        for c in cons:
                            nw = c[27] - 1
                            c[27] = nw
                            if not nw and not c[10]:
                                heappush(ready, (c[0], c))
                    if e[23] and not e[24]:   # good-path mispredicted branch
                        # ---------------------------------------- recovery
                        d_mispred += 1
                        bseq = e[0]
                        kept: deque = deque()
                        kept_append = kept.append
                        for x in entries:
                            if x[0] > bseq:
                                x[10] = True             # squashed
                                x[26] = True             # dead
                                if cp_is_mem[x[1]]:
                                    lsq -= 1
                            else:
                                kept_append(x)
                        entries = kept
                        nentries = len(kept)
                        fetchq.clear()
                        nfq = 0
                        # drop any in-flight memoized replay: its
                        # emitted entries were wrong-path and are gone
                        # with the fetch queue (recording never spans a
                        # recovery: it only starts on the good path and
                        # a body fetches no control transfer)
                        rp_n = 0
                        rp_i = 0
                        rp_rows = ()
                        # rewind architected state to the checkpoint
                        regs, tags, fload, fetch_index = checkpoint
                        smem_discard()
                        spec = False
                        checkpoint = None
                        for i in range(32):
                            producer[i] = None
                        for x in kept:
                            dest = cp_dest[x[1]]
                            if dest >= 0:
                                producer[dest] = x
                        if stores:
                            stores = [s for s in stores if not s[26]]
                        # one cycle to restart fetch + Table 1's penalty
                        resume = cycle + 1 + mispredict_penalty

            # ======================================================== issue
            # Pops the ready heap in seq (= age) order.  Matches the
            # reference's in-order scan over the whole window exactly:
            # entries with incomplete producers would be skipped by
            # that scan, and they are the only ones not on the heap.
            # Entries popped but not issued (replay window, exhausted
            # units) go to ``aside`` and return to the heap after the
            # pass — the reference leaves them pending the same way.
            if ready:
                slots = issue_width
                alus = int_alus
                mults = int_mult_div
                if pack_on:
                    packs: dict = {}
                    packs_get = packs.get
                else:
                    packs = None
                aside = None
                while ready:
                    item = ready[0]
                    e = item[1]
                    if e[8] or e[10]:
                        heappop(ready)     # stale: issued or squashed
                        continue
                    if slots <= 0 and not (pack_on and packs):
                        break
                    if e[6] >= cycle:
                        break   # dispatched this cycle: issues later
                    heappop(ready)
                    if e[13] and cycle < e[14]:
                        # serving a replay re-issue window
                        if aside is None:
                            aside = [item]
                        else:
                            aside.append(item)
                        continue
                    cidx = e[1]
                    (needs_mult, is_load, measured, ccode, ocode,
                     produces, packable, replay_op) = cp_irow[cidx]
                    if pack_on and not needs_mult and not e[13]:
                        # ---- try to join an open pack
                        key = ocode if pk_same_op else ccode
                        pack = packs_get(key)
                        if pack is not None and pack[0] > 0:
                            ta = e[18]
                            tb = e[19]
                            no_pack = e[15]
                            joined = False
                            is_replay = False
                            if (not no_pack and packable
                                    and ta == 2 and tb == 2):
                                pack[0] -= 1
                                pack[3].append(e)
                                joined = True
                            elif (not pack[1] and pk_replay and not no_pack
                                    and replay_op
                                    and (ta == 2) != (tb == 2)):
                                # one replay member fits; it closes the pack
                                pack[1] = True
                                pack[0] = 0
                                pack[3].append(e)
                                joined = True
                                is_replay = True
                            if joined:
                                # ---- start execution (packed)
                                e[8] = True
                                e[11] = True
                                e[12] = is_replay
                                e[13] = False
                                if needs_mult:
                                    lat = mult_latency
                                elif is_load and e[22] is not None:
                                    addr = e[22]
                                    blk = addr // blk_b
                                    page = addr // page_b
                                    if blk == dblk and page == dpage:
                                        lat = alu_latency + l1_lat
                                    else:
                                        dl = d_walk(addr)
                                        if dl == l1_lat:
                                            dblk = blk
                                            dpage = page
                                        else:
                                            dblk = -1
                                        lat = alu_latency + dl
                                else:
                                    lat = alu_latency
                                when = cycle + lat
                                lst = comp_get(when)
                                if lst is None:
                                    completions[when] = [e]
                                else:
                                    lst.append(e)
                                d_issued += 1
                                if measured:
                                    e[25] = nrows
                                    nrows += 1
                                    cap_row((ccode, ocode, e[3],
                                             e[16], e[17], e[18], e[19],
                                             e[20], produces))
                                # ---- pack statistics (pack 'happens'
                                # once a second member joins)
                                members = pack[3]
                                if len(members) == 2:
                                    d_pack_groups += 1
                                    d_packed_ops += 2
                                    leader = members[0]
                                    leader[11] = True
                                    prows_append(leader[25])
                                    if pack[2]:   # wide leader goes spec
                                        leader[12] = True
                                        d_rpacked_ops += 1
                                        rrows_append(leader[25])
                                else:
                                    d_packed_ops += 1
                                prows_append(e[25])
                                if e[12]:
                                    d_rpacked_ops += 1
                                    rrows_append(e[25])
                                continue
                    if slots <= 0:
                        if aside is None:
                            aside = [item]
                        else:
                            aside.append(item)
                        continue
                    if needs_mult:
                        if mults <= 0:
                            if aside is None:
                                aside = [item]
                            else:
                                aside.append(item)
                            continue
                        mults -= 1
                    else:
                        if alus <= 0:
                            if aside is None:
                                aside = [item]
                            else:
                                aside.append(item)
                            continue
                        alus -= 1
                    slots -= 1
                    # ---- start execution (unpacked)
                    e[8] = True
                    e[12] = False
                    e[13] = False
                    if needs_mult:
                        lat = mult_latency
                    elif is_load and e[22] is not None:
                        addr = e[22]
                        blk = addr // blk_b
                        page = addr // page_b
                        if blk == dblk and page == dpage:
                            lat = alu_latency + l1_lat
                        else:
                            dl = d_walk(addr)
                            if dl == l1_lat:
                                dblk = blk
                                dpage = page
                            else:
                                dblk = -1
                            lat = alu_latency + dl
                    else:
                        lat = alu_latency
                    when = cycle + lat
                    lst = comp_get(when)
                    if lst is None:
                        completions[when] = [e]
                    else:
                        lst.append(e)
                    d_issued += 1
                    if measured:
                        e[25] = nrows
                        nrows += 1
                        cap_row((ccode, ocode, e[3], e[16], e[17],
                                 e[18], e[19], e[20], produces))
                    if pack_on and not needs_mult:
                        # ---- open a pack around this op (E_RPEND was
                        # cleared above, matching the reference order)
                        ta = e[18]
                        tb = e[19]
                        no_pack = e[15]
                        if (not no_pack and packable
                                and ta == 2 and tb == 2):
                            packs[ocode if pk_same_op else ccode] = \
                                [pk_max - 1, False, False, [e]]
                        elif (pk_replay and not no_pack
                                and replay_op
                                and (ta == 2) != (tb == 2)):
                            packs[ocode if pk_same_op else ccode] = \
                                [1, True, True, [e]]
                if aside is not None:
                    for item in aside:
                        heappush(ready, item)

            # ===================================================== dispatch
            if nfq:
                dispatched = 0
                while dispatched < decode_width and nfq:
                    e = fetchq[0]
                    if e[5] >= cycle:
                        break
                    (kind, is_mem, is_load, is_store, dest, nsrc,
                     src0, src1, src2, msize) = cp_drow[e[1]]
                    if nentries >= ruu_size or (is_mem and lsq >= lsq_size):
                        break
                    fq_popleft()
                    nfq -= 1
                    e[6] = cycle
                    # Register with each still-incomplete producer (reg
                    # + overlapping-store deps); completed producers are
                    # already satisfied, exactly as the reference's
                    # dispatch-time dep filter treats them.
                    nw = 0
                    if nsrc:
                        p = producer[src0]
                        if p is not None and not p[9]:
                            if p[7] is None:
                                p[7] = [e]
                            else:
                                p[7].append(e)
                            nw += 1
                        if nsrc > 1:
                            p = producer[src1]
                            if p is not None and not p[9]:
                                if p[7] is None:
                                    p[7] = [e]
                                else:
                                    p[7].append(e)
                                nw += 1
                            if nsrc > 2:   # CMOV also reads its dest
                                p = producer[src2]
                                if p is not None and not p[9]:
                                    if p[7] is None:
                                        p[7] = [e]
                                    else:
                                        p[7].append(e)
                                    nw += 1
                    if is_load and e[22] is not None:
                        lo = e[22]
                        hi = lo + msize
                        if len(stores) > lsq_prune:
                            # prune dead stores (age order kept)
                            stores = [s for s in stores if not s[26]]
                        for s in stores:
                            if s[26] or s[9]:
                                continue
                            saddr = s[22]
                            if saddr < hi and lo < saddr + cp_mem_size[s[1]]:
                                if s[7] is None:
                                    s[7] = [e]
                                else:
                                    s[7].append(e)
                                nw += 1
                    if kind == 9 or kind == 10:          # NOP / HALT
                        e[8] = True
                        e[9] = True
                    elif nw:
                        e[27] = nw
                    else:
                        heappush(ready, (e[0], e))
                    entries.append(e)
                    nentries += 1
                    if is_mem:
                        lsq += 1
                        if is_store:
                            stores.append(e)
                    if dest >= 0:
                        producer[dest] = e
                    d_dispatched += 1
                    dispatched += 1

            # ======================================================== fetch
            if cycle >= resume and cycle >= stall and not halted:
                nfetched = 0
                while nfetched < fetch_width and nfq < queue_size:
                    if rp_i < rp_n:
                        # ---- memoized replay: one template per fetch
                        # slot, re-stamped with the live seq / fetch
                        # cycle / spec flag; everything downstream
                        # (dispatch, issue, capture, commit) sees an
                        # entry identical to what the feed would build.
                        t = rp_rows[rp_i]
                        rp_i += 1
                        e = t[:]
                        e[0] = seq
                        seq += 1
                        e[5] = cycle
                        e[24] = spec
                        pc = t[3]
                        blk = pc // blk_b
                        page = pc // page_b
                        if blk == iblk and page == ipage:
                            lat = l1_lat
                        else:
                            lat = i_walk(pc)
                            if lat == l1_lat:
                                iblk = blk
                                ipage = page
                            else:
                                iblk = -1
                        d_fetched += 1
                        d_memo_replayed += 1
                        fq_append(e)
                        nfq += 1
                        nfetched += 1
                        if lat > l1_lat:
                            # I-cache miss: same stall as a live fetch
                            e[5] = cycle + lat - 1
                            stall = cycle + lat - 1
                            break
                        continue
                    # ---- functional feed, inlined (twin of _next_inst)
                    raw = fetch_index
                    if memo_plan_get is not None and not rec_left:
                        plan = memo_plan_get(raw)
                        if plan is not None:
                            body_len, ue, defs, has_loads = plan[:4]
                            # Wrong-path hits are sound for load-free
                            # bodies, or while the speculative store
                            # overlay is empty (loads then read the
                            # same immutable main-memory bytes the
                            # recording did).
                            if not spec or not has_loads or not overlay:
                                nue = len(ue)
                                if nue == 1:
                                    r0 = ue[0]
                                    key = (regs[r0], tags[r0],
                                           fload[r0])
                                elif nue == 2:
                                    r0, r1 = ue
                                    key = (regs[r0], tags[r0],
                                           fload[r0], regs[r1],
                                           tags[r1], fload[r1])
                                else:
                                    key = ()
                                    for r0 in ue:
                                        key += (regs[r0], tags[r0],
                                                fload[r0])
                                slot = memo_table[raw]
                                found = slot.get(key)
                                if found is not None:
                                    if found.__class__ is tuple:
                                        rows, delta = found
                                        for rd, val, tg, flb in delta:
                                            regs[rd] = val
                                            tags[rd] = tg
                                            fload[rd] = flb
                                        fetch_index = raw + body_len
                                        rp_rows = rows
                                        rp_n = len(rows)
                                        rp_i = 0
                                        plan[5] += 1
                                        d_memo_hits += 1
                                        continue
                                    if not spec:
                                        # Second sighting of the key:
                                        # record this execution.
                                        d_memo_misses += 1
                                        nm = plan[4] + 1
                                        plan[4] = nm
                                        if (not nm % adapt_probes
                                                and plan[5] < max(
                                                    adapt_min,
                                                    nm >> 4)):
                                            # Adaptive give-up: the
                                            # block's keys are noise.
                                            del memo_plan[raw]
                                            del memo_table[raw]
                                            if not memo_plan:
                                                memo_plan_get = None
                                        else:
                                            rec_rows = []
                                            rec_left = body_len
                                            rec_slot = slot
                                            rec_key = key
                                            rec_defs = defs
                                elif not spec and len(slot) < key_cap:
                                    # First sighting: mark only.  Keys
                                    # seen once never repay the cost of
                                    # recording a template.
                                    d_memo_misses += 1
                                    nm = plan[4] + 1
                                    plan[4] = nm
                                    if (not nm % adapt_probes
                                            and plan[5] < max(
                                                adapt_min, nm >> 4)):
                                        del memo_plan[raw]
                                        del memo_table[raw]
                                        if not memo_plan:
                                            memo_plan_get = None
                                    else:
                                        slot[key] = 1
                    cidx = raw if 0 <= raw < cp_n else cp_n
                    kind = cp_kind[cidx]
                    sp = spec
                    if kind == 10 and sp:
                        break   # wrong path fell off the program
                    pc = cp_base + raw * 4
                    a = 0
                    b = 0
                    ta = 2
                    tb = 2
                    fl = False
                    res = None
                    addr = None
                    mis = False
                    nxt = raw + 1

                    if kind == 0:                        # OPERATE
                        (ra, has_rb, rb, imm_u, imm_tag, fn, rd31,
                         rd) = cp_frow[cidx]
                        a = regs[ra]
                        ta = tags[ra]
                        fl = ra != 31 and fload[ra]
                        if has_rb:
                            b = regs[rb]
                            tb = tags[rb]
                            fl = fl or (rb != 31 and fload[rb])
                        else:
                            b = imm_u
                            tb = imm_tag
                        res = fn(a, b, regs[rd31])
                        if rd >= 0:
                            regs[rd] = res
                            fload[rd] = False
                            high = res >> 16
                            if high == 0 or high == 0xFFFFFFFFFFFF:
                                tags[rd] = 2
                            else:
                                high = res >> 33
                                tags[rd] = (1 if high == 0
                                            or high == 0x7FFFFFFF else 0)
                    elif kind == 1:                      # LOAD
                        rb, imm_u, imm_tag, sz, is_ldl, rd = cp_frow[cidx]
                        a = regs[rb]
                        ta = tags[rb]
                        fl = rb != 31 and fload[rb]
                        b = imm_u
                        tb = imm_tag
                        addr = (a + b) & 0xFFFFFFFFFFFFFFFF
                        if sp and overlay:
                            res = smem_load(addr, sz)
                        else:
                            # MainMemory.load, inlined (same-page case;
                            # the overlay-free wrong path reads it too)
                            off = addr & page_mask
                            if off + sz <= page_bytes:
                                pg = mem_pages_get(addr // page_bytes)
                                res = (0 if pg is None else
                                       from_bytes(pg[off:off + sz],
                                                  "little"))
                            else:
                                res = mem_load(addr, sz)
                        if is_ldl:
                            res &= 0xFFFFFFFF
                            if res & 0x80000000:
                                res += 0xFFFFFFFF00000000
                        if rd >= 0:
                            regs[rd] = res
                            fload[rd] = True
                            if detect_loads:
                                high = res >> 16
                                if high == 0 or high == 0xFFFFFFFFFFFF:
                                    tags[rd] = 2
                                else:
                                    high = res >> 33
                                    tags[rd] = (1 if high == 0
                                                or high == 0x7FFFFFFF else 0)
                            else:
                                tags[rd] = 0   # no zero-detect: unknown
                    elif kind == 3:                      # COND branch
                        (ra, has_rb, rb, imm_u, imm_tag, bfn,
                         tgt) = cp_frow[cidx]
                        a = regs[ra]
                        ta = tags[ra]
                        fl = ra != 31 and fload[ra]
                        if has_rb:
                            b = regs[rb]
                            tb = tags[rb]
                            fl = fl or (rb != 31 and fload[rb])
                        else:
                            b = imm_u
                            tb = imm_tag
                        taken = bfn(a)
                        actual = tgt if taken else raw + 1
                        if comb is not None:
                            # McFarling combining predictor, inlined.
                            # Indexes mirror predict()/update(): all
                            # reads use the pre-update histories.
                            sel_i = ghist & s_index_mask
                            lslot = (pc >> 2) & l_slot_mask
                            lhistory = l_hists[lslot]
                            l_i = lhistory & l_index_mask
                            local_p = l_table[l_i] >= l_thr
                            g_i = ghist & g_index_mask
                            global_p = g_table[g_i] >= g_thr
                            ptaken = (global_p
                                      if s_table[sel_i] >= s_thr
                                      else local_p)
                            if not sp:   # wrong path consults, never trains
                                if local_p != global_p:
                                    # selector trains toward whichever
                                    # component was right
                                    v = s_table[sel_i]
                                    if global_p == taken:
                                        if v < s_max:
                                            s_table[sel_i] = v + 1
                                    elif v > 0:
                                        s_table[sel_i] = v - 1
                                v = l_table[l_i]
                                if taken:
                                    if v < l_max:
                                        l_table[l_i] = v + 1
                                elif v > 0:
                                    l_table[l_i] = v - 1
                                l_hists[lslot] = ((lhistory << 1) | taken) \
                                    & l_hist_mask
                                v = g_table[g_i]
                                if taken:
                                    if v < g_max:
                                        g_table[g_i] = v + 1
                                elif v > 0:
                                    g_table[g_i] = v - 1
                                ghist = ((ghist << 1) | taken) & g_hist_mask
                        elif sp:
                            ptaken = p_lookup(pc)        # consult, not train
                        else:
                            ptaken = p_predict(pc, taken)
                            p_update(pc, taken)
                        pred = tgt if ptaken else raw + 1
                        if perfect:
                            pred = actual
                        if sp:
                            nxt = pred
                        elif pred != actual:
                            checkpoint = (regs[:], tags[:], fload[:], actual)
                            spec = True
                            mis = True
                            nxt = pred
                        else:
                            nxt = actual
                    elif kind == 2:                      # STORE
                        rb, imm_u, imm_tag, ra, msize = cp_frow[cidx]
                        a = regs[rb]
                        ta = tags[rb]
                        fl = rb != 31 and fload[rb]
                        b = imm_u
                        tb = imm_tag
                        addr = (a + b) & 0xFFFFFFFFFFFFFFFF
                        if sp:
                            smem_store(addr, regs[ra], msize)
                        else:
                            mem_store(addr, regs[ra], msize)
                    elif kind == 9 or kind == 10:        # NOP / HALT
                        pass
                    elif kind == 4 or kind == 5:         # BR / BSR: direct
                        if kind == 5:
                            return_pc = cp_base + (raw + 1) * 4
                            res = return_pc
                            rd = cp_rd_w[cidx]
                            if rd >= 0:
                                regs[rd] = res
                                fload[rd] = False
                                high = res >> 16
                                if high == 0 or high == 0xFFFFFFFFFFFF:
                                    tags[rd] = 2
                                else:
                                    high = res >> 33
                                    tags[rd] = (1 if high == 0
                                                or high == 0x7FFFFFFF else 0)
                            if not sp:
                                ras_push(return_pc)
                        # direct target known at decode: never mispredicts
                        nxt = cp_target[cidx]
                    else:                    # JMP / JSR / RET: indirect
                        rb = cp_rb31[cidx]
                        target_pc = regs[rb]
                        a = target_pc
                        ta = tags[rb]
                        actual = (target_pc - cp_base) // 4
                        return_pc = cp_base + (raw + 1) * 4
                        if kind == 8:                    # RET
                            ppc = ras_pop() if not sp else None
                        else:
                            ppc = btb_lookup(pc)
                            if kind == 7 and not sp:     # JSR
                                ras_push(return_pc)
                        if not sp:
                            btb_update(pc, target_pc)
                        pred = raw + 1 if ppc is None \
                            else (ppc - cp_base) // 4
                        if kind == 7:
                            res = return_pc
                            rd = cp_rd_w[cidx]
                            if rd >= 0:
                                regs[rd] = res
                                fload[rd] = False
                                high = res >> 16
                                if high == 0 or high == 0xFFFFFFFFFFFF:
                                    tags[rd] = 2
                                else:
                                    high = res >> 33
                                    tags[rd] = (1 if high == 0
                                                or high == 0x7FFFFFFF else 0)
                        if perfect:
                            pred = actual
                        if sp:
                            nxt = pred
                        elif pred != actual:
                            checkpoint = (regs[:], tags[:], fload[:], actual)
                            spec = True
                            mis = True
                            nxt = pred
                        else:
                            nxt = actual

                    fetch_index = nxt
                    if kind == 10 and not sp:
                        halted = True
                    e = [seq, cidx, raw, pc, nxt, cycle, -1, None, False,
                         False, False, False, False, False, -1, False,
                         a, b, ta, tb, fl, res, addr, mis, sp, -1, False,
                         0]
                    seq += 1
                    if rec_left:
                        # ---- memo recording: copy the pristine entry
                        # as a template; at body end, snapshot the
                        # register delta the body's writes produced.
                        rec_rows.append(e[:])
                        rec_left -= 1
                        if not rec_left:
                            rec_slot[rec_key] = (
                                tuple(rec_rows),
                                tuple((r, regs[r], tags[r], fload[r])
                                      for r in rec_defs))
                            rec_rows = None
                    # ---- I-side access with the same-block shortcut
                    blk = pc // blk_b
                    page = pc // page_b
                    if blk == iblk and page == ipage:
                        lat = l1_lat
                    else:
                        lat = i_walk(pc)
                        if lat == l1_lat:
                            iblk = blk
                            ipage = page
                        else:
                            iblk = -1
                    d_fetched += 1
                    fq_append(e)
                    nfq += 1
                    nfetched += 1
                    if lat > l1_lat:
                        # I-cache miss: arrival when the fill completes,
                        # and fetch stalls until then.
                        e[5] = cycle + lat - 1
                        stall = cycle + lat - 1
                        break
                    if nxt != raw + 1:
                        break   # fetch break after a predicted-taken xfer
                    if halted:
                        break

            cycle += 1
            d_cycles += 1

        # ---- flush locals back to the instance -----------------------
        self._regs = regs
        self._tags = tags
        self._from_load = fload
        self._spec = spec
        self._halted = halted
        self._fetch_index = fetch_index
        self._seq = seq
        self._checkpoint = checkpoint
        self._entries = entries
        self._ready = ready
        self._stores = stores
        self._lsq = lsq
        self._cycle = cycle
        self._fetch_stall_until = stall
        self._fetch_resume = resume
        self._iblk = iblk
        self._ipage = ipage
        self._dblk = dblk
        self._dpage = dpage
        self.done = done
        self._rp_rows = rp_rows if rp_i < rp_n else ()
        self._rp_i = rp_i if rp_i < rp_n else 0
        self._rec_rows = rec_rows
        self._rec_left = rec_left
        self._rec_slot = rec_slot
        self._rec_key = rec_key
        self._rec_defs = rec_defs
        if memo is not None:
            memo.hits += d_memo_hits
            memo.misses += d_memo_misses
            memo.replayed += d_memo_replayed
        if comb is not None:
            comb.global_._history = ghist
        stats.cycles += d_cycles
        stats.fetched += d_fetched
        stats.dispatched += d_dispatched
        stats.issued += d_issued
        stats.completed += d_completed
        stats.committed = committed
        stats.branches_committed += d_branches
        stats.cond_branches_committed += d_cond
        stats.mispredicts += d_mispred
        stats.replay_traps += d_traps
        stats.pack_groups += d_pack_groups
        stats.packed_ops += d_packed_ops
        stats.replay_packed_ops += d_rpacked_ops
        if cmix:
            mix = stats.class_mix
            mix_get = mix.get
            for key, count in cmix.items():
                mix[key] = mix_get(key, 0) + count

    # ---------------------------------------------- architected access

    def reg(self, index: int) -> int:
        """Architected value of register ``index`` (test helper)."""
        return 0 if index == 31 else self._regs[index]

    def memo_stats(self) -> dict:
        """Block-memoization counters (diagnostics for metrics and
        ``repro-bench`` — never part of the serialized RunResult, which
        stays bit-identical with memoization on or off)."""
        if self._memo is None:
            return {"enabled": False, "hits": 0, "misses": 0,
                    "replayed_insts": 0, "hit_rate": 0.0}
        stats = self._memo.stats()
        stats["enabled"] = True
        fetched = self.stats.fetched
        stats["hit_rate"] = (round(stats["replayed_insts"] / fetched, 4)
                             if fetched else 0.0)
        return stats
