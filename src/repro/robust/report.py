"""Run reports: per-job outcomes of a fault-tolerant engine batch.

The engine no longer has only two outcomes (every job succeeded /
exception mid-merge).  A :class:`RunReport` records, for every unique
job in a batch, whether it succeeded, how many attempts it took, and
— when it ultimately failed — why, so the experiment suite can degrade
gracefully: render everything that survived, banner what did not, and
exit nonzero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:   # runtime-import-free: the engine imports us
    from repro.exec.jobs import Job

#: Job outcome statuses.
OK = "ok"               # result produced (possibly after retries)
FAILED = "failed"       # every attempt raised (worker exception / dead pool)
TIMED_OUT = "timeout"   # every attempt exceeded the per-job timeout


class SuiteFailure(RuntimeError):
    """Raised by :meth:`RunEngine.run_jobs` when jobs ultimately fail.

    Callers that can degrade gracefully use
    :meth:`RunEngine.run_jobs_report` instead and render what
    survived; everyone else gets this typed error carrying the full
    :class:`RunReport` rather than a raw mid-merge traceback.
    """

    def __init__(self, report: "RunReport") -> None:
        self.report = report
        failed = report.failed
        summary = ", ".join(
            f"{o.job.workload}[{o.status}]" for o in failed[:5])
        if len(failed) > 5:
            summary += f", +{len(failed) - 5} more"
        super().__init__(
            f"{len(failed)} job(s) failed after retries: {summary}")


@dataclass
class JobOutcome:
    """What happened to one unique job across all its attempts."""

    job: Job
    status: str = OK
    #: attempts actually made (1 = first try succeeded; 0 = served from
    #: a cache tier, no execution needed).
    attempts: int = 1
    #: where the result came from: "memo" | "cache" | "fresh".
    source: str = "fresh"
    #: stringified terminal error for failed/timed-out jobs.
    error: str | None = None
    #: wall-clock spent on this job: cache-tier recall time for served
    #: jobs, summed attempt time (worker-side for successes) otherwise.
    wall_seconds: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def retried(self) -> bool:
        return self.ok and self.attempts > 1


@dataclass
class RunReport:
    """Per-job outcomes for one :meth:`RunEngine.run_jobs_report` batch."""

    outcomes: list[JobOutcome] = field(default_factory=list)

    def add(self, outcome: JobOutcome) -> JobOutcome:
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------ queries

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return all(o.ok for o in self.outcomes)

    @property
    def succeeded(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def retried(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.retried]

    @property
    def timed_out(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.status == TIMED_OUT]

    @property
    def failed(self) -> list[JobOutcome]:
        """Jobs with no result (worker failures and timeouts alike)."""
        return [o for o in self.outcomes if not o.ok]

    def outcome_of(self, job: Job) -> JobOutcome | None:
        for outcome in self.outcomes:
            if outcome.job.key == job.key:
                return outcome
        return None

    # ---------------------------------------------------------- rendering

    def banner(self) -> str | None:
        """One-line degradation banner, or None when everything ran."""
        if self.ok:
            return None
        n = len(self.failed)
        return (f"!!! {n} job(s) failed after retries — affected "
                f"figures render partially or not at all")

    def summary_table(self) -> str:
        """Failure summary for the CLI (one row per failed job)."""
        lines = [f"{'workload':14s} {'config':12s} {'status':8s} "
                 f"{'attempts':>8s} {'source':7s} {'wall':>8s}  error"]
        lines.append("-" * len(lines[0]))
        for o in self.failed:
            error = (o.error or "").splitlines()[-1] if o.error else ""
            if len(error) > 48:
                error = error[:45] + "..."
            wall = (f"{o.wall_seconds:7.2f}s"
                    if o.wall_seconds is not None else f"{'-':>8s}")
            lines.append(f"{o.job.workload:14s} "
                         f"{o.job.config.fingerprint()[:10]:12s} "
                         f"{o.status:8s} {o.attempts:8d} "
                         f"{o.source:7s} {wall}  {error}")
        return "\n".join(lines)

    def counts(self) -> dict[str, int]:
        """Summary counters (CLI summary line, tests)."""
        return {
            "jobs": len(self.outcomes),
            "succeeded": len(self.succeeded),
            "retried": len(self.retried),
            "timed_out": len(self.timed_out),
            "failed": len([o for o in self.outcomes
                           if o.status == FAILED]),
        }
