"""Deterministic retry policy: bounded attempts, exponential backoff.

The run engine retries failed simulation jobs.  Backoff between
attempts grows exponentially and carries *jitter* so that a batch of
jobs that all failed together (a dead pool) does not retry in
lockstep — but the jitter is **deterministic**, derived from a sha256
of the job's stable fingerprint and the attempt number, never from a
shared RNG or the wall clock.  The same suite replayed therefore
sleeps the same intervals, and the nondeterminism lint
(``tools/lint_invariants.py``) stays clean.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try one job before declaring it failed."""

    #: re-attempts after the first try (0 = never retry).
    retries: int = 2
    #: base backoff before the first retry, in seconds.
    backoff: float = 0.05
    #: hard cap on any single backoff sleep, in seconds.
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (1-based) of the job
        identified by ``key``.

        ``base * 2**(attempt-1)`` scaled by a jitter factor in
        [0.5, 1.5) that is a pure function of ``(key, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        exp = self.backoff * (2 ** (attempt - 1))
        return min(self.backoff_cap, exp * (0.5 + jitter_fraction(key, attempt)))


def jitter_fraction(key: str, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` for ``(key, attempt)``."""
    digest = hashlib.sha256(f"{key}#{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64
