"""Worker-side fault hooks for exercising the engine's failure paths.

The fault-tolerant engine is only trustworthy if its failure handling
is tested against *real* failures: a worker that raises, a worker that
hangs past the timeout, a child process that dies and breaks the pool.
These cannot be monkeypatched into a ``ProcessPoolExecutor`` child, so
the engine threads an optional *fault token* (a plain string, hence
picklable) through ``pool.submit`` into the worker, where
:func:`apply_fault` interprets it **before** the simulation runs.

Token grammar: ``kind`` or ``kind:sentinel_path``.

* ``crash`` — raise :class:`InjectedWorkerError` (an ordinary worker
  exception: the pool survives, the job retries);
* ``hang`` — sleep far past any sane per-job timeout (the engine must
  time the job out and put the pool down);
* ``die`` — ``os._exit(3)``: the child vanishes without unwinding,
  breaking the pool (``BrokenProcessPool`` on every pending future).

With a ``sentinel_path``, the fault fires **once**: the first worker
to claim the sentinel (atomic ``O_CREAT | O_EXCL``) faults, every
later attempt runs clean — which is exactly the transient-failure
shape retry logic exists for, and works across processes where a
module-global flag would not.
"""

from __future__ import annotations

import os
import time


class InjectedWorkerError(RuntimeError):
    """The deliberate exception raised by a ``crash`` fault token."""


#: How long a ``hang`` fault sleeps.  Not infinite — a misconfigured
#: engine (no timeout) should eventually fail loudly, not wedge CI.
HANG_SECONDS = 600.0


def parse_token(token: str) -> tuple[str, str | None]:
    """Split ``kind[:sentinel_path]``; validates the kind."""
    kind, _, sentinel = token.partition(":")
    if kind not in ("crash", "hang", "die"):
        raise ValueError(f"unknown fault kind {kind!r} "
                         f"(known: crash, hang, die)")
    return kind, sentinel or None


def _claim(sentinel: str | None) -> bool:
    """Atomically claim a fire-once sentinel; True = this worker faults."""
    if sentinel is None:
        return True
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def apply_fault(token: str | None) -> None:
    """Interpret a fault token inside a worker (no-op for ``None``)."""
    if token is None:
        return
    kind, sentinel = parse_token(token)
    if not _claim(sentinel):
        return
    if kind == "crash":
        raise InjectedWorkerError(f"injected worker fault: {token}")
    if kind == "hang":
        time.sleep(HANG_SECONDS)  # lint: allow(ND002)
        raise InjectedWorkerError(f"injected hang outlived {HANG_SECONDS}s: "
                                  f"{token}")
    if kind == "die":
        os._exit(3)
