"""The chaos harness: prove every injected fault is masked or detected.

For one (workload, injector, seed) triple, :func:`chaos_run` executes
the workload twice under identical configuration:

1. a **reference** run carrying a collect-mode :class:`GuardSet`
   (which must stay clean — the no-false-positives half of the
   contract) and a :class:`CommitChecksum` over the committed
   instruction stream;
2. a **faulted** run with the injector installed innermost (so guards
   and checksum observe the perturbed state), the same guards, and the
   same checksum.

The committed-stream checksum — sha256 over ``(seq, index, result)``
of every retired instruction, hashed at *commit* time — is the
architected truth both runs are compared on.  It is timing-independent
(commit order is program order), so injectors that only change
*performance* (the lawful ``tag-conservative``) compare equal, while
any corruption that escapes the guards shows up as a checksum
mismatch: a **silent** corruption, the one verdict the suite treats as
failure.

Verdicts:

* ``detected`` — guards fired on an armed fault that owed detection;
* ``masked`` — armed, no guard fired, committed stream bit-identical
  to the reference (provably benign);
* ``unarmed`` — the injector found no eligible site in the window
  (reported so a silently-never-firing injector is visible);
* ``false-positive`` — guards fired on a fault that owed masking;
* ``silent`` — armed, undetected, committed stream differs.  Failure.

:func:`cache_chaos` covers the disk tier the same way: store a clean
entry, corrupt it on disk (truncate or deterministic bit-flip), re-run,
and demand the engine quarantines the entry and reproduces bit-exact
counters fresh.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.config import BASELINE, MachineConfig
from repro.core.feed import DynInst
from repro.core.machine import Machine
from repro.obs.events import CommitEvent, Event
from repro.perf.metrics import get_registry
from repro.robust.guards import GuardSet
from repro.robust.inject import (
    BaseInjector,
    INJECTOR_TYPES,
    corrupt_file,
    make_injector,
)
from repro.workloads.registry import get_workload, resolve_warmup

#: Verdicts (``SILENT`` and ``FALSE_POSITIVE`` are failures).
DETECTED = "detected"
MASKED = "masked"
UNARMED = "unarmed"
SILENT = "silent"
FALSE_POSITIVE = "false-positive"

#: The chaos configuration: packing + replay on, so the replay-trap
#: machinery the guards watch is actually exercised.
CHAOS_CONFIG = BASELINE.with_packing(replay=True)


class CommitChecksum:
    """sha256 over the committed instruction stream of one machine.

    Captures each :class:`DynInst` as the feed produces it and hashes
    ``(seq, index, result)`` when the instruction *commits* — so late
    mutations (a replay-drop fault rides the writeback stage) are
    seen, and wrong-path instructions never pollute the digest.
    """

    def __init__(self, machine: Machine) -> None:
        self._hash = hashlib.sha256()
        self.committed = 0
        self._by_seq: dict[int, DynInst] = {}
        feed = machine.feed
        original_next = feed.next

        def next_with_capture() -> DynInst | None:
            dyn = original_next()
            if dyn is not None and not feed.fast_mode:
                self._by_seq[dyn.seq] = dyn
            return dyn

        feed.next = next_with_capture  # type: ignore[method-assign]
        machine.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        if not isinstance(event, CommitEvent):
            return
        dyn = self._by_seq.pop(event.seq, None)
        if dyn is None:
            return
        result = -1 if dyn.result is None else dyn.result
        self._hash.update(f"{dyn.seq}:{dyn.index}:{result};".encode())
        self.committed += 1

    def digest(self) -> str:
        return self._hash.hexdigest()


@dataclass
class ChaosOutcome:
    """One (workload, injector, seed) chaos verdict."""

    workload: str
    injector: str
    seed: int
    verdict: str
    injections: int = 0
    violations: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict not in (SILENT, FALSE_POSITIVE)


def _reference(workload_name: str, scale: int, window: int | None,
               config: MachineConfig) -> tuple[str, GuardSet]:
    """Clean run: returns (commit checksum, its guard set)."""
    workload = get_workload(workload_name)
    machine = Machine(workload.build(scale), config)
    checksum = CommitChecksum(machine)
    guards = GuardSet(machine, collect=True)
    machine.fast_forward(resolve_warmup(workload, scale))
    machine.run(max_insts=window if window is not None else workload.window)
    return checksum.digest(), guards


def chaos_run(workload_name: str, injector: BaseInjector, seed: int,
              scale: int = 1, window: int | None = None,
              config: MachineConfig = CHAOS_CONFIG,
              reference_digest: str | None = None) -> ChaosOutcome:
    """Execute one chaos trial and classify it.

    ``reference_digest`` lets a suite runner share one clean run across
    every injector for the workload; when omitted the reference run
    (and its guard-cleanliness check) happens here.
    """
    if reference_digest is None:
        reference_digest, ref_guards = _reference(
            workload_name, scale, window, config)
        if not ref_guards.clean:
            first = ref_guards.violations[0]
            get_registry().counter(f"chaos.{FALSE_POSITIVE}").inc()
            return ChaosOutcome(workload_name, injector.name, seed,
                                FALSE_POSITIVE,
                                detail=f"reference run not clean: {first}")

    workload = get_workload(workload_name)
    machine = Machine(workload.build(scale), config)
    # Innermost first: the injector perturbs each DynInst before the
    # checksum and the guards ever see it.
    injector.install(machine)
    checksum = CommitChecksum(machine)
    guards = GuardSet(machine, collect=True)
    machine.fast_forward(resolve_warmup(workload, scale))
    machine.run(max_insts=window if window is not None else workload.window)

    injections = len(injector.injections)
    violations = len(guards.violations)
    detail = ""
    if injections:
        detail = injector.injections[0].detail
    if violations:
        detail = str(guards.violations[0])

    if not injector.armed:
        verdict = UNARMED
    elif violations:
        verdict = (FALSE_POSITIVE if injector.expect == MASKED
                   else DETECTED)
    elif checksum.digest() == reference_digest:
        verdict = MASKED
    else:
        verdict = SILENT
        detail = (f"committed stream diverged with no guard firing "
                  f"({injections} injection(s): {detail})")
    get_registry().counter(f"chaos.{verdict}").inc()
    return ChaosOutcome(workload_name, injector.name, seed, verdict,
                        injections=injections, violations=violations,
                        detail=detail)


def chaos_suite(workloads: list[str], injector_names: list[str],
                seed: int, scale: int = 1,
                window: int | None = None,
                config: MachineConfig = CHAOS_CONFIG,
                progress=None) -> list[ChaosOutcome]:
    """Run the full (workload x injector) matrix at one seed.

    One reference run per workload, shared across its injectors.  The
    per-trial injector seed mixes the suite seed with the workload and
    injector names so trials stay independent but reproducible.
    ``progress`` (optional callable taking one short string) is called
    before each reference run and after each trial — the CLI points it
    at stderr so long matrices show a heartbeat without touching the
    machine-parseable stdout.
    """
    outcomes: list[ChaosOutcome] = []
    for workload_name in workloads:
        if progress is not None:
            progress(f"reference {workload_name}")
        digest, ref_guards = _reference(workload_name, scale, window, config)
        if not ref_guards.clean:
            first = ref_guards.violations[0]
            for name in injector_names:
                get_registry().counter(f"chaos.{FALSE_POSITIVE}").inc()
                outcomes.append(ChaosOutcome(
                    workload_name, name, seed, FALSE_POSITIVE,
                    detail=f"reference run not clean: {first}"))
            continue
        for name in injector_names:
            trial_seed = derive_seed(seed, workload_name, name)
            injector = make_injector(name, seed=trial_seed)
            outcome = chaos_run(
                workload_name, injector, seed, scale=scale, window=window,
                config=config, reference_digest=digest)
            outcomes.append(outcome)
            if progress is not None:
                progress(f"{workload_name} x {name}: {outcome.verdict}")
    return outcomes


def derive_seed(seed: int, workload: str, injector: str) -> int:
    """Stable per-trial seed from the suite seed and trial identity."""
    digest = hashlib.sha256(
        f"{seed}/{workload}/{injector}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def summarize(outcomes: list[ChaosOutcome]) -> dict[str, int]:
    counts = {DETECTED: 0, MASKED: 0, UNARMED: 0,
              SILENT: 0, FALSE_POSITIVE: 0}
    for outcome in outcomes:
        counts[outcome.verdict] += 1
    return counts


# --------------------------------------------------------------- cache tier


def cache_chaos(cache_dir, mode: str = "bitflip",
                seed: int = 0, workload: str = "g721-encode",
                scale: int = 1, ctx=None) -> ChaosOutcome:
    """Corrupt a stored cache entry and demand quarantine + bit-exact
    recovery.

    ``mode``: ``"bitflip"`` XORs one deterministically chosen bit of
    the entry file; ``"truncate"`` cuts the file in half.  ``ctx`` is
    an optional base :class:`~repro.exec.context.RunContext` (the CLI
    threads its shared engine flags through it) — its ``cache_dir`` and
    ``obs_dir`` are overridden, and a ``cas`` cache layout corrupts an
    entry inside its shard, proving per-shard quarantine.
    """
    from dataclasses import replace as _replace

    from repro.core.config import BASELINE as _BASELINE
    from repro.exec.context import RunContext
    from repro.exec.engine import RunEngine, clear_memo
    from repro.exec.jobs import Job

    job = Job(workload=workload, config=_BASELINE, scale=scale)
    if ctx is None:
        ctx = RunContext(cache_dir=cache_dir, obs_dir=None, jobs=1)
    else:
        ctx = _replace(ctx, cache_dir=cache_dir, obs_dir=None,
                       use_cache=True, refresh=False)

    # Start from a cold memo so the clean run actually simulates and
    # stores a disk entry (a memo hit would leave the cache tier empty).
    clear_memo()
    clean = RunEngine(ctx).run_jobs([job])[job.key]
    if ctx.cache_layout == "cas":
        from repro.exec.shards import ShardedResultCache
        entry_paths = sorted(ShardedResultCache(cache_dir).entries())
    else:
        entry_paths = sorted(p for p in cache_dir.glob("*.json"))
    if not entry_paths:
        get_registry().counter(f"chaos.{UNARMED}").inc()
        return ChaosOutcome(workload, f"cache-{mode}", seed, UNARMED,
                            detail="no cache entry was stored")
    path = entry_paths[0]
    detail = corrupt_file(path, mode=mode, seed=seed)

    clear_memo()
    engine = RunEngine(ctx)
    recovered = engine.run_jobs([job])[job.key]

    quarantined = engine.stats.cache_quarantined
    bit_exact = (recovered.stats.as_dict() == clean.stats.as_dict()
                 and recovered.widths.as_dict() == clean.widths.as_dict())
    if quarantined and bit_exact:
        verdict = DETECTED
    elif bit_exact:
        # The corruption slipped past quarantine yet changed nothing
        # observable — only possible if the entry still decoded to the
        # identical payload, which a nonzero XOR cannot do.
        verdict = SILENT
        detail += " (entry not quarantined)"
    else:
        verdict = SILENT
        detail += " (recovered counters differ from clean run)"
    get_registry().counter(f"chaos.{verdict}").inc()
    return ChaosOutcome(workload, f"cache-{mode}", seed, verdict,
                        injections=1, violations=quarantined,
                        detail=detail)


#: Catalog re-export for the CLI.
ALL_INJECTORS = list(INJECTOR_TYPES)
