"""Machine invariant guards: runtime checks of the width-tag/packing
contract.

The PR-3 differential oracle proves the *static* side of the paper's
width story; this module guards the *dynamic* side while a machine
runs.  A :class:`GuardSet` rides one machine — feed wrap for value
capture (the oracle's idiom), event-bus subscription for pipeline
happenings, and a per-cycle probe for structural audits — and checks:

* **tag** — per retired instruction, the operand width tags must be
  *sound* against the actual values: a ``narrow16``/``narrow33`` claim
  (the paper's ``zero48``/``zero31`` signals) on a value that does not
  sign-extend from that width is a detector fault.  Tags may lawfully
  under-claim (``UNKNOWN_TAG`` on loads without cache-side detect).
* **semantics** — per retired operate instruction, the recorded result
  must equal the ISA reference semantics recomputed from the operand
  values.  Because packing is a pure issue-timing optimization, this
  is exactly the "packed-pair results equal their unpacked reference
  semantics" invariant: a packed lane that corrupted upper bits shows
  up as a recompute mismatch.
* **replay** — a Section 5.3 replay trap must fire *iff* the packed
  16-bit lane carried into the wide operand's upper bits.  Both
  directions are checked against the independently recomputed result,
  never the (possibly corrupted) recorded one: a trap without a carry
  is spurious, a speculatively packed completion with a carry is a
  dropped trap.
* **ruu** — per cycle, the RUU/LSQ occupancy and free-list accounting
  must balance (:meth:`repro.core.ruu.RUU.audit`).

Violations raise a typed :class:`InvariantViolation` carrying the
cycle, instruction seq/index, and the assembler srcmap location — or
are collected when ``collect=True`` (the chaos harness runs to
completion and classifies).  Either way an
:class:`~repro.obs.events.InvariantViolationEvent` is emitted on the
machine's event bus first, so observability subscribers see guard
firings alongside ordinary pipeline events.

An unperturbed machine must never fire a guard (no false positives);
the fault-injection harness (:mod:`repro.robust.inject`,
``repro-chaos``) proves the guards catch what they claim to.
"""

from __future__ import annotations

from repro.bitwidth.detect import is_narrow
from repro.core.feed import DynInst
from repro.core.machine import Machine
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.semantics import compute
from repro.obs.events import (
    CommitEvent,
    CompleteEvent,
    Event,
    InvariantViolationEvent,
    IssueEvent,
    PackJoinEvent,
    ReplayTrapEvent,
    SquashEvent,
)
from repro.perf.metrics import get_registry

#: Instruction classes whose results the semantics guard recomputes.
_OPERATE_CLASSES = frozenset({
    OpClass.INT_ARITH, OpClass.INT_MULT, OpClass.INT_LOGIC,
    OpClass.INT_SHIFT,
})

#: Conditional moves read the old destination value, which the guard
#: cannot observe from outside the feed — exempt from recompute.
_OLD_DEST_OPS = frozenset({Opcode.CMOVEQ, Opcode.CMOVNE})

_HIGH48_SHIFT = 16


class InvariantViolation(AssertionError):
    """A machine invariant guard fired.

    Carries everything needed to pin the violation to one dynamic
    instruction instance: the guard ``check`` name, the machine
    ``cycle``, the instruction ``seq``/``index``, and — when the
    assembler provided a srcmap — the workload ``source`` location.
    """

    def __init__(self, check: str, detail: str, cycle: int,
                 seq: int = -1, index: int = -1,
                 source: tuple[str, int] | None = None) -> None:
        self.check = check
        self.detail = detail
        self.cycle = cycle
        self.seq = seq
        self.index = index
        self.source = source
        where = f"cycle {cycle}"
        if seq >= 0:
            where += f", seq {seq}"
        if index >= 0:
            where += f", inst#{index}"
        if source is not None:
            where += f", {source[0]}:{source[1]}"
        super().__init__(f"[{check}] {detail} ({where})")


class GuardSet:
    """Install the machine invariant guards on one live machine.

    ``collect=False`` (default): the first violation raises.
    ``collect=True``: violations accumulate in :attr:`violations` and
    the run continues (chaos-harness mode).
    """

    def __init__(self, machine: Machine, collect: bool = False) -> None:
        self.machine = machine
        self.collect = collect
        self.violations: list[InvariantViolation] = []
        #: per-check counts of checks actually evaluated.
        self.checks_run: dict[str, int] = {
            "tag": 0, "semantics": 0, "replay": 0, "ruu": 0}
        self._by_seq: dict[int, DynInst] = {}
        #: seqs currently executing as speculative replay-pack members.
        self._replay_inflight: set[int] = set()
        self._install()

    # ------------------------------------------------------------- wiring

    def _install(self) -> None:
        feed = self.machine.feed
        original_next = feed.next

        def next_with_guards() -> DynInst | None:
            dyn = original_next()
            # Warmup (fast mode) instructions never enter the pipeline;
            # capturing them would only leak memory.
            if dyn is not None and not feed.fast_mode:
                self._by_seq[dyn.seq] = dyn
            return dyn

        # Instance-attribute shadowing, as the differential oracle does:
        # only this machine's feed is observed.
        feed.next = next_with_guards  # type: ignore[method-assign]
        self.machine.subscribe(self._on_event)
        self.machine.add_probe(self)

    # ----------------------------------------------------------- plumbing

    def _violate(self, check: str, detail: str,
                 dyn: DynInst | None = None) -> None:
        cycle = self.machine.cycle
        seq = dyn.seq if dyn is not None else -1
        index = dyn.index if dyn is not None else -1
        source = (self.machine.program.source_of(index)
                  if dyn is not None else None)
        violation = InvariantViolation(check, detail, cycle=cycle,
                                       seq=seq, index=index, source=source)
        self.machine._emit(InvariantViolationEvent(
            cycle=cycle, check=check, seq=seq, detail=detail))
        registry = get_registry()
        registry.counter("guards.violations").inc()
        registry.counter(f"guards.violations.{check}").inc()
        self.violations.append(violation)
        if not self.collect:
            raise violation

    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            listing = "\n".join(str(v) for v in self.violations[:20])
            extra = len(self.violations) - 20
            if extra > 0:
                listing += f"\n... and {extra} more"
            raise AssertionError(
                f"{len(self.violations)} invariant violation(s) on "
                f"{self.machine.program.name}:\n{listing}")

    # -------------------------------------------------------- event hooks

    def _on_event(self, event: Event) -> None:
        if isinstance(event, CommitEvent):
            dyn = self._by_seq.pop(event.seq, None)
            if dyn is not None:
                self._check_tags(dyn)
                self._check_semantics(dyn)
            self._replay_inflight.discard(event.seq)
        elif isinstance(event, IssueEvent):
            if event.replay:
                self._replay_inflight.add(event.seq)
        elif isinstance(event, PackJoinEvent):
            # A wide leader becomes speculative only when a companion
            # joins; the machine sets replay_packed before emitting.
            for seq in (event.seq, event.leader_seq):
                entry = self.machine.ruu.get(seq)
                if entry is not None and entry.replay_packed:
                    self._replay_inflight.add(seq)
        elif isinstance(event, ReplayTrapEvent):
            self._check_trap_fired(event.seq)
        elif isinstance(event, CompleteEvent):
            if event.seq in self._replay_inflight:
                self._replay_inflight.discard(event.seq)
                self._check_trap_not_needed(event.seq)
        elif isinstance(event, SquashEvent):
            self._by_seq.pop(event.seq, None)
            self._replay_inflight.discard(event.seq)

    # --------------------------------------------------- per-retire checks

    def _check_tags(self, dyn: DynInst) -> None:
        """Width tags must sign-extend-soundly describe their values."""
        self.checks_run["tag"] += 1
        for name, tag, value in (("a", dyn.tag_a, dyn.a_val),
                                 ("b", dyn.tag_b, dyn.b_val)):
            # At most one violation per operand: one defect, one report
            # (a wide-at-16 value is usually wide at 33 too, and the
            # root cause is the same bogus claim).
            if tag.narrow16 and not tag.narrow33:
                self._violate("tag",
                              f"{dyn.inst}: operand {name} tag claims "
                              f"narrow16 without narrow33 (internally "
                              f"inconsistent)", dyn)
            elif tag.narrow16 and not is_narrow(value, 16):
                self._violate("tag",
                              f"{dyn.inst}: operand {name} tagged "
                              f"narrow16 (zero48) but value "
                              f"{value:#x} is wide at 16", dyn)
            elif tag.narrow33 and not is_narrow(value, 33):
                self._violate("tag",
                              f"{dyn.inst}: operand {name} tagged "
                              f"narrow33 (zero31) but value "
                              f"{value:#x} is wide at 33", dyn)

    def _check_semantics(self, dyn: DynInst) -> None:
        """Recorded result == unpacked ISA reference semantics."""
        if (dyn.op_class not in _OPERATE_CLASSES
                or dyn.inst.opcode in _OLD_DEST_OPS
                or dyn.result is None):
            return
        self.checks_run["semantics"] += 1
        reference = compute(dyn.inst.opcode, dyn.a_val, dyn.b_val)
        if dyn.result != reference:
            self._violate("semantics",
                          f"{dyn.inst}: result {dyn.result:#x} != "
                          f"reference semantics {reference:#x} "
                          f"(a={dyn.a_val:#x}, b={dyn.b_val:#x})", dyn)

    # ------------------------------------------------------- replay checks

    def _carry_out(self, dyn: DynInst) -> bool:
        """Did the 16-bit lane result carry into the wide operand's
        upper bits?  Computed from reference semantics, never from the
        (possibly corrupted) recorded result."""
        wide = dyn.b_val if dyn.tag_a.narrow16 else dyn.a_val
        reference = compute(dyn.inst.opcode, dyn.a_val, dyn.b_val)
        return (reference >> _HIGH48_SHIFT) != (wide >> _HIGH48_SHIFT)

    def _check_trap_fired(self, seq: int) -> None:
        """A replay trap fired: the carry must actually have occurred."""
        dyn = self._by_seq.get(seq)
        self._replay_inflight.discard(seq)
        if dyn is None:
            return
        self.checks_run["replay"] += 1
        if not self._carry_out(dyn):
            self._violate("replay",
                          f"{dyn.inst}: spurious replay trap — no carry "
                          f"out of bit 15 (a={dyn.a_val:#x}, "
                          f"b={dyn.b_val:#x})", dyn)

    def _check_trap_not_needed(self, seq: int) -> None:
        """A speculatively packed op completed without a trap: there
        must have been no carry out of bit 15."""
        dyn = self._by_seq.get(seq)
        if dyn is None:
            return
        self.checks_run["replay"] += 1
        if self._carry_out(dyn):
            self._violate("replay",
                          f"{dyn.inst}: replay trap dropped — carry out "
                          f"of bit 15 with no trap (a={dyn.a_val:#x}, "
                          f"b={dyn.b_val:#x})", dyn)

    # ------------------------------------------------------ per-cycle audit

    def on_cycle(self, machine: Machine) -> None:
        """Probe hook: structural RUU/LSQ accounting audit."""
        self.checks_run["ruu"] += 1
        for problem in machine.ruu.audit():
            self._violate("ruu", problem)
