"""Deterministic, seed-driven fault injectors for the chaos harness.

Each injector deliberately perturbs live simulator state the way a
hardware fault (or a simulator bug) would, and declares what the
invariant guards (:mod:`repro.robust.guards`) owe it:

* ``tag-flip`` — makes a *wide* operand value claim ``narrow16``
  (an unsound ``zero48`` detector) → a **detected** tag violation;
* ``tag-conservative`` — drops the narrow claim on a genuinely narrow
  operand (a detector that under-reports) → **masked**: the paper's
  tags may lawfully under-claim, so no guard fires and architected
  results are untouched (only clock-gating/packing opportunity is
  lost);
* ``result-corrupt`` — flips upper bits of a produced result on the
  result bus *and* in the architected register file → a **detected**
  semantics violation at retire;
* ``replay-drop`` — suppresses a due replay trap and commits the
  packed-lane value (low 16 bits right, upper bits from the wide
  operand) exactly as the Section 5.3 hardware would if the trap
  logic failed → a **detected** replay/semantics violation.

Site selection is a pure function of the injector's ``seed`` (a
private ``random.Random(seed)`` stream) or an explicit ``site`` index
over eligible occurrences, so every chaos run replays exactly.
Injection is restricted to non-speculative instructions within an
early-site horizon, so an armed fault always reaches retirement —
otherwise "undetected" would be ambiguous with "never committed".

Injectors arm only outside warmup (``feed.fast_mode``): warmup
instructions never enter the pipeline, so perturbing them would test
nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.bitwidth.detect import is_narrow
from repro.bitwidth.tags import UNKNOWN_TAG, WidthTag
from repro.core.feed import DynInst
from repro.core.machine import Machine
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.semantics import MASK64, compute

#: Classes whose operands the tag injectors perturb.
_TAGGED_CLASSES = frozenset({
    OpClass.INT_ARITH, OpClass.INT_MULT, OpClass.INT_LOGIC,
    OpClass.INT_SHIFT, OpClass.LOAD, OpClass.STORE,
})

#: Classes whose results the corruption injector perturbs (conditional
#: moves excluded: the semantics guard cannot recompute them).
_RESULT_CLASSES = frozenset({
    OpClass.INT_ARITH, OpClass.INT_MULT, OpClass.INT_LOGIC,
    OpClass.INT_SHIFT,
})
_OLD_DEST_OPS = frozenset({Opcode.CMOVEQ, Opcode.CMOVNE})

_HIGH48_SHIFT = 16


@dataclass(frozen=True)
class Injection:
    """One applied fault (for the chaos report)."""

    injector: str
    seq: int
    index: int
    detail: str


class BaseInjector:
    """Common bookkeeping: deterministic site selection + audit trail."""

    #: injector name (CLI catalog key).
    name = "base"
    #: what the guards owe this fault: "detected" or "masked".
    expect = "detected"

    def __init__(self, seed: int = 0, site: int | None = None,
                 count: int = 1, horizon: int = 2000) -> None:
        self.site = site
        self.count = count
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._eligible_seen = 0
        self.injections: list[Injection] = []

    @property
    def armed(self) -> bool:
        """True once the fault actually perturbed live state."""
        return bool(self.injections)

    def _select(self) -> bool:
        """Decide (deterministically) whether to arm at the current
        eligible site; advances the site counter either way."""
        here = self._eligible_seen
        self._eligible_seen += 1
        if len(self.injections) >= self.count:
            return False
        if self.site is not None:
            return here == self.site
        if here >= self.horizon:
            return False
        return self._rng.random() < 0.125

    def _record(self, seq: int, index: int, detail: str) -> None:
        self.injections.append(Injection(self.name, seq, index, detail))

    def install(self, machine: Machine) -> "BaseInjector":
        raise NotImplementedError


class DynInjector(BaseInjector):
    """Injectors that perturb one :class:`DynInst` as the feed produces
    it (before the guards capture it — install the injector first)."""

    def install(self, machine: Machine) -> "DynInjector":
        feed = machine.feed
        original_next = feed.next

        def next_with_fault() -> DynInst | None:
            dyn = original_next()
            if (dyn is not None and not feed.fast_mode
                    and not dyn.spec and self.eligible(dyn)
                    and self._select()):
                detail = self.apply(dyn, machine)
                self._record(dyn.seq, dyn.index, detail)
            return dyn

        feed.next = next_with_fault  # type: ignore[method-assign]
        return self

    def eligible(self, dyn: DynInst) -> bool:
        raise NotImplementedError

    def apply(self, dyn: DynInst, machine: Machine) -> str:
        raise NotImplementedError


class TagFlipInjector(DynInjector):
    """Unsound zero48: a wide operand value tagged ``narrow16``."""

    name = "tag-flip"
    expect = "detected"

    def eligible(self, dyn: DynInst) -> bool:
        return (dyn.op_class in _TAGGED_CLASSES
                and not is_narrow(dyn.a_val, 16))

    def apply(self, dyn: DynInst, machine: Machine) -> str:
        dyn.tag_a = WidthTag(narrow16=True, narrow33=True)
        return f"a={dyn.a_val:#x} falsely tagged narrow16"


class TagConservativeInjector(DynInjector):
    """Under-reporting detector: a narrow operand loses its claim.

    Benign by the tag contract (tags may under-claim); only gating and
    packing opportunity is lost, never correctness.
    """

    name = "tag-conservative"
    expect = "masked"

    def eligible(self, dyn: DynInst) -> bool:
        return (dyn.op_class in _TAGGED_CLASSES
                and dyn.tag_a.narrow16)

    def apply(self, dyn: DynInst, machine: Machine) -> str:
        dyn.tag_a = UNKNOWN_TAG
        return f"a={dyn.a_val:#x} narrow claim dropped"


class ResultCorruptInjector(DynInjector):
    """Upper result bits flipped on the bus and in the register file."""

    name = "result-corrupt"
    expect = "detected"

    def eligible(self, dyn: DynInst) -> bool:
        return (dyn.op_class in _RESULT_CLASSES
                and dyn.inst.opcode not in _OLD_DEST_OPS
                and dyn.result is not None
                and dyn.inst.dest_reg() is not None)

    def apply(self, dyn: DynInst, machine: Machine) -> str:
        clean = dyn.result
        corrupted = (clean ^ (0xA5 << 48)) & MASK64
        dyn.result = corrupted
        # Propagate into architected state the way a corrupted result
        # bus would: downstream consumers read the bad value, and the
        # detector hardware re-tags what is actually on the bus.
        machine.feed._write(dyn.inst.dest_reg(), corrupted)
        return f"result {clean:#x} -> {corrupted:#x}"


class ReplayDropInjector(BaseInjector):
    """Suppress a due replay trap (Section 5.3 trap logic failure).

    Rides the per-cycle probe: scans the machine's scheduled
    writebacks for speculatively packed entries whose 16-bit lane is
    about to carry into the wide operand's upper bits, clears the
    speculation flag (so the trap never fires) and commits the
    packed-lane value — low 16 bits correct, upper 48 muxed from the
    wide operand — exactly the corruption the trap exists to prevent.

    Requires a packing+replay configuration; on workloads that never
    replay-pack in the window the injector stays unarmed (reported,
    not counted as a silent corruption).
    """

    name = "replay-drop"
    expect = "detected"

    def install(self, machine: Machine) -> "ReplayDropInjector":
        machine.add_probe(self)
        return self

    def on_cycle(self, machine: Machine) -> None:
        for entries in machine.pending_completions().values():
            for entry in entries:
                if not entry.replay_packed or entry.squashed:
                    continue
                dyn = entry.dyn
                reference = compute(dyn.inst.opcode, dyn.a_val, dyn.b_val)
                wide = dyn.b_val if dyn.tag_a.narrow16 else dyn.a_val
                if (reference >> _HIGH48_SHIFT) == (wide >> _HIGH48_SHIFT):
                    continue    # no carry: dropping would be a no-op
                if not self._select():
                    continue
                entry.replay_packed = False
                packed = ((wide >> _HIGH48_SHIFT) << _HIGH48_SHIFT
                          | (reference & 0xFFFF)) & MASK64
                dyn.result = packed
                self._record(dyn.seq, dyn.index,
                             f"trap dropped, packed lane committed "
                             f"{packed:#x} (true {reference:#x})")


# ------------------------------------------------------- disk-tier faults


def corrupt_file(path: str | Path, mode: str = "bitflip",
                 seed: int = 0) -> str:
    """Deterministically damage one on-disk file — the disk-tier fault
    model shared by the cache and service chaos scenarios.

    ``"bitflip"`` XORs one seed-chosen bit; ``"truncate"`` cuts the
    file in half (a torn write).  Returns a human-readable detail
    string for the chaos report.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if mode == "truncate":
        raw = raw[:len(raw) // 2]
        detail = f"{path.name} truncated to {len(raw)} bytes"
    elif mode == "bitflip":
        if not raw:
            raise ValueError(f"cannot bit-flip empty file {path}")
        rng = random.Random(seed)
        at = rng.randrange(len(raw))
        bit = 1 << rng.randrange(8)
        raw[at] ^= bit
        detail = f"{path.name} bit {bit:#04x} flipped at byte {at}"
    else:
        raise ValueError(f"unknown corruption mode {mode!r} "
                         f"(known: bitflip, truncate)")
    path.write_bytes(bytes(raw))
    return detail


#: The injector catalog, in presentation order.
INJECTOR_TYPES: dict[str, type[BaseInjector]] = {
    cls.name: cls
    for cls in (TagFlipInjector, TagConservativeInjector,
                ResultCorruptInjector, ReplayDropInjector)
}


def make_injector(name: str, seed: int = 0, site: int | None = None,
                  count: int = 1) -> BaseInjector:
    """Instantiate a catalog injector by name."""
    try:
        cls = INJECTOR_TYPES[name]
    except KeyError:
        raise ValueError(f"unknown injector {name!r} "
                         f"(known: {', '.join(INJECTOR_TYPES)})") from None
    return cls(seed=seed, site=site, count=count)
